"""Sec. VI text: RStream and Nuri vs single-machine G-thinker."""

from repro.bench import single_machine_comparison


def test_single_machine_comparison(run_table):
    headers, rows = run_table(
        "single_machine", "Single-machine systems (RStream / Nuri) vs 1-machine G-thinker",
        single_machine_comparison,
    )
    # RStream exhausts disk on the big graphs, as in the paper.
    big = {r[1]: r[2] for r in rows if r[1] in ("btc", "friendster")}
    assert all(cell == "used up all disk space" for cell in big.values())
