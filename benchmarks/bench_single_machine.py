"""Sec. VI text: RStream and Nuri vs single-machine G-thinker — plus the
threaded-vs-process runtime comparison (``BENCH_process_runtime.json``).

Run the runtime comparison standalone::

    python benchmarks/bench_single_machine.py --quick

It times the same CPU-bound maximum-clique workload on the serial,
threaded and process runtimes, checks the answers agree, and writes the
numbers (including ``os.cpu_count()`` — speedups are only meaningful on
multi-core machines) to ``BENCH_process_runtime.json``.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import max_clique_reference
from repro.apps import MaxCliqueComper
from repro.bench import single_machine_comparison
from repro.core import GThinkerConfig, run_job
from repro.graph import erdos_renyi

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_process_runtime.json"


def test_single_machine_comparison(run_table):
    headers, rows = run_table(
        "single_machine", "Single-machine systems (RStream / Nuri) vs 1-machine G-thinker",
        single_machine_comparison,
    )
    # RStream exhausts disk on the big graphs, as in the paper.
    big = {r[1]: r[2] for r in rows if r[1] in ("btc", "friendster")}
    assert all(cell == "used up all disk space" for cell in big.values())


def compare_runtimes(quick: bool = False) -> dict:
    """Serial vs threaded vs process on one CPU-bound MCF workload."""
    if quick:
        n, p, seed = 90, 0.12, 13
        workers, compers = 2, 2
    else:
        n, p, seed = 160, 0.12, 13
        workers, compers = 4, 2
    graph = erdos_renyi(n, p, seed=seed)
    config = GThinkerConfig(
        num_workers=workers,
        compers_per_worker=compers,
        task_batch_size=8,
        cache_capacity=4096,
        cache_buckets=64,
        decompose_threshold=12,
        aggregator_sync_period_s=0.005,
    )
    oracle_size = len(max_clique_reference(graph))

    runs = {}
    for runtime in ("serial", "threaded", "process"):
        started = time.perf_counter()
        result = run_job(MaxCliqueComper, graph, config, runtime=runtime)
        wall_s = time.perf_counter() - started
        runs[runtime] = {
            # The worker count this entry actually ran with (the serial
            # runtime executes every worker loop on one thread).
            "process_workers": config.num_workers,
            "cpu_count": os.cpu_count(),
            "speedup_valid": (os.cpu_count() or 1) >= 2,
            "wall_s": round(wall_s, 4),
            "engine_elapsed_s": round(result.elapsed_s, 4),
            "clique_size": len(result.aggregate or ()),
            "net_messages": int(result.metrics.get("net:messages", 0)),
            "peak_memory_bytes": int(
                result.metrics.get("max:peak_memory_bytes", 0)
            ),
        }
        if runtime == "process":
            runs[runtime]["ipc_batches"] = int(
                result.metrics.get("ipc:batches", 0)
            )

    serial_wall = runs["serial"]["wall_s"]
    report = {
        "benchmark": "process_runtime_comparison",
        "workload": "maximum clique (MCF)",
        "graph": {"model": "erdos_renyi", "n": n, "p": p, "seed": seed},
        "config": {
            "num_workers": workers,
            "compers_per_worker": compers,
            "decompose_threshold": config.decompose_threshold,
        },
        "cpu_count": os.cpu_count(),
        "process_workers": workers,
        # Single-core boxes cannot show a parallel speedup; downstream
        # gates must not treat the ratio as a regression signal there.
        "speedup_valid": (os.cpu_count() or 1) >= 2,
        "quick": quick,
        "oracle_clique_size": oracle_size,
        "answers_equal": all(
            r["clique_size"] == oracle_size for r in runs.values()
        ),
        "runtimes": runs,
        "speedup_vs_serial": {
            name: round(serial_wall / r["wall_s"], 3)
            for name, r in runs.items()
            if name != "serial" and r["wall_s"] > 0
        },
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="threaded-vs-process runtime benchmark"
    )
    parser.add_argument("--quick", action="store_true",
                        help="small graph / fewer workers (CI smoke)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report = compare_runtimes(quick=args.quick)
    with open(args.output, "w", encoding="ascii") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")

    print(f"cpu_count={report['cpu_count']}  "
          f"answers_equal={report['answers_equal']}")
    for name, run in report["runtimes"].items():
        speedup = report["speedup_vs_serial"].get(name)
        extra = f"  speedup_vs_serial={speedup}x" if speedup else ""
        print(f"{name:9s} wall={run['wall_s']:.3f}s "
              f"clique={run['clique_size']}{extra}")
    print(f"wrote {args.output}")
    return 0 if report["answers_equal"] else 1


if __name__ == "__main__":
    sys.exit(main())
