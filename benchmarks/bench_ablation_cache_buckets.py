"""Ablation: bucketed vertex cache vs a single-lock cache.

G-Miner's RCV cache is one list under one lock; G-thinker's T_cache is
k mutex-protected buckets (k=10,000 in the paper).  This microbench
drives the same mixed OP1/OP3 workload from several threads at
different bucket counts.  Under CPython the GIL serializes bytecode, so
absolute speedups are muted — the measured signal is lock handoff and
contention overhead, which still falls sharply with k.
"""

import threading

from repro.bench import emit, render_table
from repro.core.vertex_cache import VertexCache

OPS_PER_THREAD = 4000
THREADS = 4


def _drive(cache: VertexCache, thread_id: int) -> None:
    base = thread_id * OPS_PER_THREAD
    for i in range(OPS_PER_THREAD):
        v = base + i
        out = cache.request(v, task_id=thread_id)
        assert out.status == "miss_send"
        cache.insert_response(v, 0, (1, 2, 3))
        entry = cache.get_locked(v)
        assert entry.vid == v
        cache.release(v)
    cache.flush_local_counter()


def _run_with_buckets(num_buckets: int) -> float:
    import time

    cache = VertexCache(
        num_buckets=num_buckets,
        capacity=10 * THREADS * OPS_PER_THREAD,
        overflow_alpha=0.2,
    )
    threads = [
        threading.Thread(target=_drive, args=(cache, t)) for t in range(THREADS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    cache.check_invariants()
    return THREADS * OPS_PER_THREAD / elapsed


def test_cache_bucket_ablation(benchmark):
    rows = []
    results = {}

    def run_all():
        for k in (1, 16, 256, 4096):
            results[k] = _run_with_buckets(k)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    for k, ops in sorted(results.items()):
        label = "single lock (G-Miner-style)" if k == 1 else f"{k} buckets"
        rows.append([label, f"{ops:,.0f} ops/s"])
    emit(render_table("Ablation - cache bucket count (4 threads)",
                      ["configuration", "throughput"], rows),
         out_path="benchmarks/results/ablation_cache_buckets.txt")
    assert results[256] > 0 and results[1] > 0
