"""Multicore scaling curve + kernel-backend micro-benchmarks
(``BENCH_scaling.json``).

The paper's core performance claim is near-linear scale-out from keeping
every CPU core busy on the mining inner loop.  This benchmark measures
exactly that on one machine, and separately measures how much the
compiled (numba) kernel backend buys over the numpy one:

* **Scaling sweep** — an interleaved best-of-k sweep of
  {serial, process x {1, 2, 4, 8, 16 workers}} x {TC, MCF} x
  {every importable kernel backend} on an Erdős–Rényi and a
  Barabási–Albert (power-law) graph at n >= 100k (``--quick``: one
  smaller graph, workers {2, 4}).  Runs are interleaved round-robin so
  machine-load drift hits every point equally, and each wall time is
  the best of k rounds (jitter only ever adds time).
* **Kernel micro-benchmarks** — numba vs numpy on ``intersect``,
  ``intersect_count`` and the fused ``intersect_count_many`` at
  |adj| in {512, 4096, 65536}; the CI gate requires the compiled
  kernels to be no slower than numpy (and the acceptance bar is >= 2x
  at |adj| >= 4k).
* **``--calibrate``** — re-derive the merge/gallop crossover
  (``GALLOP_RATIO``) per backend by sweeping the size-skew ratio.

Honesty flags: every scaling point records the ``cpu_count`` and
``workers`` it actually ran with, plus ``speedup_valid`` /
``efficiency_valid`` (a 16-worker point on a 4-core box measures
oversubscription, not scaling).  Reports taken at ``cpu_count: 1`` are
overhead measurements only — the CI ``scaling-smoke`` job on a
multi-core runner is where the curve means something.

Exit status is non-zero if any point's answer differs from the serial
oracle, or (when numba is importable) any kernel micro-benchmark shows
the compiled kernel slower than numpy.

Run::

    python benchmarks/bench_scaling.py [--quick] [--calibrate]
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.apps import MaxCliqueComper, TriangleCountComper
from repro.core import GThinkerConfig, run_job
from repro.graph import barabasi_albert, erdos_renyi, kernels

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"

APPS = {
    "tc": TriangleCountComper,
    "mcf": MaxCliqueComper,
}

#: Micro-benchmark adjacency sizes (|adj|): a cache-resident row, the
#: acceptance-bar size, and a hub row.
MICRO_SIZES = (512, 4096, 65536)


def _config(num_workers: int, n: int, backend: str) -> GThinkerConfig:
    return GThinkerConfig(
        num_workers=num_workers,
        compers_per_worker=1,
        task_batch_size=64,
        cache_capacity=max(4 * n, 4096),
        cache_buckets=64,
        decompose_threshold=100,
        kernel_backend=backend,
    )


def _answer(app: str, result) -> int:
    if app == "mcf":
        return len(result.aggregate or ())
    return int(result.aggregate)


def _graphs(quick: bool):
    if quick:
        specs = [("erdos_renyi", dict(n=20_000, avg_deg=10, seed=42))]
    else:
        specs = [
            ("erdos_renyi", dict(n=100_000, avg_deg=10, seed=42)),
            ("barabasi_albert", dict(n=100_000, m=5, seed=42)),
        ]
    out = []
    for model, params in specs:
        if model == "erdos_renyi":
            g = erdos_renyi(params["n"],
                            params["avg_deg"] / (params["n"] - 1),
                            seed=params["seed"])
        else:
            g = barabasi_albert(params["n"], params["m"],
                                seed=params["seed"])
        out.append({"model": model, "params": params, "graph": g,
                    "num_edges": g.num_edges})
    return out


# ---------------------------------------------------------------------------
# Scaling sweep
# ---------------------------------------------------------------------------


def run_sweep(quick: bool, rounds: int, worker_grid) -> list:
    cpu_count = os.cpu_count() or 1
    graphs = _graphs(quick)
    backends = kernels.available_backends()

    # One measurement cell per (graph, app, backend, runtime point).
    points = [("serial", 1)] + [("process", w) for w in worker_grid]
    cells = []
    for gspec in graphs:
        for app in APPS:
            for backend in backends:
                for runtime, workers in points:
                    cells.append({
                        "graph_model": gspec["model"],
                        "graph_params": gspec["params"],
                        "num_edges": gspec["num_edges"],
                        "_graph": gspec["graph"],
                        "app": app,
                        "backend": backend,
                        "runtime": runtime,
                        "workers": workers,
                        "cpu_count": cpu_count,
                        "wall_s": float("inf"),
                        "answer": None,
                        "backend_ran": None,
                    })

    # Interleave: every cell once per round, best-of-k over rounds.
    for rnd in range(rounds):
        for cell in cells:
            n = cell["graph_params"]["n"]
            cfg = _config(cell["workers"], n, cell["backend"])
            started = time.perf_counter()
            result = run_job(APPS[cell["app"]], cell["_graph"], cfg,
                             runtime=cell["runtime"])
            wall = time.perf_counter() - started
            cell["wall_s"] = min(cell["wall_s"], wall)
            cell["answer"] = _answer(cell["app"], result)
            cell["backend_ran"] = result.kernel_backend
            if cell["runtime"] != "serial":
                cell["control_plane_s"] = {
                    "time:master_sweep_s":
                        result.metrics.get("time:master_sweep_s", 0.0),
                    "time:control_idle_s":
                        result.metrics.get("time:control_idle_s", 0.0),
                }
            print(f"round {rnd + 1}/{rounds} {cell['graph_model']} "
                  f"{cell['app']} backend={cell['backend']} "
                  f"{cell['runtime']}x{cell['workers']}: {wall:.2f}s",
                  flush=True)

    # Fold into report rows: serial oracle per (graph, app, backend).
    serial_wall = {}
    serial_answer = {}
    for cell in cells:
        if cell["runtime"] == "serial":
            key = (cell["graph_model"], cell["app"], cell["backend"])
            serial_wall[key] = cell["wall_s"]
            serial_answer[key] = cell["answer"]

    rows = []
    for cell in cells:
        key = (cell["graph_model"], cell["app"], cell["backend"])
        workers = cell["workers"]
        speedup = serial_wall[key] / cell["wall_s"]
        rows.append({
            "graph": {"model": cell["graph_model"],
                      **cell["graph_params"],
                      "num_edges": cell["num_edges"]},
            "app": cell["app"],
            "backend": cell["backend"],
            "backend_ran": cell["backend_ran"],
            "runtime": cell["runtime"],
            "workers": workers,
            "cpu_count": cell["cpu_count"],
            "rounds": rounds,
            "wall_s": round(cell["wall_s"], 4),
            "speedup_vs_serial": round(speedup, 3),
            "parallel_efficiency": round(speedup / workers, 3),
            # A speedup claim needs >= 2 cores; an efficiency claim
            # additionally needs a core per worker.
            "speedup_valid": cell["cpu_count"] >= 2,
            "efficiency_valid": cell["cpu_count"] >= workers,
            "answer": cell["answer"],
            "answers_equal": cell["answer"] == serial_answer[key],
            # Control-plane overhead timers (parallel runtimes only):
            # master time inside sweep protocol work vs blocked idle.
            "control_plane_s": cell.get("control_plane_s"),
        })
    return rows


# ---------------------------------------------------------------------------
# Kernel micro-benchmarks
# ---------------------------------------------------------------------------


def _micro_rows(size: int, rng) -> tuple:
    a = np.unique(rng.integers(0, 8 * size, size=size, dtype=np.int64))
    b = np.unique(rng.integers(0, 8 * size, size=size, dtype=np.int64))
    frontier = [
        np.unique(rng.integers(0, 8 * size, size=max(size // 16, 4),
                               dtype=np.int64))
        for _ in range(16)
    ]
    return a, b, frontier


def _time_call(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_micro(reps: int = 30) -> list:
    """Per-backend best-of-reps timings of the three hot kernels."""
    rng = np.random.default_rng(0xBEEF)
    backends = kernels.available_backends()
    prior = kernels.current_backend()
    rows = []
    try:
        for size in MICRO_SIZES:
            a, b, frontier = _micro_rows(size, rng)
            timings = {}
            for backend in backends:
                kernels.select_backend(backend)
                kernels.intersect(a, b)  # warm-up (numba: trigger JIT)
                kernels.intersect_count(a, b)
                kernels.intersect_count_many(a, frontier)
                timings[backend] = {
                    "intersect_s": _time_call(
                        lambda: kernels.intersect(a, b), reps),
                    "intersect_count_s": _time_call(
                        lambda: kernels.intersect_count(a, b), reps),
                    "intersect_count_many_s": _time_call(
                        lambda: kernels.intersect_count_many(a, frontier),
                        reps),
                }
            row = {"adj_size": size, "timings": timings}
            if "numba" in timings:
                row["numba_speedup"] = {
                    k[:-2]: round(timings["numpy"][k] / timings["numba"][k], 3)
                    for k in timings["numpy"]
                }
            rows.append(row)
            print(f"micro |adj|={size}: " + "  ".join(
                f"{be}:intersect={t['intersect_s'] * 1e6:.1f}us"
                for be, t in timings.items()), flush=True)
    finally:
        kernels.select_backend(prior)
    return rows


# ---------------------------------------------------------------------------
# GALLOP_RATIO calibration
# ---------------------------------------------------------------------------


def run_calibration(reps: int = 20) -> list:
    """Measure the merge/gallop crossover skew ratio per backend.

    For each backend, intersect a small array of fixed size against
    increasingly larger ones, timing both forced strategies; the
    crossover is the smallest ratio where gallop wins.  The numpy path
    exposes strategy-forcing entry points; the compiled path is probed
    through ``GALLOP_RATIO`` itself (set to 1 to force gallop, to a
    huge value to force merge).
    """
    rng = np.random.default_rng(0xCA11)
    small = np.unique(rng.integers(0, 1 << 40, size=64, dtype=np.int64))
    rows = []
    prior = kernels.current_backend()
    try:
        for backend in kernels.available_backends():
            kernels.select_backend(backend)
            crossover = None
            for ratio in (1, 2, 4, 8, 16, 32, 64, 128, 256):
                big = np.unique(rng.integers(
                    0, 1 << 40, size=small.size * ratio, dtype=np.int64))
                saved = kernels.GALLOP_RATIO
                if backend == "numpy":
                    t_merge = _time_call(
                        lambda: kernels.intersect_merge(small, big), reps)
                    t_gallop = _time_call(
                        lambda: kernels.intersect_gallop(small, big), reps)
                else:
                    kernels.GALLOP_RATIO = 1 << 30  # force merge
                    kernels.intersect(small, big)
                    t_merge = _time_call(
                        lambda: kernels.intersect(small, big), reps)
                    kernels.GALLOP_RATIO = 1  # force gallop
                    kernels.intersect(small, big)
                    t_gallop = _time_call(
                        lambda: kernels.intersect(small, big), reps)
                kernels.GALLOP_RATIO = saved
                if t_gallop < t_merge and crossover is None:
                    crossover = ratio
            rows.append({
                "backend": backend,
                "configured_gallop_ratio":
                    kernels.GALLOP_RATIO_BY_BACKEND[backend],
                "measured_crossover_ratio": crossover,
            })
            print(f"calibrate {backend}: crossover~{crossover}x "
                  f"(configured {kernels.GALLOP_RATIO_BY_BACKEND[backend]}x)",
                  flush=True)
    finally:
        kernels.select_backend(prior)
    return rows


# ---------------------------------------------------------------------------
# Main
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="multicore scaling benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="one 20k graph, workers {2,4} (CI smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="best-of-k rounds (default: 2, quick: 2)")
    parser.add_argument("--calibrate", action="store_true",
                        help="also measure the merge/gallop crossover")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    rounds = args.rounds or 2
    worker_grid = [2, 4] if args.quick else [1, 2, 4, 8, 16]
    cpu_count = os.cpu_count() or 1
    backends = kernels.available_backends()

    sweep = run_sweep(args.quick, rounds, worker_grid)
    micro = run_micro()
    calibration = run_calibration() if args.calibrate else None

    answers_equal = all(r["answers_equal"] for r in sweep)
    # Headline: best parallel efficiency at 4 workers over points where
    # the machine can actually show one.
    four = [r for r in sweep
            if r["workers"] == 4 and r["runtime"] == "process"
            and r["efficiency_valid"]]
    headline_eff = (max(r["parallel_efficiency"] for r in four)
                    if four else None)

    report = {
        "benchmark": "multicore_scaling",
        "quick": args.quick,
        "cpu_count": cpu_count,
        "worker_grid": worker_grid,
        "kernel_backends": list(backends),
        "numba_available": "numba" in backends,
        "answers_equal": answers_equal,
        "parallel_efficiency_at_4_workers": headline_eff,
        "scaling": sweep,
        "kernel_micro": micro,
    }
    if calibration is not None:
        report["gallop_calibration"] = calibration
    with open(args.output, "w", encoding="ascii") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")

    ok = True
    if not answers_equal:
        for r in sweep:
            if not r["answers_equal"]:
                print(f"FAIL: {r['app']} on {r['graph']['model']} "
                      f"({r['runtime']}x{r['workers']}, {r['backend']}): "
                      f"answer {r['answer']} != serial oracle")
        ok = False
    if "numba" in backends:
        for row in micro:
            for kernel, speedup in row.get("numba_speedup", {}).items():
                if speedup < 1.0:
                    print(f"FAIL: numba {kernel} at |adj|={row['adj_size']} "
                          f"is {speedup}x numpy (< 1.0x)")
                    ok = False
    else:
        print("numba not importable: micro-speedup gate skipped "
              "(numpy-only report)")
    if headline_eff is not None:
        print(f"parallel efficiency at 4 workers: {headline_eff}")
    elif not args.quick:
        print(f"NOTE: cpu_count={cpu_count} < 4 — no point can measure "
              f"4-worker efficiency; curve shows overhead only")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
