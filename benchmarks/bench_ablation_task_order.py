"""Ablation: prioritized spill-refill vs G-Miner's LSH task order.

The paper's desirability 2: spilled tasks are prioritized on refill, so
the number of disk-buffered tasks stays negligible.  G-Miner instead
writes *every* task to its disk queue and reinserts partially-computed
ones.  We measure both engines' disk traffic on the same workload.
"""

from repro.baselines import gminer_max_clique
from repro.bench import bench_config, emit, format_bytes, render_table
from repro.apps import MaxCliqueComper
from repro.graph import make_dataset
from repro.sim import run_simulated_job


def test_task_order_disk_traffic(benchmark):
    g = make_dataset("friendster", scale=0.5)
    out = {}

    def run_all():
        r = run_simulated_job(MaxCliqueComper, g, bench_config(4, 4))
        gm = gminer_max_clique(g, machines=4, threads=4)
        out["gthinker_spilled"] = r.metrics.get("tasks:spilled", 0)
        out["gthinker_created"] = r.metrics.get("tasks:created", 1)
        out["gthinker_bytes"] = r.metrics.get("tasks:spill_bytes", 0)
        out["gminer_bytes"] = gm.detail["disk_bytes"]
        return out

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    frac = out["gthinker_spilled"] / max(1, out["gthinker_created"])
    rows = [
        ["G-thinker tasks spilled / created",
         f"{out['gthinker_spilled']:.0f} / {out['gthinker_created']:.0f} ({100*frac:.1f}%)"],
        ["G-thinker task disk bytes", format_bytes(out["gthinker_bytes"])],
        ["G-Miner task-queue disk bytes", format_bytes(out["gminer_bytes"])],
    ]
    emit(render_table("Ablation - task ordering & disk-buffered tasks (MCF, friendster-like 0.5)",
                      ["quantity", "value"], rows),
         out_path="benchmarks/results/ablation_task_order.txt")
    # The paper: disk-buffered task volume is negligible for G-thinker
    # and dominant for G-Miner.
    assert out["gminer_bytes"] > 10 * max(1.0, out["gthinker_bytes"])
