"""Table IV(c): single-machine vertical scaling (near-linear speedup)."""

from repro.bench import table4c_single_machine


def test_table4c_single_machine(run_table):
    headers, rows = run_table(
        "table4c", "Table IV(c) - Single machine, MCF on friendster-like",
        table4c_single_machine,
    )
    speedups = [float(r[2].rstrip("x")) for r in rows]
    # Paper: "almost linear speedup" — monotone, and clearly parallel.
    assert speedups == sorted(speedups)
    assert speedups[-1] > 3.0
    # No impossible superlinear artifacts.
    compers = [r[0] for r in rows]
    assert all(s <= c * 1.3 for s, c in zip(speedups, compers))
