"""Table V(a): effect of the vertex-cache capacity c_cache."""

from repro.bench import table5a_cache_capacity


def test_table5a_cache_capacity(run_table):
    headers, rows = run_table(
        "table5a", "Table V(a) - Effect of c_cache (TC on skitter-like, 4 machines)",
        table5a_cache_capacity,
    )
    evictions = [r[3] for r in rows]
    # Smaller caches must evict more (the paper's trade-off).
    assert evictions[-1] > evictions[0]
