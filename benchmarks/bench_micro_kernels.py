"""Microbenchmarks of the serial mining kernels (pytest-benchmark proper)."""

from repro.algorithms import count_triangles, max_clique, count_matches, triangle_query
from repro.graph import erdos_renyi, intersect_sorted_count, make_dataset


def test_intersect_sorted_count(benchmark):
    a = tuple(range(0, 4000, 2))
    b = tuple(range(0, 4000, 3))
    result = benchmark(intersect_sorted_count, a, b)
    assert result == len(set(a) & set(b))


def test_max_clique_kernel(benchmark):
    g = erdos_renyi(120, 0.25, seed=1)
    clique = benchmark(max_clique, g.adjacency())
    assert len(clique) >= 3


def test_triangle_count_kernel(benchmark):
    g = make_dataset("orkut", scale=0.5)
    n = benchmark(count_triangles, g)
    assert n > 0


def test_match_kernel(benchmark):
    g = make_dataset("youtube", scale=0.3, labeled=3)
    q = triangle_query(labels={0: 0, 1: 1, 2: 2})
    benchmark.pedantic(count_matches, args=(g, q), rounds=3, iterations=1)
