"""Table II: dataset statistics (synthetic stand-ins vs the paper's)."""

from repro.bench import table2_datasets


def test_table2_datasets(run_table):
    headers, rows = run_table(
        "table2", "Table II - Datasets (ours, scaled) vs paper", table2_datasets,
    )
    names = [r[0] for r in rows]
    assert names == ["youtube", "skitter", "orkut", "btc", "friendster"]
    # friendster must be the largest stand-in, as in the paper
    by_name = {r[0]: r for r in rows}
    assert by_name["friendster"][1] == max(r[1] for r in rows)
