"""Ablation: degeneracy-based accelerations for MCF.

Not in the paper's evaluation, but standard practice the framework can
host without engine changes: precomputed core numbers prune spawns, and
a greedy degeneracy clique seeds the aggregator so branch-and-bound
starts with a tight incumbent instead of warming up.
"""

from repro.apps import MaxCliqueComper
from repro.bench import bench_config, emit, format_seconds, render_table
from repro.graph import core_numbers, greedy_clique_seed, make_dataset
from repro.sim import run_simulated_job


def test_seeding_ablation(benchmark):
    g = make_dataset("friendster", scale=1.5)
    out = {}

    def run_all():
        cfg = bench_config(4, 4)
        out["fig5"] = run_simulated_job(MaxCliqueComper, g, cfg)
        cores = core_numbers(g)
        seed = greedy_clique_seed(g)
        out["seeded"] = run_simulated_job(
            lambda: MaxCliqueComper(core_numbers=cores, initial_clique=seed),
            g, cfg,
        )
        out["seed_size"] = len(seed)
        return out

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    fig5, seeded = out["fig5"], out["seeded"]
    assert len(seeded.aggregate) == len(fig5.aggregate)
    rows = [
        ["Fig. 5 as published", format_seconds(fig5.virtual_time_s),
         int(fig5.metrics.get("tasks:created", 0))],
        [f"+ core pruning + greedy seed (size {out['seed_size']})",
         format_seconds(seeded.virtual_time_s),
         int(seeded.metrics.get("tasks:created", 0))],
    ]
    emit(render_table("Ablation - degeneracy accelerations (MCF, friendster-like x1.5, 4x4)",
                      ["variant", "time", "tasks spawned"], rows),
         out_path="benchmarks/results/ablation_seeding.txt")
    assert seeded.metrics.get("tasks:created", 0) <= fig5.metrics.get("tasks:created", 0)
