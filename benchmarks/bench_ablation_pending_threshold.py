"""Ablation: the pending-task threshold D (paper default 8C).

D bounds |T_task| + |B_task| before a comper stops popping new tasks;
too small starves the pipeline (no tasks in flight to hide latency),
too large admits unbounded memory.  Swept on a remote-pull-heavy TC
workload.
"""

from repro.bench import bench_config, emit, format_seconds, render_table
from repro.apps import TriangleCountComper
from repro.graph import make_dataset
from repro.sim import run_simulated_job


def test_pending_threshold_sweep(benchmark):
    g = make_dataset("skitter", scale=1.0)
    rows = []

    def run_all():
        for d in (1, 8, 64, 512):
            r = run_simulated_job(
                TriangleCountComper, g, bench_config(4, 4, pending_threshold=d)
            )
            rows.append([
                d,
                format_seconds(r.virtual_time_s),
                int(r.metrics.get("comper:pop_blocked_pending", 0)),
            ])
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(render_table("Ablation - pending threshold D (TC, skitter-like, 4x4)",
                      ["D", "time", "pop-blocked rounds"], rows),
         out_path="benchmarks/results/ablation_pending_threshold.txt")
    blocked = [r[2] for r in rows]
    assert blocked[0] >= blocked[-1]
