"""The paper's 10GigE hypothesis.

Paper §VI on Table IV(b): "our machines were connected by GigE and the
problem may disappear if 10 GigE is used."  The simulator can test that
directly: the same 16x16 MCF workload under both interconnects.
"""

from repro.apps import MaxCliqueComper
from repro.bench import bench_config, emit, format_seconds, render_table
from repro.core.config import NetworkModel
from repro.graph import make_dataset
from repro.sim import run_simulated_job

GIGE = NetworkModel(latency_s=100e-6, bandwidth_bytes_per_s=110e6)
TENGIGE = NetworkModel(latency_s=30e-6, bandwidth_bytes_per_s=1.1e9)


def test_10gige_hypothesis(benchmark):
    g = make_dataset("friendster", scale=2.0)
    rows = []
    out = {}

    def run_all():
        for name, net in (("GigE", GIGE), ("10GigE", TENGIGE)):
            best = None
            for _ in range(2):
                r = run_simulated_job(
                    MaxCliqueComper, g, bench_config(16, 16, network=net)
                )
                if best is None or r.virtual_time_s < best.virtual_time_s:
                    best = r
            out[name] = best
        return out

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    wire = {}
    for name, net in (("GigE", GIGE), ("10GigE", TENGIGE)):
        r = out[name]
        wire[name] = r.network_bytes / net.bandwidth_bytes_per_s / 16
        rows.append([name, format_seconds(r.virtual_time_s),
                     f"{r.network_bytes / (1 << 20):.2f} MB",
                     format_seconds(wire[name])])
    emit(render_table("10GigE hypothesis (MCF, friendster-like x2, 16x16)",
                      ["interconnect", "time", "bytes on the wire",
                       "modeled wire time/link"], rows),
         out_path="benchmarks/results/10gige.txt")
    # The deterministic part of the hypothesis: 10GigE cuts per-link
    # serialization ~10x.  End-to-end totals at this scale are dominated
    # by compute and scheduling noise, which is itself the paper's point
    # (communication already well-hidden); so no assertion on totals.
    assert wire["10GigE"] < wire["GigE"] / 5
