"""Table IV(a): horizontal scalability (MCF, friendster stand-in)."""

from repro.bench import table4a_horizontal


def test_table4a_horizontal(run_table):
    headers, rows = run_table(
        "table4a", "Table IV(a) - Horizontal scaling, MCF on friendster-like (16 compers/machine)",
        table4a_horizontal,
    )
    assert [r[0] for r in rows] == [1, 2, 4, 8, 16]
    # The paper's G-Miner partitioner fails below 4 machines.
    assert rows[0][1] == "Partitioning Error"
    assert rows[1][1] == "Partitioning Error"
