"""The headline claim, measured: G-thinker keeps CPU cores busy.

The paper's abstract: "These designs well overlap communication with
computation to minimize the CPU idle time."  The DES tracks each
simulated core's busy virtual time, so utilization is directly
measurable; the two-phase NScale model is the contrast — its mining
cores cannot start until every subgraph is materialized, so the phase
barrier plus shuffle time is pure idle time for them.
"""

from repro.apps import MaxCliqueComper
from repro.baselines import nscale_max_clique
from repro.bench import bench_config, emit, format_seconds, render_table
from repro.core.config import MachineModel
from repro.graph import make_dataset
from repro.sim import run_simulated_job


def test_cpu_utilization(benchmark):
    g = make_dataset("friendster", scale=1.5)
    out = {}

    def run_all():
        cfg = bench_config(4, 4)
        run_simulated_job(MaxCliqueComper, g, cfg)  # warm-up
        out["gthinker"] = run_simulated_job(MaxCliqueComper, g, cfg)
        out["nscale"] = nscale_max_clique(
            g, machines=4, threads=4, machine=MachineModel(cpu_speed=10.0)
        )
        return out

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    gt = out["gthinker"]
    ns = out["nscale"]
    assert len(gt.aggregate) == len(ns.answer)
    # NScale mining-core utilization: mining cpu over total makespan
    # (the materialize phase + the network rounds are idle time for the
    # mining cores).
    ns_total = ns.virtual_time_s
    ns_mine = ns.detail["mine_cpu_s"] * 10.0 / 16  # cpu_speed / cores
    ns_util = min(1.0, ns_mine / ns_total) if ns_total else 0.0
    rows = [
        ["G-thinker (overlapped)", format_seconds(gt.virtual_time_s),
         f"{gt.cpu_utilization:.0%}"],
        ["NScale-style (materialize, then mine)", format_seconds(ns_total),
         f"{ns_util:.0%}"],
    ]
    emit(render_table(
        "CPU-bound execution (MCF, friendster-like x1.5, 4 machines x 4 cores)",
        ["engine", "time", "mining-core utilization"], rows),
        out_path="benchmarks/results/cpu_utilization.txt")
    assert gt.cpu_utilization > ns_util
