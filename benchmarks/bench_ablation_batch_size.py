"""Ablation: the task-batch size C (paper default 150).

C controls refill granularity, queue capacity (3C) and spill unit; the
paper picked C=150 as the high-throughput point.  We sweep C on a fixed
workload and report virtual time plus spill counts.
"""

from repro.bench import bench_config, emit, format_seconds, render_table
from repro.apps import MaxCliqueComper
from repro.graph import make_dataset
from repro.sim import run_simulated_job


def test_batch_size_sweep(benchmark):
    g = make_dataset("friendster", scale=1.0)
    rows = []

    def run_all():
        for c in (2, 8, 32, 128):
            r = run_simulated_job(
                MaxCliqueComper, g, bench_config(2, 4, task_batch_size=c)
            )
            rows.append([
                c,
                format_seconds(r.virtual_time_s),
                int(r.metrics.get("tasks:spilled", 0)),
            ])
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(render_table("Ablation - task batch size C (MCF, friendster-like, 2x4)",
                      ["C", "time", "tasks spilled"], rows),
         out_path="benchmarks/results/ablation_batch_size.txt")
    assert len(rows) == 4
