"""Table I: feature comparison of subgraph-centric systems."""

from repro.bench import table1_features


def test_table1_features(run_table):
    headers, rows = run_table(
        "table1", "Table I - Feature comparison (desirabilities D1-D7)",
        table1_features,
    )
    by_system = {r[0]: r[1:] for r in rows}
    assert all(mark == "yes" for mark in by_system["gthinker"])
    assert "no" in by_system["gminer"]
