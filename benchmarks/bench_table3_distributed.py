"""Table III: running time + peak memory of MCF/TC/GM across systems.

Paper claims reproduced as assertions: G-thinker beats G-Miner on every
app/dataset; Arabesque cannot scale to the clique-heavy datasets (OOM);
Giraph's TC memory balloons with message volume.
"""

from repro.bench import table3_distributed


def _seconds(cell: str) -> float:
    if "ms" in cell:
        return float(cell.split(" ms")[0]) / 1000
    if " s " in cell or cell.endswith(" s"):
        return float(cell.split(" s")[0])
    return float("inf")  # a failure string


def test_table3_distributed(run_table):
    headers, rows = run_table(
        "table3", "Table III - Distributed systems comparison (4 machines x 4 compers)",
        table3_distributed,
    )
    for row in rows:
        app, dataset, gthinker, giraph, arabesque, gminer = row
        t_gt = _seconds(gthinker.split(" / ")[0])
        t_gm = _seconds(gminer.split(" / ")[0])
        if app != "MCF" or dataset in ("youtube", "btc", "friendster") or t_gm < 0.2:
            # Floor/straggler-dominated cells (EXPERIMENTS.md "known
            # deviation"; friendster-MCF at this scale is one big planted-
            # clique task below tau, so its makespan is one serial task):
            # the mining work on the smallest/sparsest stand-ins is
            # comparable to the simulator's ramp-up/sync floor, and the
            # G-Miner cost model has no such floor, so near-ties flip
            # with measurement noise.  Require the same order of
            # magnitude rather than a strict win.
            assert t_gt < t_gm * 3 + 0.2, (
                f"G-thinker grossly lost {app}/{dataset} "
                f"({gthinker} vs {gminer})"
            )
        else:
            # 1.2x guard: virtual durations inherit measured-wall-time
            # noise, so a strict `<` can flip on a near-tie run even
            # when the median gap is 2x.
            assert t_gt < t_gm * 1.2, (
                f"G-thinker must beat G-Miner on {app}/{dataset} "
                f"({gthinker} vs {gminer})"
            )
    # Arabesque dies on the datasets with large planted cliques.
    mcf = {r[1]: r[4] for r in rows if r[0] == "MCF"}
    assert mcf["orkut"] == "out of memory"
    assert mcf["friendster"] == "out of memory"
