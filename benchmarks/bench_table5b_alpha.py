"""Table V(b): effect of the GC overflow-tolerance alpha."""

from repro.bench import table5b_alpha


def test_table5b_alpha(run_table):
    headers, rows = run_table(
        "table5b", "Table V(b) - Effect of overflow tolerance alpha",
        table5b_alpha,
    )
    assert [r[0] for r in rows] == [0.002, 0.02, 0.2, 2.0]
