"""Job-service benchmark: throughput and latency of the resident-graph
server under concurrent submitters (``BENCH_service.json``).

What PR 7 claims, this measures:

* **Concurrent correctness** — N submitter threads, each with its own
  socket client, drive a mixed workload (tc / bundled tc / maximal
  cliques / mcf / subgraph matching) against one
  :class:`~repro.service.GraphService`; every answer is checked against
  a serial ``run_job`` oracle computed outside the service.
* **Throughput & tail latency** — jobs/sec and the p50/p99/max of
  admission-to-answer latency (client-side clock around
  ``submit``+``result``), reported for a *cold* service (result cache
  disabled — every job mines) and a *warm* one (cache primed — the
  resident-service steady state).
* **The cache-hit proof** — on the warm service every repeated
  submission must come back ``cached`` with **zero** mining rounds
  (the record's ``mining_rounds`` field is the executed job's
  ``tasks:iterations`` worker metric; a cache hit never touches a
  worker).  Any re-mined repeat fails the gate.
* **The cancellation proof** — a running mcf job on
  ``runtime='process'`` is cancelled mid-mining with a tc follower
  queued behind its quota; the gate fails unless the victim settles
  ``cancelled`` *before* the follower (``done_seq`` ordering), the
  follower's answer matches its oracle, and the budget comes back
  whole.  ``cancel_latency_*`` is cancel-call → follower-running:
  exactly the "quota re-admitted within one scheduler pass" claim.
* **The dedup proof** — with the result cache off, three identical
  concurrent mcf submissions must produce one execution
  (``stats()['executed'] == 1``), two attached subscribers, and three
  equal answers.
* **The restart-cache proof** — a second service instance sharing the
  first one's ``cache_dir`` must answer a repeat submission ``cached``
  with zero mining rounds, having executed nothing.

Exit status is non-zero if any answer differs from its oracle, any
warm repeat re-mined, or any of the cancel / dedup / restart gates
fail — the CI ``service-smoke`` gate.

Run::

    python benchmarks/bench_service.py [--quick] [--output PATH]
"""

import argparse
import json
import os
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import GThinkerConfig, run_job
from repro.core.errors import JobCancelledError
from repro.graph import erdos_renyi
from repro.service import GraphService, JobSpec, ServiceClient, build_app_factory

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

TRIANGLE = [[0, 1], [1, 2], [0, 2]]

#: The mixed workload: (app, params, how to normalize the answer).
WORKLOADS = [
    ("tc", {}, "int"),
    ("tc", {"bundle": 8}, "int"),
    ("cliques", {"min_size": 3}, "int"),
    ("mcf", {}, "len"),
    ("gm", {"query_edges": TRIANGLE}, "int"),
]


def _config():
    return GThinkerConfig(num_workers=2, compers_per_worker=2,
                          task_batch_size=16)


def _answer(kind: str, result):
    if kind == "len":
        return len(result.aggregate or ())
    return int(result.aggregate)


def _percentile(values, q):
    values = sorted(values)
    idx = max(0, min(len(values) - 1, round(q * (len(values) - 1))))
    return values[idx]


def serial_oracles(graph):
    """The ground truth: every workload run through plain serial run_job."""
    oracles = {}
    for app, params, kind in WORKLOADS:
        result = run_job(build_app_factory(app, params), graph, _config(),
                         runtime="serial")
        oracles[(app, json.dumps(params, sort_keys=True))] = _answer(kind, result)
    return oracles


def drive_submitters(service, num_submitters, jobs_per_submitter):
    """N threads × M jobs over real sockets; returns per-job rows."""
    host, port = service.address
    rows, failures = [], []

    def submitter(sid):
        try:
            with ServiceClient(f"{host}:{port}") as client:
                for j in range(jobs_per_submitter):
                    app, params, kind = WORKLOADS[(sid + j) % len(WORKLOADS)]
                    started = time.perf_counter()
                    handle = client.submit(app, params, tenant=f"sub{sid}")
                    result = handle.result(timeout=600)
                    latency = time.perf_counter() - started
                    record = handle.record
                    rows.append({
                        "submitter": sid,
                        "app": app,
                        "params": params,
                        "kind": kind,
                        "latency_s": latency,
                        "cached": record["cached"],
                        "mining_rounds": record["mining_rounds"],
                        "answer": _answer(kind, result),
                    })
        except BaseException as exc:  # noqa: BLE001 - reported in the gate
            failures.append(f"submitter {sid}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=submitter, args=(sid,))
               for sid in range(num_submitters)]
    wall_started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_started
    return rows, wall, failures


def check_answers(rows, oracles):
    bad = []
    for row in rows:
        key = (row["app"], json.dumps(row["params"], sort_keys=True))
        if row["answer"] != oracles[key]:
            bad.append(f"{row['app']} {row['params']}: got {row['answer']}, "
                       f"oracle {oracles[key]}")
    return bad


def summarize(rows, wall):
    latencies = [r["latency_s"] for r in rows]
    return {
        "jobs": len(rows),
        "wall_s": round(wall, 4),
        "jobs_per_sec": round(len(rows) / wall, 2) if wall else None,
        "latency_p50_s": round(statistics.median(latencies), 5),
        "latency_p99_s": round(_percentile(latencies, 0.99), 5),
        "latency_max_s": round(max(latencies), 5),
        "cache_hits": sum(1 for r in rows if r["cached"]),
    }


def _wait_status(service, job_id, statuses, timeout=120.0):
    """Poll (in-process) until the job reaches one of ``statuses``."""
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if service.status(job_id)["status"] in statuses:
            return True
        time.sleep(0.001)
    return False


def bench_cancellation(samples):
    """Phase 3 — the running-cancel proof on ``runtime='process'``.

    Each sample: a running mcf victim holds the whole worker budget, a
    tc follower queues behind it, the victim is cancelled mid-mining.
    The latency is cancel-call -> follower-running: exactly how long
    the cancelled quota took to be re-admitted.

    Runs on its own dense graph: mcf there mines for seconds, so every
    cancel reliably lands mid-run (on the main benchmark graph mcf can
    finish before the abort does, voiding the sample).
    """
    failures, latencies = [], []
    config = _config()
    graph = erdos_renyi(400, 0.3, seed=7)
    oracle_tc = int(run_job(build_app_factory("tc", {}), graph, config,
                            runtime="serial").aggregate)
    with GraphService(graph, config=config, runtime="process",
                      worker_budget=config.num_workers,
                      result_cache_size=0) as svc:
        for i in range(samples):
            victim = svc.submit(JobSpec("mcf"))
            if not _wait_status(svc, victim["job_id"], ("running",)):
                failures.append(f"sample {i}: victim never started")
                break
            follower = svc.submit(JobSpec("tc"))
            if follower["status"] != "queued":
                failures.append(f"sample {i}: follower not queued "
                                f"(got {follower['status']})")
            time.sleep(0.05)  # give the victim real mining to abandon
            cancel_at = time.perf_counter()
            if not svc.cancel(victim["job_id"]):
                failures.append(
                    f"sample {i}: cancel refused, victim was "
                    f"{svc.status(victim['job_id'])['status']}")
                svc.wait_result(follower["job_id"], timeout=600)
                continue
            if _wait_status(svc, follower["job_id"], ("running", "done")):
                latencies.append(time.perf_counter() - cancel_at)
            else:
                failures.append(f"sample {i}: follower never got the "
                                f"cancelled victim's quota")
            try:
                answer = int(svc.wait_result(follower["job_id"],
                                             timeout=600).aggregate)
                if answer != oracle_tc:
                    failures.append(f"sample {i}: follower answered "
                                    f"{answer}, oracle {oracle_tc}")
            except BaseException as exc:  # noqa: BLE001
                failures.append(f"sample {i}: follower failed: {exc}")
            try:
                svc.wait_result(victim["job_id"], timeout=60)
                failures.append(f"sample {i}: victim finished despite cancel")
            except JobCancelledError:
                pass
            v_seq = svc.status(victim["job_id"])["done_seq"]
            f_seq = svc.status(follower["job_id"])["done_seq"]
            if not (v_seq is not None and f_seq is not None
                    and v_seq < f_seq):
                failures.append(f"sample {i}: done_seq order broken "
                                f"(victim {v_seq}, follower {f_seq})")
        stats = svc.stats()
    if stats["workers_available"] != config.num_workers:
        failures.append(f"budget leak: {stats['workers_available']} of "
                        f"{config.num_workers} workers available after drain")
    summary = {
        "samples": samples,
        "graph": {"model": "erdos_renyi", "n": 400, "p": 0.3, "seed": 7,
                  "num_edges": graph.num_edges},
        "cancelled": stats["cancelled"],
        "cancel_latency_p50_s": (round(statistics.median(latencies), 5)
                                 if latencies else None),
        "cancel_latency_p99_s": (round(_percentile(latencies, 0.99), 5)
                                 if latencies else None),
        "cancel_latency_max_s": (round(max(latencies), 5)
                                 if latencies else None),
        "cancel_proven": not failures and len(latencies) == samples,
    }
    return summary, failures


def bench_dedup(graph, oracle_mcf):
    """Phase 4 — three identical concurrent mcf submissions, cache off:
    one execution, two attached subscribers, three equal answers."""
    failures = []
    with GraphService(graph, config=_config(), runtime="threaded",
                      worker_budget=2, result_cache_size=0) as svc:
        first = svc.submit(JobSpec("mcf", tenant="a"))
        if not _wait_status(svc, first["job_id"], ("running",)):
            failures.append("dedup: primary submission never started")
        second = svc.submit(JobSpec("mcf", tenant="b"))
        third = svc.submit(JobSpec("mcf", tenant="c"))
        answers = []
        for rec in (first, second, third):
            try:
                result = svc.wait_result(rec["job_id"], timeout=600)
                answers.append(len(result.aggregate or ()))
            except BaseException as exc:  # noqa: BLE001
                failures.append(f"dedup: {rec['job_id']} failed: {exc}")
        stats = svc.stats()
    if stats["executed"] != 1:
        failures.append(f"dedup: executed {stats['executed']} times, want 1")
    if stats["deduped"] != 2:
        failures.append(f"dedup: {stats['deduped']} attachments, want 2")
    if answers != [oracle_mcf] * 3:
        failures.append(f"dedup: answers {answers}, oracle {oracle_mcf}")
    summary = {
        "executed": stats["executed"],
        "deduped": stats["deduped"],
        "attached_records": [bool(second["deduped"]), bool(third["deduped"])],
        "dedup_proven": not failures,
    }
    return summary, failures


def bench_restart_cache(graph, oracle_tc):
    """Phase 5 — a restarted service (same ``cache_dir``) answers the
    repeat from disk: cached, zero mining rounds, nothing executed."""
    failures = []
    with tempfile.TemporaryDirectory(prefix="bench-service-cache-") as d:
        with GraphService(graph, config=_config(), runtime="threaded",
                          worker_budget=2, cache_dir=d) as svc:
            rec = svc.submit(JobSpec("tc"))
            svc.wait_result(rec["job_id"], timeout=600)
        with GraphService(graph, config=_config(), runtime="threaded",
                          worker_budget=2, cache_dir=d) as svc2:
            repeat = svc2.submit(JobSpec("tc"))
            answer = int(svc2.wait_result(repeat["job_id"],
                                          timeout=60).aggregate)
            record = svc2.status(repeat["job_id"])
            stats = svc2.stats()
    if not record["cached"]:
        failures.append("restart: repeat was not served from the disk cache")
    if record["mining_rounds"] != 0:
        failures.append(f"restart: repeat mined "
                        f"{record['mining_rounds']} rounds, want 0")
    if stats["executed"] != 0:
        failures.append(f"restart: restarted service executed "
                        f"{stats['executed']} jobs, want 0")
    if answer != oracle_tc:
        failures.append(f"restart: answer {answer}, oracle {oracle_tc}")
    summary = {
        "cached": bool(record["cached"]),
        "mining_rounds": record["mining_rounds"],
        "executed": stats["executed"],
        "restart_cache_proven": not failures,
    }
    return summary, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="job-service benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph / fewer submitters (CI)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    if args.quick:
        n, p, submitters, laps, cancel_samples = 250, 0.05, 2, 1, 3
    else:
        n, p, submitters, laps, cancel_samples = 800, 0.025, 4, 2, 5
    jobs_per_submitter = laps * len(WORKLOADS)

    graph = erdos_renyi(n, p, seed=42)
    print(f"graph: n={n} p={p} ({graph.num_edges} edges); "
          f"{submitters} submitters x {jobs_per_submitter} jobs", flush=True)
    oracles = serial_oracles(graph)

    # Phase 1 — cold service: cache disabled, every job actually mines.
    with GraphService(graph, config=_config(), runtime="threaded",
                      worker_budget=4, result_cache_size=0) as cold_svc:
        cold_rows, cold_wall, cold_failures = drive_submitters(
            cold_svc, submitters, jobs_per_submitter)
    cold_bad = check_answers(cold_rows, oracles)
    cold = summarize(cold_rows, cold_wall)
    cold["all_mined"] = all(not r["cached"] for r in cold_rows)
    print(f"cold: {cold['jobs_per_sec']} jobs/s, "
          f"p99={cold['latency_p99_s']}s", flush=True)

    # Phase 2 — warm service: prime the cache with one pass, then the
    # same concurrent workload; every repeat must be a zero-round hit.
    with GraphService(graph, config=_config(), runtime="threaded",
                      worker_budget=4) as warm_svc:
        prime_rows, _, prime_failures = drive_submitters(warm_svc, 1,
                                                         len(WORKLOADS))
        warm_rows, warm_wall, warm_failures = drive_submitters(
            warm_svc, submitters, jobs_per_submitter)
        warm_stats = warm_svc.stats()
    warm_bad = check_answers(prime_rows + warm_rows, oracles)
    warm = summarize(warm_rows, warm_wall)
    warm["all_cached"] = all(r["cached"] for r in warm_rows)
    warm["mining_rounds_total"] = sum(r["mining_rounds"] for r in warm_rows)
    prime_mined = all(r["mining_rounds"] > 0 for r in prime_rows)
    print(f"warm: {warm['jobs_per_sec']} jobs/s, "
          f"p99={warm['latency_p99_s']}s, all_cached={warm['all_cached']}, "
          f"repeat mining rounds={warm['mining_rounds_total']}", flush=True)

    oracle_tc = oracles[("tc", json.dumps({}, sort_keys=True))]
    oracle_mcf = oracles[("mcf", json.dumps({}, sort_keys=True))]

    # Phase 3 — running-job cancellation on runtime='process'.
    cancel, cancel_failures = bench_cancellation(cancel_samples)
    print(f"cancel: {cancel['samples']} samples, "
          f"p99={cancel['cancel_latency_p99_s']}s, "
          f"proven={cancel['cancel_proven']}", flush=True)

    # Phase 4 — in-flight dedup (cache off: attachment, not memoization).
    dedup, dedup_failures = bench_dedup(graph, oracle_mcf)
    print(f"dedup: executed={dedup['executed']} deduped={dedup['deduped']} "
          f"proven={dedup['dedup_proven']}", flush=True)

    # Phase 5 — the persistent cache across a service restart.
    restart, restart_failures = bench_restart_cache(graph, oracle_tc)
    print(f"restart: cached={restart['cached']} "
          f"rounds={restart['mining_rounds']} "
          f"proven={restart['restart_cache_proven']}", flush=True)

    failures = cold_failures + prime_failures + warm_failures
    gate_failures = cancel_failures + dedup_failures + restart_failures
    answers_equal = not (cold_bad or warm_bad)
    cache_proven = (warm["all_cached"]
                    and warm["mining_rounds_total"] == 0
                    and prime_mined)
    report = {
        "benchmark": "service",
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "graph": {"model": "erdos_renyi", "n": n, "p": p, "seed": 42,
                  "num_edges": graph.num_edges},
        "submitters": submitters,
        "jobs_per_submitter": jobs_per_submitter,
        "workloads": [{"app": a, "params": prm} for a, prm, _ in WORKLOADS],
        "cold": cold,
        "warm": warm,
        "cancellation": cancel,
        "dedup": dedup,
        "restart_cache": restart,
        "server_stats_warm": warm_stats,
        "answers_equal": answers_equal,
        "cache_hit_proven": cache_proven,
        "cancel_proven": cancel["cancel_proven"],
        "cancel_latency_p99": cancel["cancel_latency_p99_s"],
        "dedup_proven": dedup["dedup_proven"],
        "restart_cache_proven": restart["restart_cache_proven"],
        "submitter_failures": failures,
        "gate_failures": gate_failures,
    }
    with open(args.output, "w", encoding="ascii") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")

    ok = True
    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        ok = False
    if not answers_equal:
        for line in cold_bad + warm_bad:
            print(f"FAIL: answer mismatch: {line}")
        ok = False
    if not cache_proven:
        print(f"FAIL: cache-hit proof: all_cached={warm['all_cached']}, "
              f"repeat mining rounds={warm['mining_rounds_total']} "
              f"(want 0), primer mined={prime_mined}")
        ok = False
    if not cold["all_mined"]:
        print("FAIL: cold service served from a cache that should be off")
        ok = False
    if gate_failures:
        for line in gate_failures:
            print(f"FAIL: {line}")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
