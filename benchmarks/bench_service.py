"""Job-service benchmark: throughput and latency of the resident-graph
server under concurrent submitters (``BENCH_service.json``).

What PR 7 claims, this measures:

* **Concurrent correctness** — N submitter threads, each with its own
  socket client, drive a mixed workload (tc / bundled tc / maximal
  cliques / mcf / subgraph matching) against one
  :class:`~repro.service.GraphService`; every answer is checked against
  a serial ``run_job`` oracle computed outside the service.
* **Throughput & tail latency** — jobs/sec and the p50/p99/max of
  admission-to-answer latency (client-side clock around
  ``submit``+``result``), reported for a *cold* service (result cache
  disabled — every job mines) and a *warm* one (cache primed — the
  resident-service steady state).
* **The cache-hit proof** — on the warm service every repeated
  submission must come back ``cached`` with **zero** mining rounds
  (the record's ``mining_rounds`` field is the executed job's
  ``tasks:iterations`` worker metric; a cache hit never touches a
  worker).  Any re-mined repeat fails the gate.

Exit status is non-zero if any answer differs from its oracle or any
warm repeat actually re-mined — the CI ``service-smoke`` gate.

Run::

    python benchmarks/bench_service.py [--quick] [--output PATH]
"""

import argparse
import json
import os
import statistics
import sys
import threading
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import GThinkerConfig, run_job
from repro.graph import erdos_renyi
from repro.service import GraphService, ServiceClient, build_app_factory

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

TRIANGLE = [[0, 1], [1, 2], [0, 2]]

#: The mixed workload: (app, params, how to normalize the answer).
WORKLOADS = [
    ("tc", {}, "int"),
    ("tc", {"bundle": 8}, "int"),
    ("cliques", {"min_size": 3}, "int"),
    ("mcf", {}, "len"),
    ("gm", {"query_edges": TRIANGLE}, "int"),
]


def _config():
    return GThinkerConfig(num_workers=2, compers_per_worker=2,
                          task_batch_size=16)


def _answer(kind: str, result):
    if kind == "len":
        return len(result.aggregate or ())
    return int(result.aggregate)


def _percentile(values, q):
    values = sorted(values)
    idx = max(0, min(len(values) - 1, round(q * (len(values) - 1))))
    return values[idx]


def serial_oracles(graph):
    """The ground truth: every workload run through plain serial run_job."""
    oracles = {}
    for app, params, kind in WORKLOADS:
        result = run_job(build_app_factory(app, params), graph, _config(),
                         runtime="serial")
        oracles[(app, json.dumps(params, sort_keys=True))] = _answer(kind, result)
    return oracles


def drive_submitters(service, num_submitters, jobs_per_submitter):
    """N threads × M jobs over real sockets; returns per-job rows."""
    host, port = service.address
    rows, failures = [], []

    def submitter(sid):
        try:
            with ServiceClient(f"{host}:{port}") as client:
                for j in range(jobs_per_submitter):
                    app, params, kind = WORKLOADS[(sid + j) % len(WORKLOADS)]
                    started = time.perf_counter()
                    handle = client.submit(app, params, tenant=f"sub{sid}")
                    result = handle.result(timeout=600)
                    latency = time.perf_counter() - started
                    record = handle.record
                    rows.append({
                        "submitter": sid,
                        "app": app,
                        "params": params,
                        "kind": kind,
                        "latency_s": latency,
                        "cached": record["cached"],
                        "mining_rounds": record["mining_rounds"],
                        "answer": _answer(kind, result),
                    })
        except BaseException as exc:  # noqa: BLE001 - reported in the gate
            failures.append(f"submitter {sid}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=submitter, args=(sid,))
               for sid in range(num_submitters)]
    wall_started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_started
    return rows, wall, failures


def check_answers(rows, oracles):
    bad = []
    for row in rows:
        key = (row["app"], json.dumps(row["params"], sort_keys=True))
        if row["answer"] != oracles[key]:
            bad.append(f"{row['app']} {row['params']}: got {row['answer']}, "
                       f"oracle {oracles[key]}")
    return bad


def summarize(rows, wall):
    latencies = [r["latency_s"] for r in rows]
    return {
        "jobs": len(rows),
        "wall_s": round(wall, 4),
        "jobs_per_sec": round(len(rows) / wall, 2) if wall else None,
        "latency_p50_s": round(statistics.median(latencies), 5),
        "latency_p99_s": round(_percentile(latencies, 0.99), 5),
        "latency_max_s": round(max(latencies), 5),
        "cache_hits": sum(1 for r in rows if r["cached"]),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="job-service benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph / fewer submitters (CI)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    if args.quick:
        n, p, submitters, laps = 250, 0.05, 2, 1
    else:
        n, p, submitters, laps = 800, 0.025, 4, 2
    jobs_per_submitter = laps * len(WORKLOADS)

    graph = erdos_renyi(n, p, seed=42)
    print(f"graph: n={n} p={p} ({graph.num_edges} edges); "
          f"{submitters} submitters x {jobs_per_submitter} jobs", flush=True)
    oracles = serial_oracles(graph)

    # Phase 1 — cold service: cache disabled, every job actually mines.
    with GraphService(graph, config=_config(), runtime="threaded",
                      worker_budget=4, result_cache_size=0) as cold_svc:
        cold_rows, cold_wall, cold_failures = drive_submitters(
            cold_svc, submitters, jobs_per_submitter)
    cold_bad = check_answers(cold_rows, oracles)
    cold = summarize(cold_rows, cold_wall)
    cold["all_mined"] = all(not r["cached"] for r in cold_rows)
    print(f"cold: {cold['jobs_per_sec']} jobs/s, "
          f"p99={cold['latency_p99_s']}s", flush=True)

    # Phase 2 — warm service: prime the cache with one pass, then the
    # same concurrent workload; every repeat must be a zero-round hit.
    with GraphService(graph, config=_config(), runtime="threaded",
                      worker_budget=4) as warm_svc:
        prime_rows, _, prime_failures = drive_submitters(warm_svc, 1,
                                                         len(WORKLOADS))
        warm_rows, warm_wall, warm_failures = drive_submitters(
            warm_svc, submitters, jobs_per_submitter)
        warm_stats = warm_svc.stats()
    warm_bad = check_answers(prime_rows + warm_rows, oracles)
    warm = summarize(warm_rows, warm_wall)
    warm["all_cached"] = all(r["cached"] for r in warm_rows)
    warm["mining_rounds_total"] = sum(r["mining_rounds"] for r in warm_rows)
    prime_mined = all(r["mining_rounds"] > 0 for r in prime_rows)
    print(f"warm: {warm['jobs_per_sec']} jobs/s, "
          f"p99={warm['latency_p99_s']}s, all_cached={warm['all_cached']}, "
          f"repeat mining rounds={warm['mining_rounds_total']}", flush=True)

    failures = cold_failures + prime_failures + warm_failures
    answers_equal = not (cold_bad or warm_bad)
    cache_proven = (warm["all_cached"]
                    and warm["mining_rounds_total"] == 0
                    and prime_mined)
    report = {
        "benchmark": "service",
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "graph": {"model": "erdos_renyi", "n": n, "p": p, "seed": 42,
                  "num_edges": graph.num_edges},
        "submitters": submitters,
        "jobs_per_submitter": jobs_per_submitter,
        "workloads": [{"app": a, "params": prm} for a, prm, _ in WORKLOADS],
        "cold": cold,
        "warm": warm,
        "server_stats_warm": warm_stats,
        "answers_equal": answers_equal,
        "cache_hit_proven": cache_proven,
        "submitter_failures": failures,
    }
    with open(args.output, "w", encoding="ascii") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")

    ok = True
    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        ok = False
    if not answers_equal:
        for line in cold_bad + warm_bad:
            print(f"FAIL: answer mismatch: {line}")
        ok = False
    if not cache_proven:
        print(f"FAIL: cache-hit proof: all_cached={warm['all_cached']}, "
              f"repeat mining rounds={warm['mining_rounds_total']} "
              f"(want 0), primer mined={prime_mined}")
        ok = False
    if not cold["all_mined"]:
        print("FAIL: cold service served from a cache that should be off")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
