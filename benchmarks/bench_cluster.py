"""Cluster-runtime benchmark: a 2-node localhost TCP cluster vs the
serial oracle (``BENCH_cluster.json``).

What the cluster runtime is for is machines; what this benchmark can
measure on one box is (a) that the full TCP stack — GTWIRE1 frames over
persistent sockets, control channel, boot handshake, termination sweeps
— returns *exactly* the serial answers, and (b) what the stack costs:
per-node wall clock, the ``tcp:*`` frame counters, and the ``net:bytes``
split by locality (``local`` / ``same_host`` / ``cross_host`` — on a
localhost cluster everything lands in the first two; a multi-host run
shifts the third, which is the number the paper's GigE analysis cares
about).

Protocol
--------
* TC (triangle count) and MCF (maximum clique) on Erdos-Renyi graphs;
  MCF answers compare by clique *size* (distinct maximum cliques of
  equal size are all correct).
* Serial and 2-node-cluster runs interleave (s, c, s, c, ...) and each
  wall time is the best of k rounds.
* Per-node metrics come back merged into the job result (each node's
  registry snapshot is folded in at join); the report carries the
  shared-fate counters plus the locality byte split.
* ``speedup_valid`` marks whether the wall-clock ratio means anything:
  on <2 cores a localhost cluster cannot beat serial by construction,
  and even on many cores the TCP stack trades latency for the ability
  to leave the machine — the gate is answers, never speed.

Exit status is non-zero only if any answer differs from serial — the CI
cluster-smoke gate.

Run::

    python benchmarks/bench_cluster.py [--quick] [--output PATH]
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import MaxCliqueComper, TriangleCountComper
from repro.core import GThinkerConfig, run_job
from repro.graph import erdos_renyi

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

#: Transport counters copied into the report from one cluster run.
EVIDENCE_KEYS = (
    "net:messages",
    "net:bytes",
    "net:bytes_local",
    "net:bytes_same_host",
    "net:bytes_cross_host",
    "tcp:frames",
    "tcp:batched_messages",
    "tcp:payload_bytes",
    "steal:tasks",
    "ft:checkpoints",
)

APPS = {
    "tc": TriangleCountComper,
    "mcf": MaxCliqueComper,
}

NUM_NODES = 2


def _config(num_workers: int, n: int) -> GThinkerConfig:
    return GThinkerConfig(
        num_workers=num_workers,
        compers_per_worker=1,
        task_batch_size=64,
        cache_capacity=max(4 * n, 4096),
        cache_buckets=64,
        decompose_threshold=100,
    )


def _answer(app: str, result) -> int:
    if app == "mcf":
        return len(result.aggregate or ())
    return int(result.aggregate)


def bench_workload(app: str, n: int, avg_deg: int, seed: int,
                   rounds: int) -> dict:
    graph = erdos_renyi(n, avg_deg / (n - 1), seed=seed)
    comper = APPS[app]
    serial_cfg = _config(num_workers=1, n=n)
    cluster_cfg = _config(num_workers=NUM_NODES, n=n)

    walls = {"serial": float("inf"), "cluster": float("inf")}
    answers = {}
    evidence = {}
    for _ in range(rounds):
        for runtime, cfg in (("serial", serial_cfg), ("cluster", cluster_cfg)):
            started = time.perf_counter()
            result = run_job(comper, graph, cfg, runtime=runtime)
            walls[runtime] = min(walls[runtime],
                                 time.perf_counter() - started)
            answers[runtime] = _answer(app, result)
            if runtime == "cluster":
                evidence = {k: result.metrics.get(k, 0)
                            for k in EVIDENCE_KEYS}

    total_bytes = evidence.get("net:bytes", 0) or 1
    row = {
        "app": app,
        "graph": {"model": "erdos_renyi", "n": n, "avg_deg": avg_deg,
                  "p": round(avg_deg / (n - 1), 6), "seed": seed,
                  "num_edges": graph.num_edges},
        "rounds": rounds,
        "serial_wall_s": round(walls["serial"], 4),
        "cluster_wall_s": round(walls["cluster"], 4),
        "speedup_vs_serial": round(walls["serial"] / walls["cluster"], 3),
        "answers": answers,
        "answers_equal": answers["serial"] == answers["cluster"],
        "cluster_metrics": evidence,
        "bytes_by_locality": {
            "local": evidence.get("net:bytes_local", 0),
            "same_host": evidence.get("net:bytes_same_host", 0),
            "cross_host": evidence.get("net:bytes_cross_host", 0),
            "cross_host_fraction": round(
                evidence.get("net:bytes_cross_host", 0) / total_bytes, 4
            ),
        },
    }
    print(f"{app} n={n} deg={avg_deg}: serial={walls['serial']:.3f}s "
          f"cluster={walls['cluster']:.3f}s "
          f"answers_equal={row['answers_equal']}", flush=True)
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="cluster-runtime benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="smaller graphs / fewer rounds (CI)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    if args.quick:
        grid = [(800, 10, 41), (1500, 12, 42)]
        rounds = 2
    else:
        grid = [(2000, 12, 41), (5000, 16, 42), (8000, 20, 43)]
        rounds = 3

    rows = []
    for app in ("tc", "mcf"):
        for n, avg_deg, seed in grid:
            rows.append(bench_workload(app, n, avg_deg, seed, rounds))

    answers_equal = all(r["answers_equal"] for r in rows)
    report = {
        "benchmark": "cluster_runtime",
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "num_nodes": NUM_NODES,
        "speedup_valid": (os.cpu_count() or 1) >= 2,
        "answers_equal": answers_equal,
        "workloads": rows,
    }
    with open(args.output, "w", encoding="ascii") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")

    if not answers_equal:
        for r in rows:
            if not r["answers_equal"]:
                print(f"FAIL: answers differ for {r['app']} "
                      f"n={r['graph']['n']} deg={r['graph']['avg_deg']}: "
                      f"{r['answers']}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
