"""Ablation: low-degree task bundling (the paper's future-work item).

Paper §VI: "the improvement from 8 VMs to 16 is not significant because
tasks spawned from many low-degree vertices do not generate large enough
subgraphs to hide IO cost in the computation, but this can be solved by
bundling tasks of low-degree vertices into big tasks as done in [38]".
We implemented the bundling; this bench measures it on TC at 16x16.
"""

from repro.apps import BundledTriangleCountComper, TriangleCountComper
from repro.bench import bench_config, emit, format_seconds, render_table
from repro.graph import make_dataset
from repro.sim import run_simulated_job


def test_bundling_ablation(benchmark):
    g = make_dataset("youtube", scale=2.0)
    out = {}

    def run_all():
        cfg = bench_config(16, 16)
        out["plain"] = run_simulated_job(TriangleCountComper, g, cfg)
        out["bundled"] = run_simulated_job(
            lambda: BundledTriangleCountComper(bundle_size=64, heavy_threshold=24),
            g, cfg,
        )
        return out

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    plain, bundled = out["plain"], out["bundled"]
    assert plain.aggregate == bundled.aggregate
    rows = [
        ["per-vertex tasks (paper's TC)", format_seconds(plain.virtual_time_s),
         int(plain.metrics["tasks:created"]), int(plain.metrics["net:messages"])],
        ["bundled low-degree tasks", format_seconds(bundled.virtual_time_s),
         int(bundled.metrics["tasks:created"]), int(bundled.metrics["net:messages"])],
    ]
    emit(render_table(
        "Ablation - low-degree task bundling (TC, youtube-like x2, 16x16)",
        ["strategy", "time", "tasks", "messages"], rows),
        out_path="benchmarks/results/ablation_bundling.txt")
    assert bundled.metrics["tasks:created"] < plain.metrics["tasks:created"] / 3
