"""Pull-path benchmark: ``runtime='process'`` vs serial on graphs the
cache actually matters for (``BENCH_pullpath.json``).

Before the bulk pull path (per-vertex cache ops, per-vertex responses,
fixed idle sleeps) the process runtime ran MCF at n>=5k at ~0.27x the
serial wall clock on a single core.  This benchmark is the regression
gate for the batched path: dedup'd request batches, struct-of-arrays
responses, bucket-lock amortization, and wake-on-work scheduling.

Protocol
--------
* MCF (maximum clique) and TC (triangle count) on Erdos-Renyi graphs
  with n >= 5k at several densities.
* Serial and process runs are *interleaved* (s, p, p', s, p, p', ...)
  so slow drift in machine load hits every runtime equally; each wall
  time is the best of k rounds (scheduler jitter only ever adds time).
  The process runtime runs under BOTH control planes —
  ``control_plane='sweep'`` (the legacy synchronous probe loop) and
  ``'async'`` (push-based status, master-bypass steals) — so the report
  quantifies control-plane overhead directly.
* Each runtime uses its best single-host configuration: the process
  runtime uses one worker per spare core (one worker total on 1-2 CPU
  hosts, where any speedup must come from overhead elimination alone).
* Answers are checked against the serial run: exact equality for TC,
  clique *size* for MCF (distinct maximum cliques of equal size are
  all correct answers).

The JSON report carries a top-level ``speedup_vs_serial.process``
(the best MCF speedup across the measured n>=5k graphs), the pull-path
evidence counters from one process run, and per-mode control-plane
metric sets (``time:master_sweep_s``, ``time:control_idle_s``,
``control:status_pushes``, ``steal:direct_batches``,
``control:steal_plan_skipped``).  Exit status is non-zero if that
headline speedup is < 1.0, any answer differs, or the async mode's
master sweep time exceeds the sweep mode's on the headline MCF
workload — the CI perf-smoke gate.

Run::

    python benchmarks/bench_pullpath.py [--quick] [--output PATH]
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import MaxCliqueComper, TriangleCountComper
from repro.core import GThinkerConfig, run_job
from repro.graph import erdos_renyi

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pullpath.json"

#: Pull-path evidence counters copied into the report from a process run.
EVIDENCE_KEYS = (
    "cache:bucket_lock_acquisitions",
    "cache:hits",
    "cache:miss_first",
    "comm:requests_deduped",
    "comm:requests_served",
    "ipc:batches",
    "ipc:payload_bytes",
    "steal:tasks",
    "time:comm_flush_s",
    "time:comm_serve_s",
    "time:comm_land_s",
    "time:master_sweep_s",
    "time:control_idle_s",
)

#: Control-plane overhead counters reported per control_plane mode.
CONTROL_KEYS = (
    "time:master_sweep_s",
    "time:control_idle_s",
    "control:status_pushes",
    "steal:direct_batches",
    "control:steal_plan_skipped",
)

APPS = {
    "mcf": MaxCliqueComper,
    "tc": TriangleCountComper,
}


def _config(num_workers: int, n: int) -> GThinkerConfig:
    """Best single-host pull-path configuration for an n-vertex graph."""
    return GThinkerConfig(
        num_workers=num_workers,
        compers_per_worker=1,
        task_batch_size=64,
        cache_capacity=max(4 * n, 4096),  # hold the working set
        cache_buckets=64,
        decompose_threshold=100,
    )


def _process_workers() -> int:
    """One worker per spare core; a single worker on 1-2 CPU hosts."""
    cores = os.cpu_count() or 1
    return 1 if cores < 4 else 2


def _answer(app: str, result) -> int:
    if app == "mcf":
        return len(result.aggregate or ())
    return int(result.aggregate)


def bench_workload(app: str, n: int, avg_deg: int, seed: int,
                   rounds: int) -> dict:
    graph = erdos_renyi(n, avg_deg / (n - 1), seed=seed)
    comper = APPS[app]
    serial_cfg = _config(num_workers=1, n=n)
    base_cfg = _config(num_workers=_process_workers(), n=n)
    points = (
        ("serial", "serial", serial_cfg),
        ("process", "process",
         base_cfg.with_updates(control_plane="sweep")),
        ("process_async", "process",
         base_cfg.with_updates(control_plane="async")),
    )

    walls = {label: float("inf") for label, _, _ in points}
    answers = {}
    evidence = {}
    control = {}
    for _ in range(rounds):
        for label, runtime, cfg in points:
            started = time.perf_counter()
            result = run_job(comper, graph, cfg, runtime=runtime)
            walls[label] = min(walls[label],
                               time.perf_counter() - started)
            answers[label] = _answer(app, result)
            if label == "process":
                evidence = {k: result.metrics.get(k, 0)
                            for k in EVIDENCE_KEYS}
            if runtime == "process":
                mode = cfg.control_plane
                control[mode] = {k: result.metrics.get(k, 0)
                                 for k in CONTROL_KEYS}

    speedup = walls["serial"] / walls["process"]
    speedup_async = walls["serial"] / walls["process_async"]
    cpu_count = os.cpu_count() or 1
    row = {
        "app": app,
        "graph": {"model": "erdos_renyi", "n": n, "avg_deg": avg_deg,
                  "p": round(avg_deg / (n - 1), 6), "seed": seed,
                  "num_edges": graph.num_edges},
        "rounds": rounds,
        # Effective parallelism of THIS measurement, not of the machine
        # the report was merged on: downstream tooling judges each
        # workload's speedup on the workload's own recorded environment.
        "cpu_count": cpu_count,
        "process_workers": base_cfg.num_workers,
        "speedup_valid": cpu_count >= 2,
        "serial_wall_s": round(walls["serial"], 4),
        "process_wall_s": round(walls["process"], 4),
        "process_async_wall_s": round(walls["process_async"], 4),
        "speedup_vs_serial": round(speedup, 3),
        "speedup_vs_serial_async": round(speedup_async, 3),
        "answers": answers,
        "answers_equal": (answers["serial"] == answers["process"]
                          == answers["process_async"]),
        "process_metrics": evidence,
        "control_plane": control,
    }
    print(f"{app} n={n} deg={avg_deg}: serial={walls['serial']:.3f}s "
          f"process={walls['process']:.3f}s "
          f"async={walls['process_async']:.3f}s speedup={speedup:.2f}x "
          f"sweep_s={control['sweep']['time:master_sweep_s']:.4f} vs "
          f"{control['async']['time:master_sweep_s']:.4f} "
          f"answers_equal={row['answers_equal']}", flush=True)
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="pull-path benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="smaller graphs / fewer rounds (CI)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    if args.quick:
        grid = [(6000, 40, 42)]
        rounds = 3
    else:
        grid = [(6000, 40, 42), (12000, 10, 42), (12000, 20, 42),
                (12000, 40, 42)]
        rounds = 5

    rows = []
    for app in ("mcf", "tc"):
        for n, avg_deg, seed in grid:
            rows.append(bench_workload(app, n, avg_deg, seed, rounds))

    mcf_rows = [r for r in rows if r["app"] == "mcf"]
    headline = max(mcf_rows, key=lambda r: r["speedup_vs_serial"])
    answers_equal = all(r["answers_equal"] for r in rows)
    # On a single-core box the process runtime cannot beat serial by
    # construction; the flag tells the CI gate the speedup number is
    # environmental noise, not a regression.  The top-level flag must
    # agree with every per-workload flag (one process, one machine) —
    # the CI gate additionally asserts it is true on >= 2 cores.
    speedup_valid = (os.cpu_count() or 1) >= 2
    assert all(r["speedup_valid"] == speedup_valid for r in rows)
    sweep_time = {
        mode: headline["control_plane"][mode]["time:master_sweep_s"]
        for mode in ("sweep", "async")
    }
    async_sweep_ok = sweep_time["async"] <= sweep_time["sweep"]
    report = {
        "benchmark": "pull_path",
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "process_workers": _process_workers(),
        "speedup_valid": speedup_valid,
        "speedup_vs_serial": {
            "process": headline["speedup_vs_serial"],
            "process_async": headline["speedup_vs_serial_async"],
        },
        "headline": {"app": headline["app"],
                     "graph": headline["graph"],
                     "speedup_vs_serial": headline["speedup_vs_serial"],
                     "speedup_vs_serial_async":
                         headline["speedup_vs_serial_async"],
                     "master_sweep_s": sweep_time},
        "answers_equal": answers_equal,
        "async_sweep_ok": async_sweep_ok,
        "workloads": rows,
    }
    with open(args.output, "w", encoding="ascii") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"headline: mcf n={headline['graph']['n']} "
          f"deg={headline['graph']['avg_deg']} "
          f"speedup={headline['speedup_vs_serial']}x")
    print(f"wrote {args.output}")

    ok = True
    if (os.cpu_count() or 1) >= 2 and not report["speedup_valid"]:
        # A multi-core host whose report claims its speedups are
        # meaningless is a reporting bug, not an environment limitation.
        print(f"FAIL: speedup_valid is false despite "
              f"cpu_count={os.cpu_count()} >= 2")
        ok = False
    if report["speedup_vs_serial"]["process"] < 1.0:
        if speedup_valid:
            print(f"FAIL: process runtime slower than serial on MCF "
                  f"({report['speedup_vs_serial']['process']}x < 1.0x)")
            ok = False
        else:
            print(f"SKIP speedup gate: cpu_count={os.cpu_count()} < 2, "
                  f"speedup numbers are not meaningful here")
    if not answers_equal:
        bad = [r for r in rows if not r["answers_equal"]]
        for r in bad:
            print(f"FAIL: answers differ for {r['app']} "
                  f"n={r['graph']['n']} deg={r['graph']['avg_deg']}: "
                  f"{r['answers']}")
        ok = False
    if not async_sweep_ok:
        print(f"FAIL: async control plane spent more master time than "
              f"the legacy sweep on the headline MCF workload "
              f"({sweep_time['async']:.4f}s > {sweep_time['sweep']:.4f}s)")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
