"""Table IV(b): vertical scalability at 16 machines."""

from repro.bench import table4b_vertical


def test_table4b_vertical(run_table):
    headers, rows = run_table(
        "table4b", "Table IV(b) - Vertical scaling, 16 machines, MCF on friendster-like",
        table4b_vertical,
    )
    assert [r[0] for r in rows] == [1, 2, 4, 8, 16]
