"""Fig. 2: IO cost is linear in |g|, CPU mining cost superlinear.

The crossover justifies G-thinker's whole design: past a modest |g| the
CPU side dominates, so communication can hide under computation.
"""

from repro.bench import fig2_crossover


def test_fig2_crossover(run_table):
    headers, rows = run_table(
        "fig2", "Fig. 2 - IO (materialize g) vs CPU (mine g) by subgraph size",
        fig2_crossover,
    )
    ratios = [float(r[3]) for r in rows]
    # CPU/IO ratio must grow with |g| and eventually exceed 1.
    assert ratios[-1] > 5.0
    assert ratios[-1] > ratios[0]
