"""Micro + end-to-end benchmark of the numpy adjacency path
(``BENCH_kernels.json``).

Three sections:

* **kernels** — pure-Python ``intersect_sorted`` / ``intersect_sorted_count``
  vs the vectorized :mod:`repro.graph.kernels` at sizes {8, 64, 1k, 64k}
  under balanced (1:1) and skewed (1:100) operand shapes.  The skewed
  shape is the one the galloping searchsorted path targets.
* **mcf_end_to_end** — the same maximum-clique workload as
  ``bench_single_machine.py`` (er(160, 0.12, seed 13), 4x2, tau=12) on
  the serial / threaded / process runtimes, so the numbers are directly
  comparable against ``BENCH_process_runtime.json``.
* **wire_format** — the process runtime run twice (binary vs pickle IPC
  encoding), reporting the measured ``ipc:payload_bytes``.

Run::

    python benchmarks/bench_kernels.py [--quick]

Exit status is non-zero if the numpy kernel fails to beat the
pure-Python oracle at the 64k size (the CI perf-smoke gate).
"""

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.algorithms import max_clique_reference
from repro.apps import MaxCliqueComper
from repro.core import GThinkerConfig, run_job
from repro.graph import erdos_renyi, kernels
from repro.graph.graph import intersect_sorted, intersect_sorted_count

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

SIZES = (8, 64, 1024, 65536)
SKEWS = ((1, 1), (1, 100))  # |a|:|b| operand-size ratios


def _make_pair(rng, size, skew):
    """Two sorted unique int64 arrays with ~30% overlap."""
    small = size
    large = size * skew[1] // skew[0]
    universe = max(4 * large, 16)
    a = np.unique(rng.integers(0, universe, size=small, dtype=np.int64))
    b = np.unique(rng.integers(0, universe, size=large, dtype=np.int64))
    # Force some overlap so the kernels do real work.
    b = np.unique(np.concatenate([b, a[: max(1, a.size // 3)]]))
    return a, b


def _time(fn, args, min_repeat, budget_s=0.25):
    """Best-of-k seconds per call, k sized to a small time budget."""
    best = float("inf")
    elapsed = 0.0
    repeats = 0
    while repeats < min_repeat or elapsed < budget_s:
        t0 = time.perf_counter()
        fn(*args)
        dt = time.perf_counter() - t0
        best = min(best, dt)
        elapsed += dt
        repeats += 1
        if repeats >= 10_000:
            break
    return best


def bench_kernels(quick: bool) -> list:
    rng = np.random.default_rng(20260806)
    min_repeat = 3 if quick else 10
    rows = []
    for size in SIZES:
        for skew in SKEWS:
            a, b = _make_pair(rng, size, skew)
            a_list, b_list = a.tolist(), b.tolist()
            py_s = _time(intersect_sorted, (a_list, b_list), min_repeat)
            np_s = _time(kernels.intersect, (a, b), min_repeat)
            py_count_s = _time(intersect_sorted_count, (a_list, b_list),
                               min_repeat)
            np_count_s = _time(kernels.intersect_count, (a, b), min_repeat)
            rows.append({
                "size": size,
                "skew": f"{skew[0]}:{skew[1]}",
                "operands": [int(a.size), int(b.size)],
                "python_intersect_s": py_s,
                "numpy_intersect_s": np_s,
                "intersect_speedup": round(py_s / np_s, 2),
                "python_count_s": py_count_s,
                "numpy_count_s": np_count_s,
                "count_speedup": round(py_count_s / np_count_s, 2),
            })
    return rows


def bench_mcf(quick: bool) -> dict:
    """End-to-end MCF, comparable to BENCH_process_runtime.json."""
    if quick:
        n, workers = 90, 2
    else:
        n, workers = 160, 4
    graph = erdos_renyi(n, 0.12, seed=13)
    config = GThinkerConfig(
        num_workers=workers,
        compers_per_worker=2,
        task_batch_size=8,
        cache_capacity=4096,
        cache_buckets=64,
        decompose_threshold=12,
        aggregator_sync_period_s=0.005,
    )
    oracle_size = len(max_clique_reference(graph))
    repeats = 1 if quick else 3
    runs = {}
    for runtime in ("serial", "threaded", "process"):
        best = float("inf")
        for _ in range(repeats):  # best-of-k: scheduler jitter dominates
            started = time.perf_counter()
            result = run_job(MaxCliqueComper, graph, config, runtime=runtime)
            best = min(best, time.perf_counter() - started)
        runs[runtime] = {
            "wall_s": round(best, 4),
            "clique_size": len(result.aggregate or ()),
        }
    return {
        "graph": {"model": "erdos_renyi", "n": n, "p": 0.12, "seed": 13},
        "config": {"num_workers": workers, "compers_per_worker": 2,
                   "decompose_threshold": 12},
        "oracle_clique_size": oracle_size,
        "answers_equal": all(r["clique_size"] == oracle_size
                             for r in runs.values()),
        "runtimes": runs,
    }


def bench_wire_format(quick: bool) -> dict:
    """Process-runtime IPC payload bytes: binary frames vs pickle."""
    n, workers = (90, 2) if quick else (160, 4)
    graph = erdos_renyi(n, 0.12, seed=13)
    base = GThinkerConfig(
        num_workers=workers,
        compers_per_worker=2,
        task_batch_size=8,
        cache_capacity=4096,
        cache_buckets=64,
        decompose_threshold=12,
        aggregator_sync_period_s=0.005,
    )
    out = {}
    for fmt in ("binary", "pickle"):
        config = replace(base, ipc_wire_format=fmt)
        result = run_job(MaxCliqueComper, graph, config, runtime="process")
        out[fmt] = {
            "ipc_payload_bytes": int(result.metrics.get("ipc:payload_bytes", 0)),
            "ipc_batches": int(result.metrics.get("ipc:batches", 0)),
            "clique_size": len(result.aggregate or ()),
        }
    if out["pickle"]["ipc_payload_bytes"]:
        out["binary_vs_pickle_ratio"] = round(
            out["binary"]["ipc_payload_bytes"]
            / out["pickle"]["ipc_payload_bytes"], 3
        )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="numpy kernel + wire-format benchmark"
    )
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats / smaller end-to-end graph (CI)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    kernel_rows = bench_kernels(quick=args.quick)
    mcf = bench_mcf(quick=args.quick)
    wire_fmt = bench_wire_format(quick=args.quick)
    report = {
        "benchmark": "numpy_adjacency_path",
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        # Marks whether the *parallel* wall-clock ratios (the
        # mcf_end_to_end section) are meaningful; the kernel speedups
        # compare numpy vs pure python on one thread and are valid on
        # any core count.
        "speedup_valid": (os.cpu_count() or 1) >= 2,
        "kernels": kernel_rows,
        "mcf_end_to_end": mcf,
        "wire_format": wire_fmt,
    }
    with open(args.output, "w", encoding="ascii") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")

    for row in kernel_rows:
        print(f"size={row['size']:<6d} skew={row['skew']:<6s} "
              f"intersect {row['intersect_speedup']:>8.2f}x  "
              f"count {row['count_speedup']:>8.2f}x")
    for name, run in mcf["runtimes"].items():
        print(f"mcf {name:9s} wall={run['wall_s']:.3f}s "
              f"clique={run['clique_size']}")
    print(f"ipc payload bytes: binary={wire_fmt['binary']['ipc_payload_bytes']} "
          f"pickle={wire_fmt['pickle']['ipc_payload_bytes']}")
    print(f"wrote {args.output}")

    ok = mcf["answers_equal"]
    # CI gate: numpy must win at the largest size, in every skew.
    for row in kernel_rows:
        if row["size"] == 65536 and row["intersect_speedup"] < 1.0:
            print(f"FAIL: numpy slower than python at 64k "
                  f"(skew {row['skew']}: {row['intersect_speedup']}x)")
            ok = False
    if not mcf["answers_equal"]:
        print("FAIL: runtimes disagree on the MCF answer")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
