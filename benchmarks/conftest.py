"""Benchmark-suite helpers.

Each benchmark runs one experiment driver exactly once under
pytest-benchmark (``pedantic(rounds=1)``) — the drivers already time the
*simulated* cluster internally; pytest-benchmark records the wall cost
of regenerating the table.  Rendered tables are printed and persisted
under ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import emit, render_table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def run_table(benchmark):
    """Run a (headers, rows) driver once; print + persist the table."""

    def runner(name: str, title: str, driver, *args, **kwargs):
        headers_rows = benchmark.pedantic(
            driver, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        headers, rows = headers_rows
        text = render_table(title, headers, rows)
        emit(text, out_path=str(RESULTS_DIR / f"{name}.txt"))
        return headers, rows

    return runner
