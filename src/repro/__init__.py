"""G-thinker reproduction: a CPU-bound distributed subgraph-mining framework.

Reimplements Yan et al., *"G-thinker: A Distributed Framework for Mining
Subgraphs in a Big Graph"* (ICDE 2020) in Python: the task-based
vertex-pulling API, the concurrent remote-vertex cache, the lightweight
task scheduler with disk spilling and work stealing, the evaluated
applications (maximum clique, triangle counting, subgraph matching,
quasi-cliques), baseline systems, and a discrete-event cluster simulator
that regenerates the paper's experiment tables.

Quick start::

    from repro import run_job, GThinkerConfig
    from repro.apps import TriangleCountComper
    from repro.graph import make_dataset

    g = make_dataset("youtube", scale=0.2)
    result = run_job(TriangleCountComper, g, GThinkerConfig(num_workers=4))
    print("triangles:", result.aggregate)
"""

from .core import (
    Aggregator,
    Comper,
    FailurePlanConfig,
    GThinkerConfig,
    JobHandle,
    JobResult,
    MaxAggregator,
    Session,
    SumAggregator,
    Task,
    Trimmer,
    VertexView,
    available_runtimes,
    build_cluster,
    capability_matrix,
    register_runtime,
    resume_job,
    run_job,
)
from .graph import Graph, make_dataset

__version__ = "1.0.0"

__all__ = [
    "Aggregator",
    "Comper",
    "FailurePlanConfig",
    "GThinkerConfig",
    "JobHandle",
    "JobResult",
    "Session",
    "MaxAggregator",
    "SumAggregator",
    "Task",
    "Trimmer",
    "VertexView",
    "available_runtimes",
    "build_cluster",
    "capability_matrix",
    "register_runtime",
    "resume_job",
    "run_job",
    "Graph",
    "make_dataset",
    "__version__",
]
