"""Discrete-event cluster simulation (virtual-time scaling experiments)."""

from .desruntime import SimJobResult, SimulatedRuntime, run_simulated_job
from .events import EventQueue

__all__ = ["SimJobResult", "SimulatedRuntime", "run_simulated_job", "EventQueue"]
