"""Deterministically-ordered event queue for the discrete-event runtime."""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

__all__ = ["EventQueue"]


class EventQueue:
    """A min-heap of ``(time, tiebreak_seq, payload)`` events.

    The monotone sequence number makes pops total-ordered even when two
    events share a timestamp, so a simulation's *schedule* is a pure
    function of the costs fed into it.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = 0
        self._popped = 0

    def push(self, time: float, payload: Any) -> None:
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def pop(self) -> Tuple[float, Any]:
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        time, _seq, payload = heapq.heappop(self._heap)
        self._popped += 1
        return time, payload

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._popped
