"""Discrete-event simulated runtime: the cluster the paper ran on, in virtual time.

Why this exists (DESIGN.md §2): the paper's headline results are about
*parallel wall-clock* on a 16-node × 16-core cluster.  CPython's GIL
makes real thread-parallel speedup unobservable, so the scaling
experiments run here instead: every comper, communication service, GC
and the master become *entities* on a virtual timeline.

* A comper entity executes its real ``engine.step()`` (actual mining on
  the actual graph); the step's **measured CPU time** becomes its
  virtual duration (scaled by ``MachineModel.cpu_speed``), plus any
  modeled disk time its spills/refills charged to the worker's cost
  meter.  Compers of the same worker are independent timelines — truly
  parallel cores, which is exactly what the GIL denies us natively.
* The transport runs in *timed* mode: a message is deliverable
  ``latency + bytes/bandwidth`` after it is sent, FIFO per destination
  link (``NetworkModel``, GigE-like defaults).
* Comm/GC entities wake periodically (and comm also at the next message
  arrival); the master entity syncs every
  ``config.aggregator_sync_period_s`` of virtual time.

The result is a :class:`SimJobResult` whose ``virtual_time_s`` is the
modeled job makespan — the quantity the paper's Tables III–V report —
while answers (clique, counts, outputs) are exact, because the real
algorithms really ran.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..core.config import GThinkerConfig
from ..core.errors import GThinkerError
from ..core.job import GraphSource, JobResult, build_cluster
from ..core.metrics import MetricsAccessors
from ..core.runtime import Cluster
from .events import EventQueue

__all__ = ["SimJobResult", "SimulatedRuntime", "run_simulated_job"]

#: Scheduling granularity floors (virtual seconds).
_MIN_STEP = 2e-6
_IDLE_BACKOFF_START = 100e-6
_IDLE_BACKOFF_CAP = 5e-3
_COMM_PERIOD = 200e-6
_GC_PERIOD = 1e-3


@dataclass
class SimJobResult(MetricsAccessors):
    """A finished simulated job."""

    aggregate: Any
    outputs: List[Any]
    metrics: Dict[str, float]
    virtual_time_s: float
    wall_time_s: float
    events: int
    num_workers: int
    compers_per_worker: int
    #: Mean fraction of the makespan each simulated core spent computing
    #: (the paper's CPU-bound claim, measured).
    cpu_utilization: float = 0.0

    @property
    def peak_memory_bytes(self) -> float:
        return self.metrics.get("max:peak_memory_bytes", 0.0)

    @property
    def network_bytes(self) -> float:
        return self.metrics.get("net:bytes", 0.0)


class _Entity:
    """Base event-loop participant.

    Each entity has exactly one *canonical* pending event at any time
    (``_scheduled_for``).  Scheduling an earlier wake supersedes the
    later one — the stale heap entry is recognized and skipped on pop —
    so external wake-ups (message deliveries, ready tasks) never spawn
    parallel self-rescheduling chains.
    """

    __slots__ = ("runtime", "backoff", "_scheduled_for", "_busy_until")

    def __init__(self, runtime: "SimulatedRuntime") -> None:
        self.runtime = runtime
        self.backoff = _IDLE_BACKOFF_START
        self._scheduled_for = float("inf")
        # While an entity "occupies its core" until this time, external
        # wake-ups must not pull its next event earlier — otherwise a
        # simulated core could do more than one second of work per
        # virtual second.
        self._busy_until = 0.0

    def on_event(self, now: float) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _reschedule_busy(self, now: float, cost: float) -> None:
        self.backoff = _IDLE_BACKOFF_START
        self._busy_until = now + max(cost, _MIN_STEP)
        self.runtime.schedule(self._busy_until, self)

    def _reschedule_idle(self, now: float, hint: Optional[float] = None) -> None:
        wake = now + self.backoff
        self.backoff = min(self.backoff * 2, _IDLE_BACKOFF_CAP)
        if hint is not None:
            wake = min(wake, max(hint, now + _MIN_STEP))
        self.runtime.schedule(wake, self)


class _ComperEntity(_Entity):
    __slots__ = ("worker", "engine", "busy_virtual_s")

    def __init__(self, runtime, worker, engine) -> None:
        super().__init__(runtime)
        self.worker = worker
        self.engine = engine
        self.busy_virtual_s = 0.0

    def on_event(self, now: float) -> None:
        t0 = time.perf_counter()
        worked = self.engine.step()
        measured = time.perf_counter() - t0
        extra = self.worker.cost_meter.drain()
        if worked:
            cost = measured * self.runtime.cpu_speed + extra
            self.busy_virtual_s += max(cost, _MIN_STEP)
            self._reschedule_busy(now, cost)
        else:
            self._reschedule_idle(now)


class _CommEntity(_Entity):
    __slots__ = ("worker",)

    def __init__(self, runtime, worker) -> None:
        super().__init__(runtime)
        self.worker = worker

    def on_event(self, now: float) -> None:
        t0 = time.perf_counter()
        worked = self.worker.comm.step(now=now)
        measured = time.perf_counter() - t0
        extra = self.worker.cost_meter.drain()
        if worked:
            cost = measured * self.runtime.cpu_speed + extra
            self.backoff = _IDLE_BACKOFF_START
            self._busy_until = now + max(cost, _MIN_STEP)
            self.runtime.schedule(now + max(cost, _COMM_PERIOD), self)
            # Responses or stolen task batches may have unblocked tasks;
            # wake this worker's compers (no earlier than their own busy
            # horizons — schedule() clamps).
            for ce in self.runtime._comper_entities[self.worker.worker_id]:
                self.runtime.schedule(now + max(cost, _MIN_STEP), ce)
        else:
            hint = self.runtime.cluster.transport.next_delivery_time(
                self.worker.worker_id
            )
            self._reschedule_idle(now, hint=hint)


class _GcEntity(_Entity):
    __slots__ = ("worker",)

    def __init__(self, runtime, worker) -> None:
        super().__init__(runtime)
        self.worker = worker

    def on_event(self, now: float) -> None:
        t0 = time.perf_counter()
        worked = self.worker.gc_step()
        measured = time.perf_counter() - t0
        if worked:
            self._reschedule_busy(now, measured * self.runtime.cpu_speed)
        else:
            self.runtime.schedule(now + _GC_PERIOD, self)


class _MasterEntity(_Entity):
    __slots__ = ("period",)

    def __init__(self, runtime, period: float) -> None:
        super().__init__(runtime)
        self.period = max(period, 10 * _MIN_STEP)

    def on_event(self, now: float) -> None:
        if self.runtime.cluster.master.sync(now=now):
            self.runtime.finished_at = now
            return
        self.runtime.schedule(now + self.period, self)


class SimulatedRuntime:
    """Drives a cluster on a virtual clock."""

    def __init__(
        self,
        max_events: int = 50_000_000,
        max_virtual_time_s: float = 1e7,
    ) -> None:
        self.max_events = max_events
        self.max_virtual_time_s = max_virtual_time_s
        self.queue = EventQueue()
        self.cluster: Optional[Cluster] = None
        self.cpu_speed = 1.0
        self.finished_at: Optional[float] = None

    def schedule(self, when: float, entity: _Entity) -> None:
        """Schedule (or pull forward) an entity's canonical wake-up.

        Never earlier than the entity's busy horizon: a wake can shorten
        idle backoff, not compress modeled compute time.
        """
        when = max(when, entity._busy_until)
        if when >= entity._scheduled_for:
            return  # an earlier or equal wake is already pending
        entity._scheduled_for = when
        self.queue.push(when, entity)

    def wake(self, entity: _Entity, when: float) -> None:
        """External wake: same as schedule, kept for call-site clarity."""
        self.schedule(when, entity)

    def run(self, cluster: Cluster) -> float:
        """Run to completion; returns the virtual makespan in seconds."""
        self.cluster = cluster
        cfg = cluster.config
        self.cpu_speed = cfg.machine.cpu_speed
        disk = cfg.disk

        self._comm_entities = {}
        self._comper_entities = {}
        for w in cluster.workers:
            # Charge modeled disk time for task spills/refills/steals.
            meter = w.cost_meter
            w.l_file.on_io = lambda nbytes, meter=meter: meter.add(disk.io_time(nbytes))
            comm = _CommEntity(self, w)
            self._comm_entities[w.worker_id] = comm
            self._comper_entities[w.worker_id] = [
                _ComperEntity(self, w, engine) for engine in w.engines
            ]
            self.schedule(0.0, comm)
            self.schedule(0.0, _GcEntity(self, w))
            for ce in self._comper_entities[w.worker_id]:
                self.schedule(0.0, ce)
        cluster.transport.deliver_hook = (
            lambda dst, available_at: self.schedule(
                available_at, self._comm_entities[dst]
            )
        )
        self.schedule(0.0, _MasterEntity(self, cfg.aggregator_sync_period_s))

        while self.finished_at is None:
            if len(self.queue) == 0:
                raise GThinkerError("DES event queue drained before job completion")
            now, entity = self.queue.pop()
            if now != entity._scheduled_for:
                continue  # superseded by an earlier wake; stale entry
            entity._scheduled_for = float("inf")
            if now > self.max_virtual_time_s:
                raise GThinkerError(
                    f"simulation exceeded {self.max_virtual_time_s} virtual seconds"
                )
            if self.queue.events_processed > self.max_events:
                raise GThinkerError(f"simulation exceeded {self.max_events} events")
            entity.on_event(now)
        return self.finished_at


def run_simulated_job(
    app_factory: Callable,
    graph: GraphSource,
    config: Optional[GThinkerConfig] = None,
    runtime: Optional[SimulatedRuntime] = None,
) -> SimJobResult:
    """Run a G-thinker job on the simulated cluster.

    Same contract as :func:`repro.core.job.run_job` but time is virtual:
    ``num_workers`` machines with ``compers_per_worker`` cores each,
    connected by ``config.network`` and backed by ``config.disk``.
    """
    config = config or GThinkerConfig()
    cluster = build_cluster(app_factory, graph, config, timed_transport=True)
    sim = runtime or SimulatedRuntime()
    # Virtual durations come from measured step walls; collect garbage
    # first so a previous job's heap doesn't tax this one's measurements.
    gc.collect()
    wall0 = time.perf_counter()
    virtual = sim.run(cluster)
    wall = time.perf_counter() - wall0
    for w in cluster.workers:
        w.cleanup()
    comper_entities = [
        ce for group in sim._comper_entities.values() for ce in group
    ]
    utilization = 0.0
    if virtual > 0 and comper_entities:
        utilization = min(1.0, sum(ce.busy_virtual_s for ce in comper_entities)
                          / (virtual * len(comper_entities)))
    return SimJobResult(
        aggregate=cluster.master.global_aggregator.value,
        outputs=[rec for w in cluster.workers for rec in w.outputs()],
        metrics=cluster.metrics.snapshot(),
        virtual_time_s=virtual,
        wall_time_s=wall,
        events=sim.queue.events_processed,
        num_workers=config.num_workers,
        compers_per_worker=config.compers_per_worker,
        cpu_utilization=utilization,
    )
