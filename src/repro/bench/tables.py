"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "emit", "format_seconds", "format_bytes"]


def format_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000:.1f} ms"


def format_bytes(num_bytes: Optional[float]) -> str:
    if num_bytes is None:
        return "-"
    for unit, scale in (("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10)):
        if num_bytes >= scale:
            return f"{num_bytes / scale:.2f} {unit}"
    return f"{num_bytes:.0f} B"


def render_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def emit(text: str, out_path: Optional[str] = None) -> None:
    """Print a rendered table and optionally persist it under results/."""
    print("\n" + text)
    if out_path:
        path = Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
