"""Experiment drivers: one function per paper table/figure.

Each driver returns ``(headers, rows)`` ready for
:func:`repro.bench.tables.render_table`; the ``benchmarks/`` suite wraps
them in pytest-benchmark entries and persists the rendered tables.

Scale notes (EXPERIMENTS.md has the full mapping): the paper's graphs
are 10^6..10^9 edges on a 16-node cluster; ours are ~10^3..10^5 edges on
a simulated cluster, so *absolute* times are meaningless — every driver
is designed so the paper's qualitative claim (who wins, by what factor,
where the knee is) is the thing the rows show.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..algorithms.cliques import max_clique
from ..algorithms.matching import QueryGraph
from ..apps import (
    MaxCliqueComper,
    QuasiCliqueComper,
    SubgraphMatchComper,
    TriangleCountComper,
)
from ..baselines import (
    arabesque_max_clique,
    arabesque_triangle_count,
    feature_rows,
    DESIRABILITIES,
    giraph_max_clique,
    giraph_triangle_count,
    gminer_max_clique,
    gminer_subgraph_match,
    gminer_triangle_count,
    nuri_max_clique,
    rstream_triangle_count,
)
from ..core.config import GThinkerConfig, MachineModel, NetworkModel
from ..graph.datasets import DATASETS, PAPER_TABLE2, dataset_stats, make_dataset
from ..graph.generators import erdos_renyi, with_random_labels
from ..sim import run_simulated_job
from .tables import format_bytes, format_seconds

__all__ = [
    "BENCH_SCALE",
    "bench_config",
    "gm_query",
    "run_gthinker",
    "table1_features",
    "table2_datasets",
    "table3_distributed",
    "table4a_horizontal",
    "table4b_vertical",
    "table4c_single_machine",
    "table5a_cache_capacity",
    "table5b_alpha",
    "fig2_crossover",
    "single_machine_comparison",
]

#: Default down-scale factor for benchmark datasets (Tables II/III/V).
BENCH_SCALE = 0.5

#: Larger scale for the Table IV scalability sweeps: the workload must
#: be big enough that 256 simulated cores still have work to divide.
SCALING_SCALE = 3.0

#: Virtual-seconds charged per measured second of Python compute.  The
#: calibration argument (EXPERIMENTS.md): our graphs are ~10^4x smaller
#: than the paper's while network/disk models keep real-world speeds, so
#: compute would be under-weighted relative to IO; x10 restores a
#: compute-dominant ratio comparable to the paper's NP-hard workloads.
CPU_SPEED = 10.0

#: Memory budget for the *modeled* 64 GB machines, rescaled the same way
#: the graphs are: big enough for G-thinker/G-Miner, small enough that
#: materialize-everything engines blow through it on the big datasets.
MEMORY_BUDGET_BYTES = 24 << 20
DISK_BUDGET_BYTES = 512 << 20


def bench_config(machines: int = 4, compers: int = 4, **overrides) -> GThinkerConfig:
    defaults = dict(
        num_workers=machines,
        compers_per_worker=compers,
        task_batch_size=8,
        cache_capacity=2000,
        decompose_threshold=150,
        aggregator_sync_period_s=0.005,
        machine=MachineModel(cpu_speed=CPU_SPEED),
    )
    defaults.update(overrides)
    return GThinkerConfig(**defaults)


def gm_query() -> QueryGraph:
    """The GM workload pattern: a labeled tailed triangle."""
    return QueryGraph(
        [(0, 1), (1, 2), (0, 2), (2, 3)], labels={0: 0, 1: 1, 2: 2, 3: 0}
    )


def run_gthinker(app_factory, graph, machines: int, compers: int, **overrides):
    return run_simulated_job(app_factory, graph, bench_config(machines, compers, **overrides))


# ---------------------------------------------------------------------------
# Table I — feature matrix
# ---------------------------------------------------------------------------


def table1_features() -> Tuple[List[str], List[List[str]]]:
    headers = ["system"] + [d for d, _ in DESIRABILITIES]
    rows = [[system] + marks for system, marks in feature_rows()]
    return headers, rows


# ---------------------------------------------------------------------------
# Table II — dataset statistics
# ---------------------------------------------------------------------------


def table2_datasets(scale: float = BENCH_SCALE) -> Tuple[List[str], List[List[str]]]:
    headers = ["dataset", "|V| (ours)", "|E| (ours)", "avg deg", "max deg",
               "|V| (paper)", "|E| (paper)"]
    rows = []
    for name in DATASETS:
        stats = dataset_stats(make_dataset(name, scale=scale))
        paper = PAPER_TABLE2[name]
        rows.append([
            name,
            stats["num_vertices"],
            stats["num_edges"],
            stats["avg_degree"],
            stats["max_degree"],
            f"{paper['num_vertices']:,}",
            f"{paper['num_edges']:,}",
        ])
    return headers, rows


# ---------------------------------------------------------------------------
# Table III — time + memory across systems, apps, datasets
# ---------------------------------------------------------------------------


def _fmt_result(t: Optional[float], mem: Optional[float], failed: Optional[str]) -> str:
    if failed:
        return failed
    return f"{format_seconds(t)} / {format_bytes(mem)}"


def table3_distributed(
    scale: float = 0.75,
    machines: int = 4,
    compers: int = 4,
    datasets: Sequence[str] = ("youtube", "skitter", "orkut", "btc", "friendster"),
) -> Tuple[List[str], List[List[str]]]:
    headers = ["app", "dataset", "G-thinker", "Giraph", "Arabesque", "G-Miner"]
    rows: List[List[str]] = []
    budget = dict(
        memory_budget_bytes=MEMORY_BUDGET_BYTES,
        machine=MachineModel(cpu_speed=CPU_SPEED),
    )
    query = gm_query()
    for name in datasets:
        g = make_dataset(name, scale=scale)
        lg = make_dataset(name, scale=scale, labeled=3)

        # -- MCF
        r = _best_of(2, MaxCliqueComper, g, machines, compers)
        gi = giraph_max_clique(g, machines=machines, threads=compers, **budget)
        ar = arabesque_max_clique(g, machines=machines, threads=compers,
                                  embedding_cap=300_000, **budget)
        gm = gminer_max_clique(g, machines=machines, threads=compers, **budget)
        rows.append([
            "MCF", name,
            _fmt_result(r.virtual_time_s, r.peak_memory_bytes, None),
            _fmt_result(gi.virtual_time_s, gi.peak_memory_bytes, gi.failed),
            _fmt_result(ar.virtual_time_s, ar.peak_memory_bytes, ar.failed),
            _fmt_result(gm.virtual_time_s, gm.peak_memory_bytes, gm.failed),
        ])

        # -- TC
        r = _best_of(2, TriangleCountComper, g, machines, compers)
        gi = giraph_triangle_count(g, machines=machines, threads=compers, **budget)
        ar = arabesque_triangle_count(g, machines=machines, threads=compers,
                                      embedding_cap=300_000, **budget)
        gm = gminer_triangle_count(g, machines=machines, threads=compers, **budget)
        rows.append([
            "TC", name,
            _fmt_result(r.virtual_time_s, r.peak_memory_bytes, None),
            _fmt_result(gi.virtual_time_s, gi.peak_memory_bytes, gi.failed),
            _fmt_result(ar.virtual_time_s, ar.peak_memory_bytes, ar.failed),
            _fmt_result(gm.virtual_time_s, gm.peak_memory_bytes, gm.failed),
        ])

        # -- GM (paper compares G-thinker and G-Miner on this one)
        labels = lg.labels()
        r = run_gthinker(
            lambda: SubgraphMatchComper(query, data_labels=labels),
            lg, machines, compers,
        )
        gm = gminer_subgraph_match(lg, query, machines=machines, threads=compers, **budget)
        rows.append([
            "GM", name,
            _fmt_result(r.virtual_time_s, r.peak_memory_bytes, None),
            "n/a", "n/a",
            _fmt_result(gm.virtual_time_s, gm.peak_memory_bytes, gm.failed),
        ])
    return headers, rows


# ---------------------------------------------------------------------------
# Table IV — scalability (MCF on the friendster stand-in)
# ---------------------------------------------------------------------------


def _friendster(scale: float):
    return make_dataset("friendster", scale=scale)


_SPEED = dict(machine=MachineModel(cpu_speed=CPU_SPEED))


def _best_of(n_runs, app_factory, graph, machines, compers, **overrides):
    """Take the fastest of ``n_runs`` simulated runs: virtual durations
    inherit measured-wall-time noise, and best-of is the usual smoother."""
    best = None
    for _ in range(n_runs):
        r = run_gthinker(app_factory, graph, machines, compers, **overrides)
        if best is None or r.virtual_time_s < best.virtual_time_s:
            best = r
    return best


def table4a_horizontal(scale: float = SCALING_SCALE) -> Tuple[List[str], List[List[str]]]:
    """Vary machines with 16 compers each (paper Table IV(a))."""
    g = _friendster(scale)
    headers = ["# machines", "G-Miner", "G-thinker"]
    rows = []
    for machines in (1, 2, 4, 8, 16):
        r = _best_of(2, MaxCliqueComper, g, machines, 16)
        if machines <= 2:
            # The paper could not partition Friendster on <= 2 machines
            # (G-Miner's MPI partitioner overflows a 32-bit int).
            gm_cell = "Partitioning Error"
        else:
            gm = gminer_max_clique(g, machines=machines, threads=16, **_SPEED)
            gm_cell = _fmt_result(gm.virtual_time_s, gm.peak_memory_bytes, gm.failed)
        rows.append([
            machines, gm_cell,
            _fmt_result(r.virtual_time_s, r.peak_memory_bytes, None),
        ])
    return headers, rows


def table4b_vertical(scale: float = SCALING_SCALE) -> Tuple[List[str], List[List[str]]]:
    """16 machines, vary compers per machine (paper Table IV(b))."""
    g = _friendster(scale)
    headers = ["# compers", "G-Miner", "G-thinker"]
    rows = []
    for compers in (1, 2, 4, 8, 16):
        r = _best_of(2, MaxCliqueComper, g, 16, compers)
        gm = gminer_max_clique(g, machines=16, threads=compers, **_SPEED)
        rows.append([
            compers,
            _fmt_result(gm.virtual_time_s, gm.peak_memory_bytes, gm.failed),
            _fmt_result(r.virtual_time_s, r.peak_memory_bytes, None),
        ])
    return headers, rows


def table4c_single_machine(scale: float = SCALING_SCALE) -> Tuple[List[str], List[List[str]]]:
    """One machine, vary compers: near-linear speedup (paper Table IV(c))."""
    g = _friendster(scale)
    headers = ["# compers", "G-thinker", "speedup vs 1"]
    rows = []
    base = None
    for compers in (1, 2, 4, 8, 16):
        r = _best_of(2, MaxCliqueComper, g, 1, compers)
        if base is None:
            base = r.virtual_time_s
        rows.append([
            compers,
            _fmt_result(r.virtual_time_s, r.peak_memory_bytes, None),
            f"{base / r.virtual_time_s:.2f}x",
        ])
    return headers, rows


# ---------------------------------------------------------------------------
# Table V — parameter sensitivity (c_cache and alpha)
# ---------------------------------------------------------------------------


def _cache_workload(scale: float):
    """A pull-heavy workload: TC on the skitter stand-in, 4 machines."""
    return make_dataset("skitter", scale=scale)


def table5a_cache_capacity(scale: float = BENCH_SCALE) -> Tuple[List[str], List[List[str]]]:
    g = _cache_workload(scale)
    base_capacity = 2000  # stands in for the paper's 2M on full-size graphs
    headers = ["c_cache", "time", "memory", "evictions", "pop-blocked rounds"]
    rows = []
    for factor, label in ((10, "10x"), (1, "1x (default)"), (0.1, "0.1x"), (0.01, "0.01x")):
        capacity = max(8, int(base_capacity * factor))
        r = run_gthinker(
            TriangleCountComper, g, 4, 4, cache_capacity=capacity
        )
        rows.append([
            f"{capacity} ({label})",
            format_seconds(r.virtual_time_s),
            format_bytes(r.peak_memory_bytes),
            int(r.cache_stats.evictions),
            int(r.metrics.get("comper:pop_blocked_cache", 0)),
        ])
    return headers, rows


def table5b_alpha(scale: float = BENCH_SCALE) -> Tuple[List[str], List[List[str]]]:
    g = _cache_workload(scale)
    headers = ["alpha", "time", "memory", "evictions", "pop-blocked rounds"]
    rows = []
    for alpha in (0.002, 0.02, 0.2, 2.0):
        r = run_gthinker(
            TriangleCountComper, g, 4, 4,
            cache_capacity=60, cache_overflow_alpha=alpha,
        )
        rows.append([
            alpha,
            format_seconds(r.virtual_time_s),
            format_bytes(r.peak_memory_bytes),
            int(r.cache_stats.evictions),
            int(r.metrics.get("comper:pop_blocked_cache", 0)),
        ])
    return headers, rows


# ---------------------------------------------------------------------------
# Fig. 2 — the IO-vs-CPU crossover that justifies the whole design
# ---------------------------------------------------------------------------


def fig2_crossover(
    sizes: Sequence[int] = (4, 8, 16, 32, 64, 96, 128),
    density: float = 0.4,
    network: Optional[NetworkModel] = None,
) -> Tuple[List[str], List[List[str]]]:
    """Measure the Fig. 2 claim: constructing ``g`` costs O(|g|) IO while
    mining ``g`` costs superlinear CPU, so past a modest |g| the CPU side
    dominates and IO can hide under computation."""
    network = network or NetworkModel()
    headers = ["|g| (vertices)", "IO cost (transfer g)", "CPU cost (mine g)", "CPU/IO"]
    rows = []
    for n in sizes:
        g = erdos_renyi(n, density, seed=n)
        io_bytes = g.memory_estimate_bytes()
        io_s = network.transfer_time(io_bytes)
        t0 = time.perf_counter()
        max_clique(g.adjacency())
        cpu_s = time.perf_counter() - t0
        rows.append([
            n, format_seconds(io_s), format_seconds(cpu_s), f"{cpu_s / io_s:.2f}",
        ])
    return headers, rows


# ---------------------------------------------------------------------------
# §VI text — single-machine systems (RStream, Nuri) vs 1-machine G-thinker
# ---------------------------------------------------------------------------


def single_machine_comparison(scale: float = BENCH_SCALE) -> Tuple[List[str], List[List[str]]]:
    headers = ["experiment", "dataset", "RStream", "Nuri", "G-thinker (1 machine)"]
    rows = []
    for name in ("youtube", "skitter", "orkut"):
        g = make_dataset(name, scale=scale)
        rs = rstream_triangle_count(g, disk_budget_bytes=DISK_BUDGET_BYTES, **_SPEED)
        gt = run_gthinker(TriangleCountComper, g, 1, 8)
        rows.append([
            "TC", name,
            _fmt_result(rs.virtual_time_s, rs.peak_memory_bytes, rs.failed),
            "n/a",
            _fmt_result(gt.virtual_time_s, gt.peak_memory_bytes, None),
        ])
    g = make_dataset("youtube", scale=scale)
    nu = nuri_max_clique(g, **_SPEED)
    gt = run_gthinker(MaxCliqueComper, g, 1, 8)
    rows.append([
        "MCF", "youtube",
        "n/a",
        _fmt_result(nu.virtual_time_s, nu.peak_memory_bytes, nu.failed),
        _fmt_result(gt.virtual_time_s, gt.peak_memory_bytes, None),
    ])
    # The big-graph failure mode: RStream runs out of scratch space.
    for name in ("btc", "friendster"):
        g = make_dataset(name, scale=scale)
        rs = rstream_triangle_count(g, disk_budget_bytes=4 << 20, **_SPEED)
        gt = run_gthinker(TriangleCountComper, g, 1, 8)
        rows.append([
            "TC", name,
            _fmt_result(rs.virtual_time_s, rs.peak_memory_bytes, rs.failed),
            "n/a",
            _fmt_result(gt.virtual_time_s, gt.peak_memory_bytes, None),
        ])
    return headers, rows
