"""Benchmark harness: experiment drivers + table rendering."""

from .drivers import (
    BENCH_SCALE,
    bench_config,
    fig2_crossover,
    gm_query,
    run_gthinker,
    single_machine_comparison,
    table1_features,
    table2_datasets,
    table3_distributed,
    table4a_horizontal,
    table4b_vertical,
    table4c_single_machine,
    table5a_cache_capacity,
    table5b_alpha,
)
from .tables import emit, format_bytes, format_seconds, render_table

__all__ = [
    "BENCH_SCALE",
    "bench_config",
    "fig2_crossover",
    "gm_query",
    "run_gthinker",
    "single_machine_comparison",
    "table1_features",
    "table2_datasets",
    "table3_distributed",
    "table4a_horizontal",
    "table4b_vertical",
    "table4c_single_machine",
    "table5a_cache_capacity",
    "table5b_alpha",
    "emit",
    "format_bytes",
    "format_seconds",
    "render_table",
]
