"""The master: progress sync, aggregator sync, stealing plans, termination.

The paper's main threads "periodically synchronize job status to monitor
progress, and to decide task stealing plans among workers", gathered at
a master worker.  We centralize that logic here; the runtimes call
:meth:`Master.sync` periodically.

Termination uses a double snapshot: the job is done when two consecutive
syncs observe (a) zero tasks in memory, on disk and unspawned, (b) zero
in-flight messages and queued requests, and (c) an unchanged global
progress counter between the two observations — the counter rules out a
task being mid-flight between containers during the first snapshot.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..net.message import TaskBatchTransfer
from .aggregator import GlobalAggregator
from .worker import Worker

__all__ = ["Master"]


class Master:
    def __init__(self, workers: List[Worker], transport, config, metrics) -> None:
        self.workers = workers
        self.transport = transport
        self.config = config
        self.metrics = metrics
        self.global_aggregator = GlobalAggregator(
            workers[0].aggregator._agg if workers else None
        )
        self.done = False
        self._prev_idle = False
        self._prev_progress = -1
        self._sync_count = 0
        self.checkpoint_hook = None  # set by the job when checkpointing is on
        #: Cooperative-cancellation token (``AbortToken`` or None), set
        #: by the executor before driving.  Checked at the top of every
        #: sync — the barrier every in-process runtime already hits — so
        #: a cancel lands within one sync round on serial, threaded,
        #: checked and simulated runtimes alike.
        self.abort = None

    # -- one synchronization round ----------------------------------------

    def sync(self, now: float = 0.0) -> bool:
        """Aggregate, plan steals, refresh gauges, detect termination.

        Returns True when the job has completed.  Raises
        :class:`~repro.core.errors.JobCancelledError` when the job's
        abort token was set since the last sync.
        """
        if self.done:
            return True
        if self.abort is not None:
            self.abort.raise_if_set()
        self._sync_count += 1
        self.global_aggregator.sync([w.aggregator for w in self.workers])
        for w in self.workers:
            # Commit this thread's pending ±δ so an idle cluster's
            # s_cache converges to the exact size, and publish the
            # bucket-lock acquisition totals gathered since last sync.
            w.cache.flush_local_counter()
            w.cache.commit_lock_metrics()
            w.update_memory_gauge()
        if self.config.steal_enabled and len(self.workers) > 1:
            self._plan_and_execute_steals(now)
        if (
            self.checkpoint_hook is not None
            and self.config.checkpoint_every_syncs > 0
            and self._sync_count % self.config.checkpoint_every_syncs == 0
        ):
            self.checkpoint_hook()
        if self._check_termination():
            # Final aggregator synchronization before the job terminates
            # ("another synchronization is performed to make sure data
            # from all tasks are aggregated").
            self.global_aggregator.sync([w.aggregator for w in self.workers])
            self.done = True
        return self.done

    # -- work stealing --------------------------------------------------------

    def _plan_and_execute_steals(self, now: float) -> None:
        """Workload-proportional stealing with ping-pong hysteresis.

        The transfer amount is about a quarter of the victim/thief gap
        (moving ``m`` tasks shrinks the gap by ``2m``, so ``gap // 4``
        halves it without overshooting), at least one batch, capped at
        ``steal_batches`` batches.  A pair that moved work one way in
        the previous sync is not reversed in this one, so near-balanced
        workers stop trading the same batch back and forth.
        """
        estimates = [(w.remaining_workload_estimate(), w.worker_id) for w in self.workers]
        batch = self.config.task_batch_size
        cap = self.config.steal_batches * batch
        prev_pairs = getattr(self, "_last_steal_pairs", frozenset())
        pairs = set()
        for _ in range(self.config.steal_batches):
            estimates.sort()
            low_est, low_id = estimates[0]
            high_est, high_id = estimates[-1]
            gap = high_est - low_est
            if gap <= 2 * batch:
                break
            if (low_id, high_id) in prev_pairs:
                # Hysteresis: last sync moved work low_id -> high_id;
                # shipping it straight back would ping-pong.
                break
            amount = max(batch, min(gap // 4, cap))
            victim = self.workers[high_id]
            moved = self._steal_one_batch(victim, low_id, now, amount)
            if moved == 0:
                break
            pairs.add((high_id, low_id))
            estimates[0] = (low_est + moved, low_id)
            estimates[-1] = (high_est - moved, high_id)
            self.metrics.add("steal:batches")
            self.metrics.add("steal:tasks", moved)
        self._last_steal_pairs = frozenset(pairs)

    def _steal_one_batch(
        self, victim: Worker, thief_id: int, now: float,
        max_tasks: Optional[int] = None,
    ) -> int:
        """Move one task batch from victim to thief over the transport."""
        payload_info = victim.l_file.take_payload()
        if payload_info is None:
            payload_info = victim.spawn_batch_payload(
                max_tasks if max_tasks is not None else self.config.task_batch_size
            )
        if payload_info is None:
            return 0
        payload, count = payload_info
        self.transport.send(
            TaskBatchTransfer(
                src=victim.worker_id, dst=thief_id, payload=payload, num_tasks=count
            ),
            now=now,
        )
        return count

    # -- termination detection ------------------------------------------------------

    def _snapshot(self) -> Tuple[bool, int]:
        tasks = sum(w.tasks_in_memory() for w in self.workers)
        on_disk = sum(len(w.l_file) for w in self.workers)
        unspawned = sum(w.unspawned_count() for w in self.workers)
        outgoing = sum(w.comm.pending_outgoing() for w in self.workers)
        in_flight = self.transport.in_flight
        idle = tasks == 0 and on_disk == 0 and unspawned == 0 and outgoing == 0 and in_flight == 0
        progress = sum(w.progress.value for w in self.workers)
        return idle, progress

    def _check_termination(self) -> bool:
        idle, progress = self._snapshot()
        result = idle and self._prev_idle and progress == self._prev_progress
        self._prev_idle = idle
        self._prev_progress = progress
        return result
