"""The comper engine: pop/push rounds over the task containers (paper §V-B).

Every round a comper:

* **push()** — takes a ready task from ``B_task`` (all requested
  vertices cached and locked), resolves its frontier, and computes; and
* **pop()** — *if memory permits* (cache not overflowed, pending tasks
  under the ``D`` threshold), refills ``Q_task`` when ``|Q| <= C``
  (spilled files first, then fresh spawns) and starts the next task:
  its pulls are resolved against the local table and the vertex cache,
  and the task either computes inline (everything available locally) or
  parks in ``T_task`` until its responses arrive.

Deviation from the paper noted in DESIGN.md: our push() computes a ready
task until it either finishes or needs to wait again, instead of exactly
one iteration followed by a re-queue through ``Q_task``; tasks are
independent so only intra-comper interleaving differs.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from .api import Comper, Task, VertexView
from .containers import (
    PendingTable,
    ReadyBuffer,
    TaskQueue,
    comper_of_task_id,
    make_task_id,
)
from .errors import TaskError
from .vertex_cache import RequestOutcome

__all__ = ["ComperEngine"]


class ComperEngine:
    """One mining thread's state and logic; owned by a worker."""

    def __init__(self, global_id: int, worker, app: Comper) -> None:
        self.global_id = global_id
        self.worker = worker
        self.app = app
        app.bind_engine(self)

        cfg = worker.config
        # The checker is None unless protocol checking is enabled, so
        # every hook below costs one attribute load + None test.
        self.checker = worker.checker
        if self.checker is not None:
            from ..check import CheckedTaskQueue

            self.q_task = CheckedTaskQueue(
                cfg.task_batch_size, name=f"Q_task[comper {global_id}]"
            )
        else:
            self.q_task = TaskQueue(cfg.task_batch_size)
        self.b_task = ReadyBuffer()
        self.t_task = PendingTable()
        self.inline_limit = (
            cfg.inline_iteration_limit
            if cfg.inline_iteration_limit is not None
            else self.INLINE_ITERATION_LIMIT
        )
        self._seq = 0
        self._active = 0  # tasks taken out of containers, mid-processing
        self._last_compute_cost = 0.0
        # Set once the worker's spawn cursor exhausted and this comper's
        # app got its spawn_flush() call (bundling apps hold buffers).
        self.spawn_flushed = False

    # -- services exposed to the app (via Comper base class) ---------------

    @property
    def config(self):
        return self.worker.config

    def add_task(self, task: Task) -> None:
        if self.checker is not None:
            self.checker.on_queued(task, self.global_id)
        spill = self.q_task.append(task)
        if spill is not None:
            if self.checker is not None:
                self.checker.on_spilled(spill, self.global_id)
            self.worker.l_file.spill(spill)
        self.worker.metrics.add("tasks:created")

    def aggregate(self, value) -> None:
        self.worker.aggregator.aggregate(value)

    def aggregator_view(self):
        return self.worker.aggregator.view()

    def output(self, record) -> None:
        self.worker.add_output(record)

    # -- status (termination detection & gating) ---------------------------

    def tasks_in_memory(self) -> int:
        return len(self.q_task) + len(self.b_task) + len(self.t_task) + self._active

    def pending_load(self) -> int:
        """|T_task| + |B_task|, gated against the paper's D threshold."""
        return len(self.t_task) + len(self.b_task)

    @property
    def last_compute_cost(self) -> float:
        """Measured seconds of UDF compute in the most recent step (DES hook)."""
        return self._last_compute_cost

    # -- the comper round ----------------------------------------------------

    def step(self) -> bool:
        """One round: push(), then (memory permitting) pop().

        Returns True if any task progress was made.
        """
        self._last_compute_cost = 0.0
        worked = self._push()
        if self._may_pop():
            worked = self._pop() or worked
        return worked

    def _may_pop(self) -> bool:
        if self.worker.cache.overflowed():
            self.worker.metrics.add("comper:pop_blocked_cache")
            return False
        if self.pending_load() > self.config.effective_pending_threshold:
            self.worker.metrics.add("comper:pop_blocked_pending")
            return False
        return True

    # -- push: consume ready tasks -----------------------------------------

    def _push(self) -> bool:
        task = self.b_task.get()
        if task is None:
            return False
        if self.checker is not None:
            self.checker.on_resumed(task, self.global_id)
        self._active += 1
        try:
            frontier = self._resolve_ready_frontier(task)
            self._process(task, frontier)
        finally:
            self._active -= 1
        return True

    def _resolve_ready_frontier(self, task: Task) -> List[VertexView]:
        frontier: List[VertexView] = []
        for v in task.pulls_in_flight:
            view = self.worker.local_view(v)
            if view is None:
                entry = self.worker.cache.get_locked(v, task.task_id)
                view = VertexView(entry.vid, entry.label, entry.adj)
            frontier.append(view)
        return frontier

    # -- pop: start new tasks --------------------------------------------------

    def _pop(self) -> bool:
        refilled = False
        if self.q_task.needs_refill():
            refilled = self._refill()
        task = self.q_task.pop()
        if task is None:
            # Advancing the spawn cursor is progress even when every
            # candidate vertex was pruned by task_spawn — without this,
            # prune-heavy phases would look idle to the scheduler.
            return refilled
        if self.checker is not None:
            self.checker.on_started(task, self.global_id)
        self._active += 1
        try:
            self._start(task)
        finally:
            self._active -= 1
        return True

    def _refill(self) -> bool:
        """Prioritized refill: spilled/stolen files first, then spawns.

        Returns True if any refill source yielded work (tasks loaded or
        spawn cursor advanced).
        """
        tasks = self.worker.l_file.take_file()
        if tasks is not None:
            if self.checker is not None:
                self.checker.on_adopted(tasks, self.global_id)
            self.q_task.prepend(tasks)
            return True
        room = self.q_task.refill_room()
        if room > 0:
            return self.worker.spawn_into(self, room) > 0
        return False

    def _start(self, task: Task) -> None:
        """Resolve a task fresh from ``Q_task`` (no locks held yet)."""
        pulls = task.take_pulls()
        task.pulls_in_flight = pulls
        if self._park_or_hit(task, pulls):
            return  # parked (or routed to B_task); push() continues it
        frontier = [self._must_local_view(v) for v in pulls]
        self._process(task, frontier)

    def _must_local_view(self, v: int) -> VertexView:
        view = self.worker.local_view(v)
        if view is None:  # pragma: no cover - guarded by caller
            raise TaskError(-1, f"vertex {v} expected local")
        return view

    def _park_or_hit(self, task: Task, pulls: Sequence[int]) -> bool:
        """Request remote pulls; park the task if any are remote.

        Park-first protocol: the task enters ``T_task`` *before* the
        cache requests are issued, so a response racing in from another
        thread always finds the pending entry.  Cache hits are
        self-notified; when the last notification lands (ours or the
        receiver's) the task moves to ``B_task``.

        Returns True if the task was parked (caller must not continue).
        """
        remote = [v for v in pulls if not self.worker.owns_vertex(v)]
        if not remote:
            return False
        if task.task_id == -1:
            task.task_id = make_task_id(self.global_id, self._seq)
            self._seq += 1
        if self.checker is not None:
            self.checker.on_parked(task, self.global_id)
        self.t_task.insert(task.task_id, task, req=len(remote))
        cache = self.worker.cache
        if self.config.bulk_cache_ops:
            # Bulk OP1: one bucket-lock acquisition per touched bucket,
            # one comm-lock acquisition for all MISS_SENDs.
            batch = cache.request_batch(remote, task.task_id)
            for _ in range(batch.hits):
                self._notify_self(task.task_id)
            if batch.to_send:
                self.worker.comm.queue_requests(batch.to_send)
            # duplicates: the in-flight responses will notify us.
        else:
            for v in remote:
                outcome = cache.request(v, task.task_id)
                if outcome.status == RequestOutcome.HIT:
                    self._notify_self(task.task_id)
                elif outcome.status == RequestOutcome.MISS_SEND:
                    self.worker.comm.queue_request(v)
                # MISS_DUPLICATE: the in-flight response will notify us.
        return True

    def _notify_self(self, task_id: int) -> None:
        """Self-notification for a cache HIT during park (one per hit)."""
        ready = self.t_task.notify_arrival(task_id)
        if ready is not None:
            if self.checker is not None:
                self.checker.on_ready(ready)
            self.b_task.put(ready)

    # -- the compute loop -----------------------------------------------------

    #: A task whose pulls keep resolving locally computes inline, but
    #: yields the comper after this many consecutive iterations (it goes
    #: back to Q_task) so one task cannot monopolize its thread and the
    #: runtime's round accounting (livelock guards, sync cadence) stays
    #: live.  ``GThinkerConfig.inline_iteration_limit`` overrides this
    #: default (tests and the interleaving fuzzer lower it).
    INLINE_ITERATION_LIMIT = 64

    def _process(self, task: Task, frontier: List[VertexView]) -> None:
        """Run compute() iterations until the task finishes or must wait."""
        cache = self.worker.cache
        iterations = 0
        while True:
            iterations += 1
            t0 = time.perf_counter()
            try:
                more = self.app.compute(task, frontier)
            except Exception as exc:
                raise TaskError(task.task_id, repr(exc)) from exc
            finally:
                self._last_compute_cost += time.perf_counter() - t0
            self.worker.metrics.add("tasks:iterations")
            # Release every remote vertex of the iteration just finished
            # ("a task always releases all its previously requested
            # non-local vertices from T_cache after each iteration").
            remote = [
                v for v in task.pulls_in_flight
                if not self.worker.owns_vertex(v)
            ]
            if remote:
                if self.config.bulk_cache_ops:
                    cache.release_batch(remote, task.task_id)
                else:
                    for v in remote:
                        cache.release(v, task.task_id)
            pulls = task.take_pulls()
            task.pulls_in_flight = pulls
            if not more:
                if self.checker is not None:
                    self.checker.on_finished(task, self.global_id)
                self.worker.metrics.add("tasks:finished")
                return
            if iterations >= self.inline_limit:
                # Yield: return the task (with its pulls restored) to the
                # queue; a later pop re-resolves them.
                task.pulls_in_flight = []
                for v in pulls:
                    task.pull(v)
                # Invalidate the task id: it encodes the comper that
                # minted it at park time, but a re-queued task may be
                # spilled and refilled by a different comper, or stolen
                # by another worker, and the arrival receiver routes
                # responses by this id.  The next park mints a fresh
                # local id on whichever comper then owns the task.
                task.task_id = -1
                if self.checker is not None:
                    self.checker.on_yielded(task, self.global_id)
                self.add_task(task)
                self.worker.metrics.add("comper:inline_yields")
                return
            if self._park_or_hit(task, pulls):
                return
            frontier = [self._must_local_view(v) for v in pulls]

    # -- receiver-side hooks ------------------------------------------------------

    def on_vertex_arrival(self, task_id: int) -> None:
        """Called by the comm service when a response for a waited vertex lands."""
        ready = self.t_task.notify_arrival(task_id)
        if ready is not None:
            if self.checker is not None:
                self.checker.on_ready(ready)
            self.b_task.put(ready)
