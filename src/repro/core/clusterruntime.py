"""The ``runtime="cluster"`` backend: many machines over TCP.

The process runtime proves the CPU-bound story on one machine; this
backend runs the same control-plane protocol
(:class:`~repro.core.controlplane.ControlPlaneMaster` /
:class:`~repro.core.controlplane.NodeSession`) across machine
boundaries:

* the **data plane** is :class:`~repro.net.tcp.TcpTransport` — one
  persistent socket per peer pair, batched per destination, each batch
  one length-prefixed frame whose payload is byte-for-byte the GTWIRE1
  encoding the process runtime puts on its queues;
* the **control plane** is one :class:`~repro.net.tcp.ControlChannel`
  per node to the master — the same command tuples the process runtime
  sends down its pipes, pickled and framed;
* the **graph** is shipped, not shared: the master partitions the rows
  by the owner hash and sends each node exactly its partition during
  the boot handshake.  No fork inheritance, no shared memory — a node
  needs nothing but the ``repro`` package and a TCP route to the
  master, which is what makes the multi-host claim honest.

Boot handshake (per node)::

    node → master   ("hello", requested_node_id)      # -1 = assign one
    master → node   ("init", node_id, config, app_factory, rows,
                     spill_root, snapshot, global_value, incarnation)
    node → master   ("ready", node_id, "host:port")   # data listener
    master → node   ("peers", ["host:port", ...])
    node → master   ("up", node_id)

Two deployment modes, selected by ``GThinkerConfig.cluster_hosts``:

* **localhost spawn mode** (``cluster_hosts=None``, the default): the
  driver spawns every node as a local process connecting back over
  loopback.  One command runs a whole cluster — this is what tests, CI
  and the benchmark use — and node loss is fully recoverable: the
  master tears the node set down and reboots it from the last
  sync-barrier checkpoint, exactly the process runtime's global
  rollback.  Fresh ephemeral data ports every incarnation mean a stale
  in-flight batch from the rolled-back epoch has no socket to arrive
  on.
* **attach mode** (``cluster_hosts`` given, one ``"host:port"`` per
  node): nodes are started externally (``repro node --master ...``) on
  the listed hosts and attach to the master's control listener.  The
  protocol is identical, but the master cannot respawn a foreign
  process: a lost node raises after writing the usual checkpoint
  shards, and the operator restarts the nodes and resumes from the
  shard (``resume_job`` / ``--resume-from``).

Failure classification extends the process runtime's rule to the
network: a node that *reports* :class:`~repro.core.errors.WireDecodeError`
or :class:`~repro.net.tcp.PeerLostError` hit corrupted bytes or a dead
peer — environment damage a rollback can clear — so its report carries
``recoverable=True``; any other reported exception is an app/framework
bug that would recur and fails the job immediately.  A node that says
nothing and vanishes (killed, OOM, power) is a machine loss,
recoverable as always.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import selectors
import shutil
import socket
import tempfile
import time
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..graph.graph import Graph
from ..graph.io import ShardedGraphStore
from ..net.tcp import (
    ChannelClosed,
    ControlChannel,
    PeerLostError,
    TcpTransport,
    connect_with_retry,
    listen_socket,
)
from .aggregator import GlobalAggregator
from .checkpoint import JobCheckpoint, restore_worker
from .config import GThinkerConfig, parse_host_port
from .controlplane import ControlPlaneMaster, FailureInjector, NodeSession
from .errors import (
    CheckpointError,
    GThinkerError,
    WireDecodeError,
    WorkerProcessError,
)
from .metrics import MetricsRegistry
from .runtime import JobRequest
from .worker import Worker

__all__ = ["ClusterExecutor", "serve_node"]


def _default_start_method() -> str:
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


# ---------------------------------------------------------------------------
# Node side
# ---------------------------------------------------------------------------


def _node_serve(
    node_id: int,
    config: GThinkerConfig,
    app_factory,
    rows,
    channel: ControlChannel,
    bind_host: str,
    spill_root: Optional[str],
    snapshot,
    global_value,
    incarnation: int,
) -> None:
    """Finish the handshake, then serve control commands until ``stop``.

    Mirrors ``procruntime._worker_main`` with TCP in place of queues and
    pipes; errors travel up the control channel as
    ``("error", node_id, type, traceback, recoverable)`` where
    ``recoverable`` marks wire corruption / peer loss (rollback-safe)
    as opposed to app bugs (final).
    """
    owns_spill = spill_root is None
    if owns_spill:
        spill_root = tempfile.mkdtemp(prefix=f"gthinker-spill-node{node_id}-")
    worker = None
    transport = None
    try:
        metrics = MetricsRegistry()
        from .job import activate_kernel_backend

        activate_kernel_backend(config, metrics)
        transport = TcpTransport(
            node_id,
            config.num_workers,
            bind_host=bind_host,
            metrics=metrics,
            max_batch_messages=config.ipc_batch_max_messages,
            wire_format=config.ipc_wire_format,
            connect_timeout_s=config.cluster_connect_timeout_s,
        )
        channel.send_obj(("ready", node_id, f"{bind_host}:{transport.data_port}"))
        tag, peers = channel.recv_obj(timeout=config.control_reply_timeout_s)
        if tag != "peers":
            raise GThinkerError(f"expected the peer table, got {tag!r}")
        transport.set_peers(peers)
        channel.send_obj(("up", node_id))

        worker = Worker(
            worker_id=node_id,
            num_workers=config.num_workers,
            config=config,
            app_factory=app_factory,
            transport=transport,
            metrics=metrics,
            spill_dir=Path(spill_root),
        )
        worker.load_rows(rows)
        if snapshot is not None:
            restore_worker(worker, snapshot)
            # Counters resume from the barrier's balanced values; the
            # fresh sockets are empty, so sent==received still means
            # "wire empty" to the termination detector.
            transport.sent_count = snapshot.sent
            transport.received_count = snapshot.received
        if global_value is not None:
            worker.aggregator.publish_global(global_value)
        injector = FailureInjector(config.failure_plan, node_id, incarnation)
        session = NodeSession(worker, transport, injector, metrics, config)

        backoff = config.idle_sleep_s
        while True:
            worked = session.step()

            while channel.poll(0):
                reply = session.handle(channel.recv_obj())
                channel.send_obj(reply)
                if session.done:
                    return

            # Unsolicited notifications: the drained-edge ("wake", nid)
            # in sweep mode, pushed status deltas in async mode.
            for push in session.pending_pushes():
                channel.send_obj(push)

            if worked:
                backoff = config.idle_sleep_s
            else:
                # Block until a control command or a data-plane frame
                # arrives, up to backoff; the channel registers by its
                # fileno alongside the transport's sockets.
                transport.wait_for_activity(backoff, extra=(channel,))
                backoff = min(backoff * 2, config.idle_backoff_max_s)
    except ChannelClosed:
        # The master went away (job torn down / rolled back); nothing to
        # report and no one to report it to.
        pass
    except BaseException as exc:
        recoverable = isinstance(exc, (WireDecodeError, PeerLostError))
        try:
            channel.send_obj((
                "error", node_id, type(exc).__name__,
                "".join(traceback.format_exception(type(exc), exc,
                                                   exc.__traceback__)),
                recoverable,
            ))
        except Exception:
            pass
    finally:
        if worker is not None:
            worker.cleanup()
        if transport is not None:
            transport.close()
        if owns_spill:
            shutil.rmtree(spill_root, ignore_errors=True)
        channel.close()


def serve_node(
    master_addr: str,
    bind_host: str = "127.0.0.1",
    node_id: int = -1,
    connect_timeout_s: float = 30.0,
) -> None:
    """Run one cluster node against ``master_addr`` until the job ends.

    The ``repro node`` CLI entry point for attach mode; localhost spawn
    mode runs the same function in child processes.  ``node_id=-1``
    asks the master to assign the next free slot.
    """
    host, port = parse_host_port(master_addr)
    sock = connect_with_retry(host, port, connect_timeout_s, what="master")
    channel = ControlChannel(sock)
    channel.send_obj(("hello", node_id))
    msg = channel.recv_obj(timeout=connect_timeout_s)
    if not (isinstance(msg, tuple) and msg and msg[0] == "init"):
        raise GThinkerError(f"expected init from the master, got {msg!r}")
    (_tag, assigned_id, config, app_factory, rows, spill_root,
     snapshot, global_value, incarnation) = msg
    _node_serve(
        assigned_id, config, app_factory, rows, channel, bind_host,
        spill_root, snapshot, global_value, incarnation,
    )


def _spawned_node_main(
    master_addr: str, node_id: int, connect_timeout_s: float
) -> None:
    """Child-process entry for localhost spawn mode.

    Everything of substance (config, app, graph rows, snapshot) arrives
    over the control channel — the identical path attach-mode nodes
    use — so the spawn mode exercises the real multi-host protocol, not
    a fork-inheritance shortcut.
    """
    try:
        serve_node(
            master_addr,
            bind_host="127.0.0.1",
            node_id=node_id,
            connect_timeout_s=connect_timeout_s,
        )
    except (ChannelClosed, ConnectionError, OSError):
        # Master torn down mid-boot (rollback or shutdown) — exit quietly.
        pass


# ---------------------------------------------------------------------------
# Master side
# ---------------------------------------------------------------------------


class _ClusterMaster(ControlPlaneMaster):
    """TCP plumbing for :class:`ControlPlaneMaster`.

    Owns the control listener and (in localhost spawn mode) the node
    processes, so recovery can tear the whole node set down and reboot
    it from the last barrier snapshot.
    """

    def __init__(
        self,
        config: GThinkerConfig,
        app_factory,
        rows_per_node: List[List],
        spill_root: Optional[Path],
        join_timeout_s: float,
        checkpoint_path: Optional[str] = None,
        abort_after_rounds: Optional[int] = None,
    ) -> None:
        super().__init__(
            config=config,
            app_factory=app_factory,
            join_timeout_s=join_timeout_s,
            checkpoint_path=checkpoint_path,
            abort_after_rounds=abort_after_rounds,
        )
        self.rows_per_node = rows_per_node
        self.spill_root = spill_root
        self.attached = config.cluster_hosts is not None
        bind_host, bind_port = parse_host_port(config.cluster_bind)
        self.listener = listen_socket(bind_host, bind_port)
        self.channels: List[Optional[ControlChannel]] = []
        self.procs: List = []
        self._ctx = mp.get_context(
            config.process_start_method or _default_start_method()
        )

    @property
    def control_addr(self) -> str:
        host, port = self.listener.getsockname()[:2]
        return f"{host}:{port}"

    @property
    def num_nodes(self) -> int:
        return len(self.channels)

    # -- node-set lifecycle -----------------------------------------------

    def start(self, checkpoint: Optional[JobCheckpoint] = None) -> None:
        self._last_checkpoint = checkpoint
        if checkpoint is not None:
            self._epoch = checkpoint.epoch
        self._boot_nodes()

    def _boot_timeout(self) -> float:
        # Attached nodes are started by an operator; give them the
        # control-plane budget rather than the (short) connect budget.
        base = self.config.cluster_connect_timeout_s
        if self.attached:
            base = max(base, self.config.control_reply_timeout_s)
        return base

    def _accept_channel(self, deadline: float) -> ControlChannel:
        self.listener.settimeout(max(0.05, deadline - time.monotonic()))
        try:
            conn, _addr = self.listener.accept()
        except (socket.timeout, BlockingIOError) as exc:
            raise GThinkerError(
                f"cluster boot: not all {self.config.num_workers} nodes "
                f"connected within {self._boot_timeout()}s"
            ) from exc
        finally:
            self.listener.settimeout(None)
            self.listener.setblocking(False)
        return ControlChannel(conn)

    def _boot_nodes(self) -> None:
        config = self.config
        n = config.num_workers
        ckpt = self._last_checkpoint
        # The aggregator rolls back with the nodes: partials folded
        # after the barrier belong to work that will be redone.
        self.global_aggregator = GlobalAggregator(
            self.app_factory().make_aggregator()
        )
        if ckpt is not None:
            self.global_aggregator.set_value(ckpt.aggregator_global)
        global_value = self.global_aggregator.value if ckpt is not None else None

        if not self.attached:
            self.procs = []
            addr = self.control_addr
            for nid in range(n):
                proc = self._ctx.Process(
                    target=_spawned_node_main,
                    args=(addr, nid, config.cluster_connect_timeout_s),
                    name=f"gthinker-node-{nid}",
                    daemon=True,
                )
                proc.start()
                self.procs.append(proc)

        deadline = time.monotonic() + self._boot_timeout()
        channels: List[Optional[ControlChannel]] = [None] * n
        unassigned = [nid for nid in range(n)]
        for _ in range(n):
            chan = self._accept_channel(deadline)
            msg = chan.recv_obj(timeout=max(0.05, deadline - time.monotonic()))
            if not (isinstance(msg, tuple) and msg and msg[0] == "hello"):
                raise GThinkerError(f"expected hello from a node, got {msg!r}")
            requested = msg[1]
            if requested == -1:
                nid = unassigned[0]
            elif requested in unassigned:
                nid = requested
            else:
                raise GThinkerError(
                    f"node requested id {requested}, which is out of range "
                    f"or already taken"
                )
            unassigned.remove(nid)
            snap = ckpt.worker_snapshots[nid] if ckpt is not None else None
            spill = str(self.spill_root) if self.spill_root else None
            chan.send_obj((
                "init", nid, config, self.app_factory,
                self.rows_per_node[nid], spill, snap, global_value,
                self._incarnation,
            ))
            channels[nid] = chan

        peers: List[Optional[str]] = [None] * n
        for nid in range(n):
            msg = channels[nid].recv_obj(
                timeout=max(0.05, deadline - time.monotonic())
            )
            if not (isinstance(msg, tuple) and msg[0] == "ready"):
                raise GThinkerError(f"expected ready from node {nid}, got {msg!r}")
            peers[msg[1]] = msg[2]
        for nid in range(n):
            channels[nid].send_obj(("peers", peers))
        for nid in range(n):
            msg = channels[nid].recv_obj(
                timeout=max(0.05, deadline - time.monotonic())
            )
            if not (isinstance(msg, tuple) and msg[0] == "up"):
                raise GThinkerError(f"expected up from node {nid}, got {msg!r}")
        self.channels = channels

    def _terminate_nodes(self) -> None:
        for chan in self.channels:
            if chan is not None:
                chan.close()
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self.channels, self.procs = [], []

    def _recover(self) -> None:
        """Global rollback: reboot the node set from the last barrier."""
        if self.attached:
            # A foreign process cannot be respawned from here.  The last
            # checkpoint shard (if a checkpoint_path was given) is on
            # disk; restart the nodes and resume from it.
            raise GThinkerError(
                "a cluster node was lost and cluster_hosts nodes are "
                "started externally — restart them and resume from the "
                "checkpoint shard (resume_job / --resume-from)"
            )
        self._terminate_nodes()
        self._incarnation += 1
        self.metrics.add("ft:recoveries")
        self._boot_nodes()

    def shutdown(self) -> None:
        self._terminate_nodes()
        try:
            self.listener.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass

    # -- plumbing ---------------------------------------------------------

    def _raise_from_report(self, msg) -> None:
        """Raise when ``msg`` is a node's error report; else return."""
        if isinstance(msg, tuple) and msg and msg[0] == "error":
            _tag, nid, exc_type, tb, recoverable = msg
            raise WorkerProcessError(
                nid, f"{exc_type} raised:\n{tb}", recoverable=recoverable
            )

    def _send(self, node_id: int, cmd) -> None:
        chan = self.channels[node_id]
        try:
            chan.send_obj(cmd)
        except ChannelClosed as exc:
            # Drain buffered frames for an error report before labelling
            # this a silent machine loss.
            try:
                while chan.poll(0.05):
                    self._raise_from_report(chan.recv_obj())
            except (ChannelClosed, WireDecodeError):
                pass
            raise WorkerProcessError(
                node_id, "control channel closed unexpectedly",
                recoverable=True,
            ) from exc

    def _recv(self, node_id: int, timeout: Optional[float] = None):
        if timeout is None:
            timeout = self.config.control_reply_timeout_s
        chan = self.channels[node_id]
        deadline = time.monotonic() + timeout
        while True:
            try:
                if not chan.poll(min(0.1, max(0.0, deadline - time.monotonic()))):
                    if time.monotonic() >= deadline:
                        raise WorkerProcessError(
                            node_id,
                            f"no control-plane reply within {timeout}s",
                            recoverable=True,
                        )
                    continue
                msg = chan.recv_obj()
            except (ChannelClosed, WireDecodeError) as exc:
                raise WorkerProcessError(
                    node_id, f"control channel lost: {exc}",
                    recoverable=True,
                ) from exc
            self._raise_from_report(msg)
            if self._note_oob(node_id, msg):
                # Unsolicited notification (wake or pushed status)
                # racing a request-reply exchange; the reply we are
                # waiting for is behind it.
                continue
            return msg

    def _drain_events(self, timeout: float) -> None:
        """Multiplexed control-event drain over every node's channel.

        Blocks up to ``timeout`` (in <=0.25s selector slices) for the
        first control frame, then consumes everything buffered on every
        channel via the non-blocking ``drain_nowait``.  Out-of-band
        messages route through ``_note_oob``; error reports raise final,
        channel loss raises as a recoverable machine loss.
        """
        deadline = time.monotonic() + timeout
        while True:
            got = False
            for nid, chan in enumerate(self.channels):
                try:
                    for msg in chan.drain_nowait():
                        self._raise_from_report(msg)
                        if not self._note_oob(nid, msg):
                            raise WorkerProcessError(
                                nid,
                                "unexpected out-of-band control message "
                                f"{type(msg).__name__}",
                            )
                        got = True
                except (ChannelClosed, WireDecodeError) as exc:
                    raise WorkerProcessError(
                        nid, f"control channel lost while idle: {exc}",
                        recoverable=True,
                    ) from exc
            remaining = deadline - time.monotonic()
            if got or remaining <= 0:
                return
            with selectors.DefaultSelector() as sel:
                for chan in self.channels:
                    try:
                        sel.register(chan, selectors.EVENT_READ)
                    except (KeyError, ValueError, OSError):
                        # A dead fd; surface it as a wake so the next
                        # protocol op reports the loss.
                        self._pending_wake = True
                        return
                sel.select(min(remaining, 0.25))


# ---------------------------------------------------------------------------
# The executor registered as runtime="cluster"
# ---------------------------------------------------------------------------


class ClusterExecutor:
    """``execute(JobRequest) -> JobResult`` via TCP-connected nodes."""

    def __init__(self, join_timeout_s: float = 600.0) -> None:
        self.join_timeout_s = join_timeout_s

    def execute(self, request: JobRequest):
        from .job import JobResult, _partition_rows  # deferred: job.py imports us lazily

        config = request.config
        app_factory = request.app_factory
        try:
            pickle.dumps(app_factory)
        except Exception as exc:
            raise GThinkerError(
                f"runtime='cluster' requires a picklable app_factory "
                f"(a Comper class or functools.partial, not a lambda or "
                f"closure): {exc!r}"
            ) from exc

        ckpt = request.checkpoint
        if ckpt is not None and ckpt.num_workers != config.num_workers:
            raise CheckpointError(
                f"checkpoint was taken with {ckpt.num_workers} workers, "
                f"job has {config.num_workers}"
            )

        graph = request.graph
        if isinstance(graph, ShardedGraphStore):
            graph = graph.load_full_graph()
        if not isinstance(graph, Graph):
            raise TypeError(f"unsupported graph source {type(request.graph)!r}")

        started = time.perf_counter()
        rows_per_node = _partition_rows(graph, config.num_workers)
        # The master owns the spill root only in localhost spawn mode;
        # attached nodes are (possibly) on other machines and make their
        # own temp dirs.
        attached = config.cluster_hosts is not None
        owns_spill = not attached and config.spill_dir is None
        if attached:
            spill_root = None
        elif config.spill_dir:
            spill_root = Path(config.spill_dir)
        else:
            spill_root = Path(tempfile.mkdtemp(prefix="gthinker-spill-cluster-"))
        master = _ClusterMaster(
            config=config,
            app_factory=app_factory,
            rows_per_node=rows_per_node,
            spill_root=spill_root,
            join_timeout_s=self.join_timeout_s,
            checkpoint_path=request.checkpoint_path,
            abort_after_rounds=request.abort_after_rounds,
        )
        try:
            master.start(checkpoint=ckpt)
            finals = master.run()

            merged = MetricsRegistry()
            merged.merge_from(master.metrics)
            outputs: List[Any] = []
            for final in sorted(finals, key=lambda f: f.worker_id):
                merged.merge_from(MetricsRegistry.from_snapshot(final.metrics))
                outputs.extend(final.outputs)
            for proc in master.procs:
                proc.join(timeout=10.0)
            return JobResult(
                aggregate=master.global_aggregator.value,
                outputs=outputs,
                metrics=merged.snapshot(),
                elapsed_s=time.perf_counter() - started,
                num_workers=config.num_workers,
                compers_per_worker=config.compers_per_worker,
            )
        finally:
            master.shutdown()
            if owns_spill and spill_root is not None:
                shutil.rmtree(spill_root, ignore_errors=True)
