"""Task containers (paper §V-B, Fig. 7).

Each comper owns three in-memory containers:

* :class:`TaskQueue` (``Q_task``) — a deque touched only by its comper.
  Refill is triggered at ``|Q| <= C`` and tops the queue back up to
  ``2C``; capacity is ``3C``; overflow spills the *last* ``C`` tasks as
  one batch file (sequential IO).
* :class:`ReadyBuffer` (``B_task``) — a concurrent queue that the
  response-receiving path appends ready tasks to (the comper alone may
  touch ``Q_task``, so readiness notifications go through this buffer).
* :class:`PendingTable` (``T_task``) — pending tasks keyed by 64-bit
  task id (16-bit comper id ‖ 48-bit sequence number), each with
  ``(met, req)`` counters of arrived vs requested vertices.

Workers additionally share:

* :class:`TaskFileList` (``L_file``) — a concurrent list of spilled task
  batch files, shared by all compers of a machine; stolen task batches
  also land here.
"""

from __future__ import annotations

import os
import pickle
import threading
import uuid
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .api import Task
from .metrics import MetricsRegistry

__all__ = [
    "make_task_id",
    "comper_of_task_id",
    "TaskQueue",
    "ReadyBuffer",
    "PendingTable",
    "PendingEntry",
    "TaskFileList",
    "serialize_tasks",
    "deserialize_tasks",
]

_SEQ_BITS = 48
_SEQ_MASK = (1 << _SEQ_BITS) - 1


def make_task_id(comper_id: int, seq: int) -> int:
    """Compose the paper's 64-bit task id: 16-bit comper ‖ 48-bit seq."""
    if not 0 <= comper_id < (1 << 16):
        raise ValueError(f"comper_id out of 16-bit range: {comper_id}")
    return (comper_id << _SEQ_BITS) | (seq & _SEQ_MASK)


def comper_of_task_id(task_id: int) -> int:
    """Recover the owning comper from a task id (used by the receiver)."""
    return task_id >> _SEQ_BITS


_TASK_MAGIC = b"GTTASK1\x00"

_CTX_NONE = 0
_CTX_INT = 1
_CTX_INT_TUPLE = 2
_CTX_PICKLE = 3

_PAD = b"\x00" * 7


def _ints(*values: int) -> bytes:
    return np.array(values, dtype="<i8").tobytes()


def _padded(raw: bytes) -> bytes:
    rem = len(raw) % 8
    return raw if rem == 0 else raw + _PAD[: 8 - rem]


def _encode_task(task: Task, chunks: List[bytes]) -> None:
    pulls = task.pending_pulls()
    chunks.append(_ints(len(pulls)))
    chunks.append(np.asarray(pulls, dtype="<i8").tobytes())
    adj = task.g.adjacency()
    vids = sorted(adj)
    n = len(vids)
    degrees = np.fromiter((len(adj[v]) for v in vids), dtype="<i8", count=n)
    chunks.append(_ints(n))
    chunks.append(np.asarray(vids, dtype="<i8").tobytes())
    chunks.append(
        np.fromiter((task.g.label(v) for v in vids), dtype="<i8",
                    count=n).tobytes()
    )
    chunks.append(degrees.tobytes())
    for v in vids:
        chunks.append(np.asarray(adj[v], dtype="<i8").tobytes())
    ctx = task.context
    if ctx is None:
        chunks.append(_ints(_CTX_NONE))
    elif type(ctx) is int:
        chunks.append(_ints(_CTX_INT, ctx))
    elif type(ctx) is tuple and all(type(x) is int for x in ctx):
        chunks.append(_ints(_CTX_INT_TUPLE, len(ctx)))
        chunks.append(np.asarray(ctx, dtype="<i8").tobytes())
    else:
        raw = pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)
        chunks.append(_ints(_CTX_PICKLE, len(raw)))
        chunks.append(_padded(raw))


def serialize_tasks(tasks: Sequence[Task]) -> bytes:
    """Encode a task batch for spilling or stealing.

    Task ids are invalidated first: an id encodes the comper that minted
    it, and a serialized batch may be refilled by *any* comper of this
    machine (shared ``L_file``) or shipped to another worker entirely
    (work stealing).  Were a stale id to survive, the next park would
    insert the task into the new owner's ``T_task`` while the response
    receiver routes the arrival by ``comper_of_task_id`` to the original
    engine.  Every park on a new owner must mint a fresh local id.

    The encoding is the flat int64 frame format (``GTTASK1`` magic): a
    task's pending pulls and its subgraph rows are packed as raw arrays,
    and the context as ``None`` / int / int-tuple frames with pickle for
    anything richer.  Tasks that cannot be represented — e.g. ones with
    in-flight pulls, which only an engine-internal park can produce —
    fall back to pickling the whole batch; :func:`deserialize_tasks`
    sniffs the magic to tell the two apart.
    """
    tasks = list(tasks)
    for t in tasks:
        t.task_id = -1
    try:
        if any(t.pulls_in_flight for t in tasks):
            raise ValueError("task with in-flight pulls")
        chunks: List[bytes] = [_TASK_MAGIC, _ints(len(tasks))]
        for t in tasks:
            _encode_task(t, chunks)
        return b"".join(chunks)
    except Exception:
        return pickle.dumps(tasks, protocol=pickle.HIGHEST_PROTOCOL)


class _TaskCursor:
    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes, pos: int) -> None:
        self.buf = buf
        self.pos = pos

    def read_ints(self, count: int) -> np.ndarray:
        out = np.frombuffer(self.buf, dtype="<i8", count=count, offset=self.pos)
        self.pos += 8 * count
        return out

    def read_bytes(self, length: int) -> bytes:
        raw = self.buf[self.pos : self.pos + length]
        self.pos += length + (-length % 8)
        return raw


def deserialize_tasks(payload: bytes) -> List[Task]:
    if payload[:8] != _TASK_MAGIC:
        return pickle.loads(payload)
    cur = _TaskCursor(payload, 8)
    (count,) = cur.read_ints(1)
    tasks: List[Task] = []
    for _ in range(int(count)):
        task = Task()
        (n_pulls,) = cur.read_ints(1)
        pulls = cur.read_ints(int(n_pulls)).tolist()
        task._pulls = pulls
        task._pull_set = set(pulls)
        (n,) = cur.read_ints(1)
        n = int(n)
        vids = cur.read_ints(n)
        labels = cur.read_ints(n)
        degrees = cur.read_ints(n)
        adj = task.g._adj
        lbl = task.g._labels
        for i in range(n):
            row = cur.read_ints(int(degrees[i]))
            adj[int(vids[i])] = tuple(row.tolist())
            if labels[i]:
                lbl[int(vids[i])] = int(labels[i])
        (kind,) = cur.read_ints(1)
        if kind == _CTX_INT:
            task.context = int(cur.read_ints(1)[0])
        elif kind == _CTX_INT_TUPLE:
            (length,) = cur.read_ints(1)
            task.context = tuple(cur.read_ints(int(length)).tolist())
        elif kind == _CTX_PICKLE:
            (length,) = cur.read_ints(1)
            task.context = pickle.loads(cur.read_bytes(int(length)))
        elif kind != _CTX_NONE:
            raise ValueError(f"unknown task context kind {kind}")
        tasks.append(task)
    return tasks


class TaskQueue:
    """``Q_task``: a bounded deque owned by exactly one comper.

    Only the owning comper mutates it, so no lock is needed (the paper
    makes the same single-writer argument).  ``append`` returns a spill
    batch when the queue is full; the comper writes it to ``L_file``.
    """

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.capacity = 3 * batch_size
        self._q: Deque[Task] = deque()
        # Owned-side memory gauge: maintained by the owning comper at
        # every mutation so other threads (the master's memory gauge)
        # never have to iterate the deque.  Queued tasks are not mutated,
        # so add-at-append / subtract-at-pop stays drift-free.
        self._mem_bytes = 0

    def __len__(self) -> int:
        return len(self._q)

    def memory_estimate(self) -> int:
        """Modeled bytes of the queued tasks (safe to read cross-thread)."""
        return max(0, self._mem_bytes)

    def needs_refill(self) -> bool:
        """Paper rule: refill when ``|Q_task| <= C``."""
        return len(self._q) <= self.batch_size

    def refill_room(self) -> int:
        """How many tasks a refill may add (to reach ``2C``)."""
        return max(0, 2 * self.batch_size - len(self._q))

    def append(self, task: Task) -> Optional[List[Task]]:
        """Append at the tail; if full, return the last ``C`` tasks to spill.

        After a spill the queue holds ``2C`` tasks and the new task is
        appended, giving ``2C + 1`` — exactly the paper's bookkeeping.
        """
        spill: Optional[List[Task]] = None
        if len(self._q) >= self.capacity:
            spill = [self._q.pop() for _ in range(self.batch_size)]
            spill.reverse()  # preserve original order inside the batch
            self._mem_bytes -= sum(t.memory_estimate_bytes() for t in spill)
        self._q.append(task)
        self._mem_bytes += task.memory_estimate_bytes()
        return spill

    def prepend(self, tasks: Sequence[Task]) -> None:
        """Refill at the head (refilled tasks run before queued ones)."""
        for t in reversed(tasks):
            self._q.appendleft(t)
            self._mem_bytes += t.memory_estimate_bytes()

    def pop(self) -> Optional[Task]:
        """Fetch the next task from the head."""
        if self._q:
            task = self._q.popleft()
            self._mem_bytes -= task.memory_estimate_bytes()
            return task
        return None

    def drain(self) -> List[Task]:
        out = list(self._q)
        self._q.clear()
        self._mem_bytes = 0
        return out


class ReadyBuffer:
    """``B_task``: concurrent FIFO of tasks whose pulls all arrived."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._q: Deque[Task] = deque()

    def put(self, task: Task) -> None:
        with self._lock:
            self._q.append(task)

    def get(self) -> Optional[Task]:
        with self._lock:
            if self._q:
                return self._q.popleft()
            return None

    def get_batch(self, limit: int) -> List[Task]:
        out: List[Task] = []
        with self._lock:
            while self._q and len(out) < limit:
                out.append(self._q.popleft())
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._q)


class PendingEntry:
    """``T_task`` value: the parked task plus its ``(met, req)`` counters."""

    __slots__ = ("task", "met", "req", "resolved")

    def __init__(self, task: Task, req: int, met: int = 0) -> None:
        self.task = task
        self.req = req
        self.met = met
        # Vertex ids already available at park time (local or cache hits)
        # don't need re-resolution; we keep nothing else here because the
        # locks are held in the cache itself.
        self.resolved = None  # placeholder for future use


class PendingTable:
    """``T_task``: pending tasks of one comper, updated by the receiver.

    The response-receiving path (a different thread in threaded mode)
    increments ``met`` and removes ready entries, so this table is
    locked.  Contention is low: one comper's entries are touched by one
    comper plus the receiving path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[int, PendingEntry] = {}

    def insert(self, task_id: int, task: Task, req: int, met: int = 0) -> None:
        with self._lock:
            if task_id in self._entries:
                raise KeyError(f"duplicate pending task id {task_id:#x}")
            self._entries[task_id] = PendingEntry(task, req=req, met=met)

    def notify_arrival(self, task_id: int) -> Optional[Task]:
        """Increment ``met``; if ``met == req`` remove and return the task."""
        with self._lock:
            entry = self._entries.get(task_id)
            if entry is None:
                raise KeyError(f"arrival for unknown pending task {task_id:#x}")
            entry.met += 1
            if entry.met > entry.req:
                raise ValueError(
                    f"task {task_id:#x} met {entry.met} > req {entry.req}"
                )
            if entry.met == entry.req:
                del self._entries[task_id]
                return entry.task
            return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def drain(self) -> List[Task]:
        """Remove and return all pending tasks (checkpoint/recovery path)."""
        with self._lock:
            tasks = [e.task for e in self._entries.values()]
            self._entries.clear()
        return tasks


class TaskFileList:
    """``L_file``: the machine-wide concurrent list of spilled batch files.

    Files are appended at the tail (spills, stolen batches) and consumed
    from the head (refills prioritize the earliest spilled work, the
    paper's rule for keeping disk-resident task volume minimal).
    """

    def __init__(self, spill_dir: Path, metrics: Optional[MetricsRegistry] = None) -> None:
        self.spill_dir = Path(spill_dir)
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._files: Deque[Tuple[Path, int]] = deque()  # (path, num_tasks)
        self._metrics = metrics or MetricsRegistry()
        # Optional hook charging modeled disk time per IO (set by the
        # DES runtime): called with the number of bytes read/written.
        self.on_io = None

    def spill(self, tasks: Sequence[Task]) -> Path:
        """Write a task batch to a new file and register it."""
        payload = serialize_tasks(tasks)
        path = self.spill_dir / f"batch-{uuid.uuid4().hex}.tasks"
        with open(path, "wb") as f:
            f.write(payload)
        with self._lock:
            self._files.append((path, len(tasks)))
        self._metrics.add("tasks:spilled", len(tasks))
        self._metrics.add("tasks:spill_bytes", len(payload))
        if self.on_io is not None:
            self.on_io(len(payload))
        return path

    def add_payload(self, payload: bytes, num_tasks: int) -> Path:
        """Register an already-serialized batch (stolen tasks)."""
        path = self.spill_dir / f"stolen-{uuid.uuid4().hex}.tasks"
        with open(path, "wb") as f:
            f.write(payload)
        with self._lock:
            self._files.append((path, num_tasks))
        self._metrics.add("tasks:stolen_in", num_tasks)
        if self.on_io is not None:
            self.on_io(len(payload))
        return path

    def take_file(self) -> Optional[List[Task]]:
        """Pop the head file, load and delete it; None when empty."""
        with self._lock:
            if not self._files:
                return None
            path, _count = self._files.popleft()
        with open(path, "rb") as f:
            payload = f.read()
        tasks = deserialize_tasks(payload)
        os.unlink(path)
        self._metrics.add("tasks:refilled_from_disk", len(tasks))
        if self.on_io is not None:
            self.on_io(len(payload))
        return tasks

    def take_payload(self) -> Optional[Tuple[bytes, int]]:
        """Pop the head file as raw bytes (work-stealing source path)."""
        with self._lock:
            if not self._files:
                return None
            path, count = self._files.popleft()
        with open(path, "rb") as f:
            payload = f.read()
        os.unlink(path)
        self._metrics.add("tasks:stolen_out", count)
        return payload, count

    def __len__(self) -> int:
        with self._lock:
            return len(self._files)

    def num_tasks_on_disk(self) -> int:
        with self._lock:
            return sum(count for _p, count in self._files)

    def cleanup(self) -> None:
        """Delete any remaining files (job teardown)."""
        with self._lock:
            while self._files:
                path, _ = self._files.popleft()
                try:
                    os.unlink(path)
                except OSError:
                    pass
