"""Job assembly and the public ``run_job`` entry point.

Typical use::

    from repro import run_job, GThinkerConfig
    from repro.apps import TriangleCountComper

    result = run_job(TriangleCountComper, graph, GThinkerConfig(num_workers=4))
    print(result.aggregate)   # the triangle count

``graph`` may be an in-memory :class:`repro.graph.Graph` (partitioned by
vertex-id hashing at load, the paper's Pregel-style placement) or a
:class:`repro.graph.ShardedGraphStore` (each worker parses its own shard,
the HDFS-loading contract).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..graph.graph import Graph
from ..graph.io import ShardedGraphStore
from ..graph.partition import hash_partition
from ..net.transport import Transport
from .api import Comper
from .checkpoint import JobCheckpoint, capture, restore_task
from .config import GThinkerConfig
from .errors import JobAbortedError
from .master import Master
from .metrics import MetricsRegistry
from .runtime import Cluster, SerialRuntime, ThreadedRuntime
from .worker import Worker

__all__ = ["JobResult", "build_cluster", "run_job", "resume_job"]

GraphSource = Union[Graph, ShardedGraphStore]


@dataclass
class JobResult:
    """What a finished job returns."""

    aggregate: Any
    outputs: List[Any]
    metrics: Dict[str, float]
    elapsed_s: float
    num_workers: int
    compers_per_worker: int

    @property
    def peak_memory_bytes(self) -> float:
        return self.metrics.get("max:peak_memory_bytes", 0.0)

    @property
    def network_bytes(self) -> float:
        return self.metrics.get("net:bytes", 0.0)


def _partition_rows(graph: Graph, num_workers: int):
    """Split an in-memory graph into per-worker row lists."""
    rows: List[List] = [[] for _ in range(num_workers)]
    for v in graph.sorted_vertices():
        rows[hash_partition(v, num_workers)].append(
            (v, graph.label(v), graph.neighbors(v))
        )
    return rows


def build_cluster(
    app_factory: Callable[[], Comper],
    graph: GraphSource,
    config: GThinkerConfig,
    transport: Optional[Transport] = None,
    metrics: Optional[MetricsRegistry] = None,
    timed_transport: bool = False,
) -> Cluster:
    """Construct workers, load the graph, and wire the master."""
    metrics = metrics or MetricsRegistry()
    transport = transport or Transport(
        config.num_workers,
        metrics=metrics,
        network=config.network,
        timed=timed_transport,
    )
    spill_root = Path(config.spill_dir) if config.spill_dir else Path(
        tempfile.mkdtemp(prefix="gthinker-spill-")
    )
    workers = [
        Worker(
            worker_id=i,
            num_workers=config.num_workers,
            config=config,
            app_factory=app_factory,
            transport=transport,
            metrics=metrics,
            spill_dir=spill_root,
        )
        for i in range(config.num_workers)
    ]
    _load_graph(workers, graph, config)
    master = Master(workers, transport, config, metrics)
    return Cluster(
        workers=workers, master=master, transport=transport,
        metrics=metrics, config=config,
    )


def _load_graph(workers: List[Worker], graph: GraphSource, config: GThinkerConfig) -> None:
    if isinstance(graph, Graph):
        for w, rows in zip(workers, _partition_rows(graph, config.num_workers)):
            w.load_rows(rows)
        return
    if isinstance(graph, ShardedGraphStore):
        if graph.num_shards == config.num_workers:
            for w in workers:
                w.load_rows(graph.read_shard(w.worker_id))
        else:
            # Shard count mismatch: re-hash every row to its worker.
            rows: List[List] = [[] for _ in workers]
            for shard in range(graph.num_shards):
                for v, label, adj in graph.read_shard(shard):
                    rows[hash_partition(v, config.num_workers)].append((v, label, adj))
            for w, r in zip(workers, rows):
                w.load_rows(r)
        return
    raise TypeError(f"unsupported graph source {type(graph)!r}")


def _seed_from_checkpoint(cluster: Cluster, ckpt: JobCheckpoint) -> None:
    if ckpt.num_workers != len(cluster.workers):
        raise ValueError(
            f"checkpoint was taken with {ckpt.num_workers} workers, "
            f"cluster has {len(cluster.workers)}"
        )
    cluster.master.global_aggregator.set_value(ckpt.aggregator_global)
    for w in cluster.workers:
        w.aggregator.publish_global(ckpt.aggregator_global)
    for w, snap in zip(cluster.workers, ckpt.worker_snapshots):
        w.set_spawn_cursor(snap.spawn_cursor)
        w.set_outputs(snap.outputs)
        for i, tsnap in enumerate(snap.tasks):
            engine = w.engines[i % len(w.engines)]
            engine.add_task(restore_task(tsnap))


def _finish(cluster: Cluster, started: float) -> JobResult:
    for w in cluster.workers:
        w.cleanup()
    return JobResult(
        aggregate=cluster.master.global_aggregator.value,
        outputs=[rec for w in cluster.workers for rec in w.outputs()],
        metrics=cluster.metrics.snapshot(),
        elapsed_s=time.perf_counter() - started,
        num_workers=cluster.config.num_workers,
        compers_per_worker=cluster.config.compers_per_worker,
    )


def run_job(
    app_factory: Callable[[], Comper],
    graph: GraphSource,
    config: Optional[GThinkerConfig] = None,
    runtime: str = "serial",
    checkpoint_path: Optional[str] = None,
    abort_after_rounds: Optional[int] = None,
) -> JobResult:
    """Run a G-thinker job to completion and return its result.

    Parameters
    ----------
    app_factory:
        A zero-argument callable producing the user's
        :class:`~repro.core.api.Comper` (one instance per mining thread).
    runtime:
        ``"serial"`` (deterministic single thread; supports
        checkpointing and failure injection), ``"threaded"`` (real
        threads, paper-shaped concurrency), or ``"checked"`` (the
        seeded interleaving fuzzer from :mod:`repro.check`; forces
        protocol checkers on and perturbs step order from
        ``config.seed``).
    checkpoint_path:
        Where periodic checkpoints go when
        ``config.checkpoint_every_syncs > 0`` (serial runtime only).
    abort_after_rounds:
        Failure injection for fault-tolerance tests (serial runtime).
    """
    config = config or GThinkerConfig()
    if runtime == "checked" and not config.check_protocols:
        config = config.with_updates(check_protocols=True)
    cluster = build_cluster(app_factory, graph, config)
    if checkpoint_path and config.checkpoint_every_syncs > 0:
        cluster.master.checkpoint_hook = lambda: capture(cluster).save(checkpoint_path)
    started = time.perf_counter()
    if runtime == "serial":
        try:
            SerialRuntime().run(cluster, abort_after_rounds=abort_after_rounds)
        except JobAbortedError:
            for w in cluster.workers:
                w.cleanup()
            raise
    elif runtime == "threaded":
        if abort_after_rounds is not None:
            raise ValueError("failure injection requires the serial runtime")
        ThreadedRuntime().run(cluster)
    elif runtime == "checked":
        if abort_after_rounds is not None:
            raise ValueError("failure injection requires the serial runtime")
        from ..check import CheckedRuntime

        CheckedRuntime(seed=config.seed).run(cluster)
    else:
        raise ValueError(
            f"unknown runtime {runtime!r} (use 'serial', 'threaded' or 'checked')"
        )
    return _finish(cluster, started)


def resume_job(
    app_factory: Callable[[], Comper],
    graph: GraphSource,
    checkpoint_path: str,
    config: Optional[GThinkerConfig] = None,
    runtime: str = "serial",
) -> JobResult:
    """Recover from a checkpoint and run the remainder of the job."""
    ckpt = JobCheckpoint.load(checkpoint_path)
    config = config or GThinkerConfig(
        num_workers=ckpt.num_workers, compers_per_worker=ckpt.compers_per_worker
    )
    cluster = build_cluster(app_factory, graph, config)
    _seed_from_checkpoint(cluster, ckpt)
    started = time.perf_counter()
    if runtime == "serial":
        SerialRuntime().run(cluster)
    elif runtime == "threaded":
        ThreadedRuntime().run(cluster)
    else:
        raise ValueError(f"unknown runtime {runtime!r}")
    return _finish(cluster, started)
