"""Job assembly and the public ``run_job`` entry point.

Typical use::

    from repro import run_job, GThinkerConfig
    from repro.apps import TriangleCountComper

    result = run_job(TriangleCountComper, graph, GThinkerConfig(num_workers=4))
    print(result.aggregate)   # the triangle count

``graph`` may be an in-memory :class:`repro.graph.Graph` (partitioned by
vertex-id hashing at load, the paper's Pregel-style placement) or a
:class:`repro.graph.ShardedGraphStore` (each worker parses its own shard,
the HDFS-loading contract).

Runtime selection goes through the pluggable registry in
:mod:`repro.core.runtime`: ``run_job`` and ``resume_job`` share one
dispatch path, validate the requested features (checkpointing, failure
injection, resume) against the runtime's declared capabilities, and both
raise :class:`~repro.core.errors.UnsupportedRuntimeFeature` for any
unsupported combination.  This module registers the four built-in
runtimes: ``serial``, ``threaded``, ``checked`` and ``process``.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..graph.graph import Graph
from ..graph.io import ShardedGraphStore
from ..graph.partition import hash_partition
from ..net.transport import Transport
from .api import Comper
from .checkpoint import JobCheckpoint, capture, restore_worker
from .config import GThinkerConfig
from .errors import UnsupportedRuntimeFeature
from .master import Master
from .metrics import MetricsAccessors, MetricsRegistry
from .runtime import (
    Cluster,
    JobRequest,
    RuntimeCapabilities,
    SerialRuntime,
    ThreadedRuntime,
    get_runtime,
    register_runtime,
)
from .worker import Worker

__all__ = [
    "JobResult", "activate_kernel_backend", "build_cluster", "run_job",
    "resume_job", "resolve_resume",
]

GraphSource = Union[Graph, ShardedGraphStore]


def activate_kernel_backend(config: GThinkerConfig,
                            metrics: Optional[MetricsRegistry]) -> str:
    """Bind the mining kernels to the job's backend and record what ran.

    Called once per process that mines (the in-process executors via
    :func:`build_cluster`, each ``runtime='process'`` worker, each
    ``runtime='cluster'`` node) so 'fork', 'spawn' and remote-attach
    workers all honor ``config.kernel_backend`` / ``REPRO_KERNEL_BACKEND``.
    The chosen backend lands in the metrics as ``kernels:backend:<name>``.
    """
    from ..graph import kernels

    backend = kernels.select_backend(config.effective_kernel_backend)
    if metrics is not None:
        metrics.add(f"kernels:backend:{backend}", 1.0)
    return backend


@dataclass
class JobResult(MetricsAccessors):
    """What a finished job returns.

    Besides the raw ``metrics`` snapshot, typed accessors are available:
    ``result.cache_stats`` (hits/misses/evictions) and
    ``result.worker_metrics(i)`` (per-worker peaks) — prefer them over
    poking ``"max:worker0:peak_memory_bytes"``-style string keys.
    """

    aggregate: Any
    outputs: List[Any]
    metrics: Dict[str, float]
    elapsed_s: float
    num_workers: int
    compers_per_worker: int

    @property
    def peak_memory_bytes(self) -> float:
        return self.metrics.get("max:peak_memory_bytes", 0.0)

    @property
    def network_bytes(self) -> float:
        return self.metrics.get("net:bytes", 0.0)


def _partition_rows(graph: Graph, num_workers: int):
    """Split an in-memory graph into per-worker row lists."""
    rows: List[List] = [[] for _ in range(num_workers)]
    for v in graph.sorted_vertices():
        rows[hash_partition(v, num_workers)].append(
            (v, graph.label(v), graph.neighbors(v))
        )
    return rows


def build_cluster(
    app_factory: Callable[[], Comper],
    graph: GraphSource,
    config: GThinkerConfig,
    transport: Optional[Transport] = None,
    metrics: Optional[MetricsRegistry] = None,
    timed_transport: bool = False,
) -> Cluster:
    """Construct workers, load the graph, and wire the master."""
    metrics = metrics or MetricsRegistry()
    activate_kernel_backend(config, metrics)
    transport = transport or Transport(
        config.num_workers,
        metrics=metrics,
        network=config.network,
        timed=timed_transport,
    )
    owns_spill_root = config.spill_dir is None
    spill_root = Path(config.spill_dir) if config.spill_dir else Path(
        tempfile.mkdtemp(prefix="gthinker-spill-")
    )
    workers = [
        Worker(
            worker_id=i,
            num_workers=config.num_workers,
            config=config,
            app_factory=app_factory,
            transport=transport,
            metrics=metrics,
            spill_dir=spill_root,
        )
        for i in range(config.num_workers)
    ]
    _load_graph(workers, graph, config)
    master = Master(workers, transport, config, metrics)
    return Cluster(
        workers=workers, master=master, transport=transport,
        metrics=metrics, config=config,
        spill_root=spill_root, owns_spill_root=owns_spill_root,
    )


def _load_graph(workers: List[Worker], graph: GraphSource, config: GThinkerConfig) -> None:
    if isinstance(graph, Graph):
        for w, rows in zip(workers, _partition_rows(graph, config.num_workers)):
            w.load_rows(rows)
        return
    if isinstance(graph, ShardedGraphStore):
        if graph.num_shards == config.num_workers:
            for w in workers:
                w.load_rows(graph.read_shard(w.worker_id))
        else:
            # Shard count mismatch: re-hash every row to its worker.
            rows: List[List] = [[] for _ in workers]
            for shard in range(graph.num_shards):
                for v, label, adj in graph.read_shard(shard):
                    rows[hash_partition(v, config.num_workers)].append((v, label, adj))
            for w, r in zip(workers, rows):
                w.load_rows(r)
        return
    raise TypeError(f"unsupported graph source {type(graph)!r}")


def _seed_from_checkpoint(cluster: Cluster, ckpt: JobCheckpoint) -> None:
    if ckpt.num_workers != len(cluster.workers):
        raise ValueError(
            f"checkpoint was taken with {ckpt.num_workers} workers, "
            f"cluster has {len(cluster.workers)}"
        )
    cluster.master.global_aggregator.set_value(ckpt.aggregator_global)
    for w in cluster.workers:
        w.aggregator.publish_global(ckpt.aggregator_global)
    for w, snap in zip(cluster.workers, ckpt.worker_snapshots):
        restore_worker(w, snap)


def _teardown(cluster: Cluster) -> None:
    """Release worker resources; remove the spill root iff we made it."""
    for w in cluster.workers:
        w.cleanup()
    if cluster.owns_spill_root and cluster.spill_root is not None:
        shutil.rmtree(cluster.spill_root, ignore_errors=True)


def _finish(cluster: Cluster, started: float) -> JobResult:
    _teardown(cluster)
    return JobResult(
        aggregate=cluster.master.global_aggregator.value,
        outputs=[rec for w in cluster.workers for rec in w.outputs()],
        metrics=cluster.metrics.snapshot(),
        elapsed_s=time.perf_counter() - started,
        num_workers=cluster.config.num_workers,
        compers_per_worker=cluster.config.compers_per_worker,
    )


# ---------------------------------------------------------------------------
# Built-in runtime executors
# ---------------------------------------------------------------------------


class ClusterRuntimeExecutor:
    """Shared shape of the in-process runtimes (serial/threaded/checked).

    Builds a cluster, optionally seeds it from a checkpoint, drives it,
    and — success or failure — tears the workers down so the
    ``gthinker-spill-*`` tempdir never leaks.  Subclasses override
    :meth:`prepare_config` and :meth:`drive`.
    """

    def prepare_config(self, config: GThinkerConfig) -> GThinkerConfig:
        return config

    def drive(self, cluster: Cluster, request: JobRequest) -> None:
        raise NotImplementedError

    def execute(self, request: JobRequest) -> JobResult:
        config = self.prepare_config(request.config)
        if config.failure_plan is not None:
            # The serial runtime's failure injection is abort_after_rounds;
            # worker-kill plans need real worker processes to kill.
            raise UnsupportedRuntimeFeature(
                "config.failure_plan (worker-kill injection) requires "
                "runtime='process' or runtime='cluster'"
            )
        cluster = build_cluster(request.app_factory, request.graph, config)
        cluster.master.abort = request.abort
        if request.checkpoint is not None:
            _seed_from_checkpoint(cluster, request.checkpoint)
        if request.checkpoint_path and config.checkpoint_every_syncs > 0:
            cluster.master.checkpoint_hook = (
                lambda: capture(cluster).save(request.checkpoint_path)
            )
        started = time.perf_counter()
        try:
            self.drive(cluster, request)
        except BaseException:
            _teardown(cluster)
            raise
        return _finish(cluster, started)


class SerialExecutor(ClusterRuntimeExecutor):
    def drive(self, cluster: Cluster, request: JobRequest) -> None:
        SerialRuntime().run(
            cluster, abort_after_rounds=request.abort_after_rounds
        )


class ThreadedExecutor(ClusterRuntimeExecutor):
    def drive(self, cluster: Cluster, request: JobRequest) -> None:
        ThreadedRuntime().run(cluster)


class CheckedExecutor(ClusterRuntimeExecutor):
    def prepare_config(self, config: GThinkerConfig) -> GThinkerConfig:
        if not config.check_protocols:
            config = config.with_updates(check_protocols=True)
        return config

    def drive(self, cluster: Cluster, request: JobRequest) -> None:
        from ..check import CheckedRuntime

        CheckedRuntime(seed=cluster.config.seed).run(cluster)


def _process_executor():
    # Imported lazily: the process backend pulls in multiprocessing and
    # shared_memory, which serial test runs never need.
    from .procruntime import ProcessExecutor

    return ProcessExecutor()


def _cluster_executor():
    # Imported lazily: the cluster backend pulls in sockets/selectors.
    from .clusterruntime import ClusterExecutor

    return ClusterExecutor()


register_runtime(
    "serial",
    SerialExecutor,
    RuntimeCapabilities(
        checkpointing=True, failure_injection=True,
        protocol_checking=True, resume=True, cancellation=True,
    ),
    replace=True,
)
register_runtime(
    "threaded",
    ThreadedExecutor,
    RuntimeCapabilities(protocol_checking=True, resume=True,
                        cancellation=True),
    replace=True,
)
register_runtime(
    "checked",
    CheckedExecutor,
    RuntimeCapabilities(protocol_checking=True, resume=True,
                        cancellation=True),
    replace=True,
)
register_runtime(
    "process",
    _process_executor,
    RuntimeCapabilities(
        checkpointing=True, failure_injection=True,
        protocol_checking=True, resume=True, cancellation=True,
    ),
    replace=True,
)
register_runtime(
    "cluster",
    _cluster_executor,
    # Honest capabilities: checkpointing, injected node kills with
    # global-rollback recovery, and shard resume all work (recovery by
    # respawn only in localhost spawn mode — attach mode raises with
    # resume guidance).  Protocol checking runs node-local like the
    # process runtime's.  Running-job cancellation is declined: a
    # cancelled multi-host job would strand remote attach-mode nodes
    # mid-epoch, so ``LocalJobHandle.cancel()`` on a running cluster
    # job returns False instead of half-killing the fleet.
    RuntimeCapabilities(
        checkpointing=True, failure_injection=True,
        protocol_checking=True, resume=True,
    ),
    replace=True,
)


def _dispatch(
    runtime: str,
    app_factory: Callable[[], Comper],
    graph: GraphSource,
    config: GThinkerConfig,
    checkpoint_path: Optional[str] = None,
    abort_after_rounds: Optional[int] = None,
    checkpoint: Optional[JobCheckpoint] = None,
    abort=None,
) -> JobResult:
    """The single dispatch path shared by run_job and resume_job."""
    spec = get_runtime(runtime)
    wanted = []
    if checkpoint_path is not None:
        wanted.append("checkpointing")
    if abort_after_rounds is not None or config.failure_plan is not None:
        wanted.append("failure_injection")
    if checkpoint is not None:
        wanted.append("resume")
    spec.require(*wanted)
    executor = spec.factory()
    return executor.execute(JobRequest(
        app_factory=app_factory,
        graph=graph,
        config=config,
        checkpoint_path=checkpoint_path,
        abort_after_rounds=abort_after_rounds,
        checkpoint=checkpoint,
        abort=abort,
    ))


def resolve_resume(
    checkpoint_path: str,
    config: Optional[GThinkerConfig],
    runtime: str,
) -> Tuple[JobCheckpoint, GThinkerConfig]:
    """Load a checkpoint shard and reconcile it with a caller config.

    The single resume path behind ``run_job(resume_from=...)``,
    ``Session.submit(resume_from=...)`` and ``resume_job``: validates
    the runtime name *before* touching the file, loads the shard, and
    either adopts its worker layout (``config=None``) or checks a
    caller-supplied config against it.  A ``num_workers`` mismatch
    raises ``ValueError`` here — early and uniformly, before any graph
    is loaded or worker process spawned (the process executor used to
    surface this late, as a :class:`~repro.core.errors.CheckpointError`
    after validation had already let the job through).
    """
    get_runtime(runtime)  # validate the name before touching the file
    ckpt = JobCheckpoint.load(checkpoint_path)
    if config is None:
        config = GThinkerConfig(
            num_workers=ckpt.num_workers,
            compers_per_worker=ckpt.compers_per_worker,
        )
    elif config.num_workers != ckpt.num_workers:
        raise ValueError(
            f"config.num_workers={config.num_workers} does not match the "
            f"checkpoint shard {checkpoint_path!r}, which was taken with "
            f"{ckpt.num_workers} workers; resume with num_workers="
            f"{ckpt.num_workers} or pass config=None to adopt the shard's "
            f"layout"
        )
    return ckpt, config


def run_job(
    app_factory: Callable[[], Comper],
    graph: GraphSource,
    config: Optional[GThinkerConfig] = None,
    runtime: str = "serial",
    checkpoint_path: Optional[str] = None,
    abort_after_rounds: Optional[int] = None,
    resume_from: Optional[str] = None,
) -> JobResult:
    """Run a G-thinker job to completion and return its result.

    A thin wrapper over a one-shot :class:`~repro.core.session.Session`:
    the graph is made resident, the job submitted, and its handle's
    ``result()`` returned — identical signature and behavior to the
    pre-Session entry point.  Use a Session directly to run several
    jobs against one resident graph.

    Parameters
    ----------
    app_factory:
        A zero-argument callable producing the user's
        :class:`~repro.core.api.Comper` (one instance per mining thread).
        The ``"process"`` runtime additionally requires it to be
        picklable (a class or :func:`functools.partial`, not a lambda).
    runtime:
        Any name in :func:`repro.core.runtime.available_runtimes`.
        Built-ins: ``"serial"`` (deterministic single thread; supports
        checkpointing and failure injection), ``"threaded"`` (real
        threads, paper-shaped concurrency, GIL-serialized), ``"checked"``
        (the seeded interleaving fuzzer from :mod:`repro.check`; forces
        protocol checkers on and perturbs step order from
        ``config.seed``), and ``"process"`` (worker processes with the
        graph in shared memory — real CPU parallelism).
    checkpoint_path:
        Where periodic checkpoints go when
        ``config.checkpoint_every_syncs > 0``.  Requires a runtime with
        the ``checkpointing`` capability (built-ins: serial and process;
        the process runtime checkpoints via its sync-barrier protocol).
    abort_after_rounds:
        Failure injection for fault-tolerance tests: abort after that
        many scheduler rounds (serial) or master sync sweeps (process).
        Requires the ``failure_injection`` capability (built-ins: serial
        and process); ``config.failure_plan`` — deterministic worker
        kills — additionally requires ``runtime="process"``.
    resume_from:
        Path of a checkpoint shard to seed the job from — recovery as a
        parameter rather than a separate entry point (``resume_job``
        delegates here).  ``config=None`` adopts the shard's worker
        layout; a caller config whose ``num_workers`` disagrees with
        the shard raises ``ValueError`` before anything is built.

    Raises
    ------
    UnknownRuntimeError
        ``runtime`` names no registered runtime.
    UnsupportedRuntimeFeature
        The runtime exists but does not support a requested feature.
    """
    from .session import Session

    with Session(graph, config=config, runtime=runtime) as session:
        handle = session.submit(
            app_factory,
            checkpoint_path=checkpoint_path,
            abort_after_rounds=abort_after_rounds,
            resume_from=resume_from,
        )
        return handle.result()


def resume_job(
    app_factory: Callable[[], Comper],
    graph: GraphSource,
    checkpoint_path: str,
    config: Optional[GThinkerConfig] = None,
    runtime: str = "serial",
    abort_after_rounds: Optional[int] = None,
) -> JobResult:
    """Recover from a checkpoint and run the remainder of the job.

    Shares :func:`run_job`'s registry dispatch: any runtime with the
    ``resume`` capability works (built-ins: serial, threaded, checked,
    process), and unsupported combinations raise the same
    :class:`~repro.core.errors.UnsupportedRuntimeFeature` run_job raises.
    Shards are runtime-portable: a shard written by a killed
    ``runtime="process"`` job resumes on the serial runtime and vice
    versa.  When ``config.checkpoint_every_syncs > 0`` the resumed job
    keeps checkpointing to the same ``checkpoint_path``.
    ``abort_after_rounds`` injects a failure mid-recovery for
    fault-tolerance tests (serial and process, as in run_job).

    Delegates to ``run_job(resume_from=checkpoint_path)`` — the two
    spellings share one checkpoint-load/config-default path
    (:func:`resolve_resume`) and produce identical results.
    """
    return run_job(
        app_factory, graph, config=config, runtime=runtime,
        abort_after_rounds=abort_after_rounds,
        resume_from=checkpoint_path,
    )
