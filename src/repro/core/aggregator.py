"""Worker-side aggregation service (paper §IV, Aggregator).

Each worker holds a *local partial*; the master periodically collects
partials, folds them into the global value, and republishes it to every
worker (the paper's aggregator threads synchronizing at a fixed
frequency).  Tasks read :meth:`AggregatorService.view` — the last synced
global combined with the not-yet-collected local partial — which for
monotone aggregates (current maximum clique) is the freshest available
pruning bound.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from .api import Aggregator

__all__ = ["AggregatorService", "GlobalAggregator"]


class AggregatorService:
    """One per worker; thread-safe."""

    def __init__(self, aggregator: Optional[Aggregator]) -> None:
        self._agg = aggregator
        self._lock = threading.Lock()
        self._local = aggregator.identity() if aggregator else None
        self._global = aggregator.identity() if aggregator else None

    @property
    def enabled(self) -> bool:
        return self._agg is not None

    def aggregate(self, value: Any) -> None:
        if self._agg is None:
            raise RuntimeError(
                "aggregate() called but the app's make_aggregator() returned None"
            )
        with self._lock:
            self._local = self._agg.combine(self._local, value)

    def take_partial(self) -> Any:
        """Master hook: swap the local partial out (reset to identity)."""
        if self._agg is None:
            return None
        with self._lock:
            partial, self._local = self._local, self._agg.identity()
            return partial

    def publish_global(self, value: Any) -> None:
        if self._agg is None:
            return
        with self._lock:
            self._global = value

    def view(self) -> Any:
        """Global-so-far combined with the local residue."""
        if self._agg is None:
            return None
        with self._lock:
            return self._agg.combine(self._global, self._local)


class GlobalAggregator:
    """Master-side fold of worker partials."""

    def __init__(self, aggregator: Optional[Aggregator]) -> None:
        self._agg = aggregator
        self._value = aggregator.identity() if aggregator else None

    @property
    def enabled(self) -> bool:
        return self._agg is not None

    def fold(self, partial: Any) -> None:
        if self._agg is not None:
            self._value = self._agg.combine(self._value, partial)

    @property
    def value(self) -> Any:
        return self._value

    def set_value(self, value: Any) -> None:
        """Checkpoint-restore hook."""
        self._value = value

    def sync(self, services) -> Any:
        """One synchronization round: collect partials, fold, republish."""
        if self._agg is None:
            return None
        for svc in services:
            self.fold(svc.take_partial())
        for svc in services:
            svc.publish_global(self._value)
        return self._value
