"""The master⇄worker control-plane protocol, shared across backends.

Both ``runtime="process"`` (pipes + ``multiprocessing`` queues, one
machine) and ``runtime="cluster"`` (TCP control channels + socket data
plane, many machines) drive the *same* protocol:

* periodic **sync sweeps** — global aggregate down, per-node status
  (task/queue occupancy, transport counters, progress, workload
  estimate, aggregator partial) up;
* Safra-style **double-snapshot termination**: two consecutive sweeps
  must observe every node drained, globally ``sum(sent) ==
  sum(received)``, and an unchanged progress counter;
* master-coordinated, workload-**proportional stealing** with ping-pong
  hysteresis;
* **sync-barrier checkpoints**: quiesce → drain the wire to a provably
  settled state → snapshot every node → resume with the folded global;
* bounded-restart **global rollback** recovery in :meth:`run`.

Two coordination modes, selected by ``GThinkerConfig.control_plane``:

* ``'sweep'`` (legacy, the oracle): the master drives a serial
  round-robin request-reply ``sync`` probe over every node each period
  and blocks on each reply — sweep cost is O(nodes) per round and
  includes every node's burst latency.
* ``'async'``: nodes *push* compact :class:`NodeStatus` deltas over the
  control channel when their state changes materially (and in reply to
  a fire-and-forget ``asweep`` aggregator broadcast); the master
  consumes them from a single multiplexed event drain
  (``_drain_events``) so per-round cost is O(active changes).  Steal
  plans are published as fire-and-forget ``dsteal`` commands — the
  ``B_task`` batch travels victim→thief directly over the data
  transport, removing the two master round-trips per steal — and
  termination is only *hinted* by the pushed table: the hint is always
  confirmed by two legacy synchronous sweeps (the same Safra double
  snapshot), so the termination proof is identical in both modes.
  Checkpoints keep the synchronous quiesce/settle barrier unchanged.

This module holds that protocol once, in
:class:`ControlPlaneMaster`, parameterised over a tiny plumbing surface
the backends implement (``num_nodes``, ``_send``, ``_recv``,
``_wait_for_wake``, ``_recover``) — and the matching node-side command
machine, :class:`NodeSession`, shared by the process worker loop and
the cluster node loop.  The wire representation of every command and
reply is identical across backends, which is what lets a checkpoint
shard taken under one runtime resume under another.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .aggregator import GlobalAggregator
from .checkpoint import JobCheckpoint, WorkerSnapshot, snapshot_worker
from .config import FailurePlanConfig, GThinkerConfig
from .errors import GThinkerError, JobAbortedError, WorkerProcessError
from .metrics import MetricsRegistry

__all__ = [
    "ENGINE_BURST_STEPS",
    "ControlPlaneMaster",
    "FailureInjector",
    "NodeSession",
    "NodeStatus",
    "NodeFinal",
]

#: Engine steps a node runs between control-plane/inbox polls.  Bounds
#: the extra latency of answering a sync or serving a pull at one burst
#: (engine steps end early when no engine has work); big enough that the
#: per-round polling overhead is noise next to the mining work.
ENGINE_BURST_STEPS = 32


@dataclass
class NodeStatus:
    """One node's answer to a sync command."""

    worker_id: int
    tasks_in_memory: int
    tasks_on_disk: int
    unspawned: int
    outgoing: int
    sent: int
    received: int
    progress: int
    workload: int
    partial: Any


@dataclass
class NodeFinal:
    """One node's end-of-job report."""

    worker_id: int
    outputs: List[Any]
    metrics: Dict[str, float]
    partial: Any


# ---------------------------------------------------------------------------
# Failure injection (node side)
# ---------------------------------------------------------------------------


class FailureInjector:
    """Kills this node process per its :class:`FailurePlanConfig`.

    Death is ``os._exit`` — no cleanup, no error report up the control
    plane — so the master observes exactly what a machine loss looks
    like.
    """

    def __init__(
        self,
        plan: Optional[FailurePlanConfig],
        worker_id: int,
        incarnation: int,
    ) -> None:
        self._plan = plan
        self._worker_id = worker_id
        self._counts: Dict[str, int] = {}
        self.active = (
            plan is not None
            and (incarnation == 0 or plan.rearm)
            and (plan.kill_worker is None or plan.kill_worker == worker_id)
        )
        # Incarnation perturbs the stream so a rearmed random plan does
        # not replay the same kill schedule after every recovery.
        self._rng = random.Random(
            ((plan.seed if plan else 0) << 8) ^ worker_id ^ (incarnation * 7919)
        )

    def fire(self, event: str) -> None:
        """Record one occurrence of ``event``; die if the plan says so."""
        if not self.active:
            return
        plan = self._plan
        if plan.when == "random":
            if event == "sync" and self._rng.random() < plan.probability:
                os._exit(plan.exit_code)
            return
        if event != plan.when:
            return
        count = self._counts.get(event, 0) + 1
        self._counts[event] = count
        if count == plan.at_count and (
            plan.probability >= 1.0 or self._rng.random() < plan.probability
        ):
            os._exit(plan.exit_code)

    def observe_round(self, worker) -> None:
        """Round-boundary triggers: mid-spawn cursor, non-empty L_file."""
        if not self.active:
            return
        when = self._plan.when
        if when == "spawn":
            if 0 < worker.spawn_cursor() < worker.num_local_vertices:
                self.fire("spawn")
        elif when == "spill":
            if len(worker.l_file) > 0:
                self.fire("spill")


# ---------------------------------------------------------------------------
# Node side: the command machine each backend's serve loop drives
# ---------------------------------------------------------------------------


class NodeSession:
    """One node's half of the control protocol, backend-agnostic.

    The backend's serve loop owns the transport-specific parts — how
    commands arrive, how replies travel back, how to block while idle —
    and delegates the rest here: :meth:`step` runs one scheduling round
    (an engine burst unless quiesced), :meth:`handle` executes one
    control command and returns the reply object to send, and
    :meth:`drained` is the idle predicate behind the unsolicited
    ``("wake", node_id)`` notification.
    """

    def __init__(
        self,
        worker,
        transport,
        injector: FailureInjector,
        metrics: MetricsRegistry,
        config: Optional[GThinkerConfig] = None,
    ) -> None:
        self.worker = worker
        self.transport = transport
        self.injector = injector
        self.metrics = metrics
        self.quiesced = False
        self.done = False
        self.async_mode = config is not None and config.control_plane == "async"
        # Push-based status state (async mode): deltas go out when the
        # signature changes materially, rate-limited to a fraction of
        # the sync period so a busy node cannot flood the control pipe.
        self._was_drained = False
        self._last_push_sig = None
        self._last_push_t = 0.0
        self._push_interval = (
            config.aggregator_sync_period_s / 4 if config is not None else 0.0
        )

    def step(self) -> bool:
        """One comm step plus (unless quiesced) a burst of engine steps.

        The burst amortizes the fixed cost of the caller's inbox/control
        polls over many cheap task iterations and lets parked tasks'
        requests accumulate into fewer, larger flush batches; it ends
        early the moment no engine makes progress, so pull latency only
        grows while there is local work to overlap it with.  While
        quiesced (checkpoint barrier) only the comm service steps: pulls
        keep being served and responses delivered, but no new work
        starts, so the wire drains to a provably empty state.
        """
        worker = self.worker
        worked = worker.comm.step()
        if self.quiesced:
            return worked
        for _ in range(ENGINE_BURST_STEPS):
            stepped = False
            for engine in worker.engines:
                stepped = engine.step() or stepped
            # GC and the failure injector keep per-step (not per-burst)
            # granularity: spill pressure must be relieved as it builds,
            # and injection triggers count scheduler rounds *observing*
            # a transient condition (mid-spawn cursor, fresh spill) that
            # can appear and clear within one burst.
            stepped = worker.gc_step() or stepped
            self.injector.observe_round(worker)
            worked = worked or stepped
            if not stepped:
                break
        return worked

    def drained(self) -> bool:
        """True when this node has nothing runnable and nothing buffered."""
        worker = self.worker
        return (
            not self.quiesced
            and worker.tasks_in_memory() == 0
            and len(worker.l_file) == 0
            and worker.unspawned_count() == 0
            and worker.comm.pending_outgoing() == 0
            and self.transport.pending_unflushed() == 0
        )

    def _build_status(self) -> NodeStatus:
        """Flush node-local state and build a fresh :class:`NodeStatus`.

        The serve loop is the process's only cache-mutating thread, so
        flushing here makes ``s_cache`` exact and the lock-acquisition
        metric current at every status report.
        """
        worker = self.worker
        transport = self.transport
        worker.flush_for_status()
        transport.flush_outgoing()
        status = NodeStatus(
            worker_id=worker.worker_id,
            tasks_in_memory=worker.tasks_in_memory(),
            tasks_on_disk=len(worker.l_file),
            unspawned=worker.unspawned_count(),
            outgoing=(worker.comm.pending_outgoing()
                      + transport.pending_unflushed()),
            sent=transport.sent_count,
            received=transport.received_count,
            progress=worker.progress.value,
            workload=worker.remaining_workload_estimate(),
            partial=worker.aggregator.take_partial(),
        )
        self._last_push_sig = self._status_signature()
        self._last_push_t = time.monotonic()
        return status

    def _status_signature(self):
        """Compact view of the state the master plans from.

        A push goes out only when this changes: the components are the
        drain predicate's inputs plus the workload estimate quantised to
        batch granularity (so per-task progress does not look material).
        """
        worker = self.worker
        batch = max(1, worker.config.task_batch_size)
        return (
            self.drained(),
            worker.tasks_in_memory() == 0,
            len(worker.l_file),
            worker.unspawned_count() == 0,
            worker.remaining_workload_estimate() // batch,
        )

    def pending_pushes(self) -> List[Any]:
        """Unsolicited messages the serve loop should send now.

        Sweep mode keeps the legacy behaviour — one ``("wake", id)`` on
        the busy→drained edge so the master runs its confirming sweep
        early.  Async mode sends a full status delta whenever the
        signature changed and either the drain edge fired or the
        rate-limit interval elapsed; the master folds the carried
        partial and updates its status table without ever probing.
        """
        drained = self.drained()
        edge = drained and not self._was_drained
        self._was_drained = drained
        if not self.async_mode:
            return [("wake", self.worker.worker_id)] if edge else []
        if self.quiesced:
            return []
        sig = self._status_signature()
        if sig == self._last_push_sig:
            return []
        if not edge and time.monotonic() - self._last_push_t < self._push_interval:
            return []
        return [("status", self._build_status())]

    def handle(self, cmd):
        """Execute one control command; returns the reply to send back.

        ``stop`` additionally sets :attr:`done` — the serve loop sends
        the :class:`NodeFinal` reply and exits.
        """
        from ..net.message import TaskBatchTransfer

        worker = self.worker
        transport = self.transport
        tag = cmd[0]
        if tag == "sync":
            # Injected death *before* the reply: the master is left
            # waiting mid-protocol, like a machine loss.
            self.injector.fire("sync")
            worker.aggregator.publish_global(cmd[1])
            return self._build_status()
        if tag == "asweep":
            # The async-mode aggregator broadcast: same wire effects as
            # "sync" (including the injector event, so the kill matrix
            # carries over), but the reply is tagged so the master's
            # multiplexed drain routes it like any other push.
            self.injector.fire("sync")
            worker.aggregator.publish_global(cmd[1])
            return ("status", self._build_status())
        if tag == "dsteal":
            # Master-bypass steal: ship the batch straight to the thief
            # over the data transport (no master round-trip), then push
            # a status so the master's plan table self-corrects.
            self.injector.fire("steal")
            _tag, thief_id, max_tasks = cmd
            payload_info = worker.l_file.take_payload()
            if payload_info is None:
                payload_info = worker.spawn_batch_payload(max_tasks)
            if payload_info is not None:
                payload, moved = payload_info
                transport.send(TaskBatchTransfer(
                    src=worker.worker_id, dst=thief_id,
                    payload=payload, num_tasks=moved,
                ))
                transport.flush_outgoing()
                self.metrics.add("steal:direct_batches")
                self.metrics.add("steal:batches")
                self.metrics.add("steal:tasks", moved)
            return ("status", self._build_status())
        if tag == "steal":
            self.injector.fire("steal")
            _tag, thief_id, max_tasks = cmd
            payload_info = worker.l_file.take_payload()
            if payload_info is None:
                payload_info = worker.spawn_batch_payload(max_tasks)
            moved = 0
            if payload_info is not None:
                payload, moved = payload_info
                transport.send(TaskBatchTransfer(
                    src=worker.worker_id, dst=thief_id,
                    payload=payload, num_tasks=moved,
                ))
                transport.flush_outgoing()
            return ("stolen", moved)
        if tag == "quiesce":
            self.quiesced = True
            return ("quiesced", worker.worker_id)
        if tag == "qstatus":
            transport.flush_outgoing()
            return (
                "qstatus", worker.worker_id,
                transport.sent_count, transport.received_count,
                worker.comm.pending_outgoing()
                + transport.pending_unflushed(),
            )
        if tag == "checkpoint":
            snap = snapshot_worker(worker)
            snap.partial = worker.aggregator.take_partial()
            snap.sent = transport.sent_count
            snap.received = transport.received_count
            return snap
        if tag == "resume":
            worker.aggregator.publish_global(cmd[1])
            self.quiesced = False
            return ("resumed", worker.worker_id)
        if tag == "stop":
            worker.flush_for_status()
            self.done = True
            return NodeFinal(
                worker_id=worker.worker_id,
                outputs=worker.outputs(),
                metrics=self.metrics.snapshot(),
                partial=worker.aggregator.take_partial(),
            )
        raise GThinkerError(f"unknown control command {tag!r}")


# ---------------------------------------------------------------------------
# Master side: the shared protocol driver
# ---------------------------------------------------------------------------


class ControlPlaneMaster:
    """Backend-agnostic master: syncs, steals, checkpoints, rollback.

    Subclasses provide the plumbing:

    * ``num_nodes`` — how many nodes are attached;
    * ``_send(node_id, cmd)`` — deliver one command, raising
      :class:`WorkerProcessError` on a dead node (``recoverable=True``
      for silent losses, ``False`` when the node reported an app error);
    * ``_recv(node_id, timeout=None)`` — one reply, same error contract,
      skipping unsolicited ``("wake", nid)`` notifications;
    * ``_wait_for_wake(timeout)`` — idle until a wake/timeout;
    * ``_recover()`` — tear the node set down and respawn it from
      ``self._last_checkpoint`` (bumping ``self._incarnation`` and the
      ``ft:recoveries`` metric).
    """

    def __init__(
        self,
        config: GThinkerConfig,
        app_factory,
        join_timeout_s: float,
        checkpoint_path: Optional[str] = None,
        abort_after_rounds: Optional[int] = None,
    ) -> None:
        self.config = config
        self.app_factory = app_factory
        self.join_timeout_s = join_timeout_s
        self.checkpoint_path = checkpoint_path
        self.abort_after_rounds = abort_after_rounds
        self.metrics = MetricsRegistry()
        self.global_aggregator = GlobalAggregator(app_factory().make_aggregator())
        #: Cooperative-cancellation token (``AbortToken`` or None), set
        #: by the executor before :meth:`run`.  Checked once per sweep —
        #: the sweep cadence is bounded by ``aggregator_sync_period_s``,
        #: so a cancel lands within roughly one sync period.
        self.abort = None
        self._incarnation = 0
        self._epoch = 0
        self._last_checkpoint: Optional[JobCheckpoint] = None
        self._deadline = float("inf")
        #: Set by :meth:`_note_oob` whenever an out-of-band message is
        #: consumed anywhere (a sweep's ``_recv``, a drain); the base
        #: :meth:`_wait_for_wake` returns immediately while it is set,
        #: so a wake that arrived mid-sweep is never slept through.
        self._pending_wake = False
        #: Async-mode pushed-status table (``None`` while inactive).
        self._status_table: Optional[List[Optional[NodeStatus]]] = None
        self._status_heard: Optional[List[float]] = None
        self._status_dirty = False
        self._last_steal_key = None

    # -- plumbing the backend must provide --------------------------------

    @property
    def num_nodes(self) -> int:
        raise NotImplementedError

    def _send(self, node_id: int, cmd) -> None:
        raise NotImplementedError

    def _recv(self, node_id: int, timeout: Optional[float] = None):
        raise NotImplementedError

    def _drain_events(self, timeout: float) -> None:
        """Block up to ``timeout`` for control traffic, then drain it all.

        The backend multiplexes every node's control channel (pipes via
        a selector wait, sockets via the channel's non-blocking drain),
        routing each message through :meth:`_note_oob` and raising
        :class:`WorkerProcessError` for error reports or dead nodes.
        """
        raise NotImplementedError

    def _recover(self) -> None:
        raise NotImplementedError

    # -- shared event handling --------------------------------------------

    def _note_oob(self, node_id: int, msg) -> bool:
        """Consume one out-of-band (unsolicited) control message.

        Returns True when ``msg`` was an OOB notification — a ``wake``
        or a pushed ``status`` — and False when it is a synchronous
        reply the caller was waiting for.  Pushed partials are folded
        here exactly once (the node's ``take_partial`` swapped them out,
        so they exist nowhere else) and then cleared before the status
        is stored, so a later re-read cannot double-fold.
        """
        if not (isinstance(msg, tuple) and msg):
            return False
        tag = msg[0]
        if tag == "wake":
            self._pending_wake = True
            if self._status_heard is not None:
                self._status_heard[node_id] = time.monotonic()
            return True
        if tag == "status":
            status = msg[1]
            self._pending_wake = True
            self.global_aggregator.fold(status.partial)
            status.partial = None
            self.metrics.add("control:status_pushes")
            if self._status_table is not None:
                self._status_table[status.worker_id] = status
                self._status_dirty = True
            if self._status_heard is not None:
                self._status_heard[node_id] = time.monotonic()
            return True
        return False

    def _wait_for_wake(self, timeout: float) -> bool:
        """Idle until a control message arrives or ``timeout`` elapses.

        Never sleeps past a pending message: if a wake was already
        consumed (e.g. during a sweep's ``_recv``) this returns without
        blocking at all, and otherwise the backend's ``_drain_events``
        wakes on the *first* message rather than a fixed interval.
        """
        if not self._pending_wake:
            self._drain_events(timeout)
        woke = self._pending_wake
        self._pending_wake = False
        return woke

    # -- protocol ---------------------------------------------------------

    def _sweep(self) -> List[NodeStatus]:
        t0 = time.perf_counter()
        value = self.global_aggregator.value
        for nid in range(self.num_nodes):
            self._send(nid, ("sync", value))
        statuses = []
        for nid in range(self.num_nodes):
            msg = self._recv(nid)
            if not isinstance(msg, NodeStatus):
                raise WorkerProcessError(
                    nid, f"expected a status report, got {type(msg).__name__}"
                )
            statuses.append(msg)
        for s in statuses:
            self.global_aggregator.fold(s.partial)
            s.partial = None
        self.metrics.add("time:master_sweep_s", time.perf_counter() - t0)
        return statuses

    def _plan_steals(self, statuses: List[NodeStatus]) -> None:
        """Workload-proportional steal plan with ping-pong hysteresis.

        Mirrors :meth:`repro.core.master.Master._plan_and_execute_steals`:
        the per-pair transfer is ``max(batch, gap // 4)`` capped at
        ``steal_batches`` batches (halving the gap without overshoot),
        and a pair that moved work one way in the previous sweep is not
        reversed in this one.
        """
        if not self.config.steal_enabled or len(statuses) < 2:
            return
        # Memoize on the (worker, workload) view: when nothing changed
        # since the last round the sorted plan is identical, so skip the
        # whole sort/pair loop and count the skip.
        key = tuple(sorted((s.worker_id, s.workload) for s in statuses))
        if key == self._last_steal_key:
            self.metrics.add("control:steal_plan_skipped")
            return
        self._last_steal_key = key
        estimates = [[s.workload, s.worker_id] for s in statuses]
        batch = self.config.task_batch_size
        cap = self.config.steal_batches * batch
        prev_pairs = getattr(self, "_last_steal_pairs", frozenset())
        pairs = set()
        for _ in range(self.config.steal_batches):
            estimates.sort()
            low, high = estimates[0], estimates[-1]
            gap = high[0] - low[0]
            if gap <= 2 * batch:
                break
            if (low[1], high[1]) in prev_pairs:
                break
            amount = max(batch, min(gap // 4, cap))
            self._send(high[1], ("steal", low[1], amount))
            reply = self._recv(high[1])
            moved = reply[1] if isinstance(reply, tuple) else 0
            if moved == 0:
                break
            pairs.add((high[1], low[1]))
            low[0] += moved
            high[0] -= moved
            self.metrics.add("steal:batches")
            self.metrics.add("steal:tasks", moved)
        self._last_steal_pairs = frozenset(pairs)

    def _checkpoint(self) -> None:
        """The sync-barrier checkpoint protocol.

        Quiesce every node, poll ``qstatus`` until the wire is *settled*
        — globally ``sent == received`` with zero buffered outgoing
        anywhere, which proves no message exists in any queue or socket
        — then snapshot every node and resume with the freshly folded
        global aggregate.
        """
        n = self.num_nodes
        for nid in range(n):
            self._send(nid, ("quiesce",))
        for nid in range(n):
            self._recv(nid)  # ("quiesced", nid)
        # Settle the wire: with engines paused, only in-transit pulls and
        # responses remain; they drain in finitely many comm steps.
        while True:
            replies = []
            for nid in range(n):
                self._send(nid, ("qstatus",))
            for nid in range(n):
                replies.append(self._recv(nid))
            sent = sum(r[2] for r in replies)
            received = sum(r[3] for r in replies)
            pending = sum(r[4] for r in replies)
            if sent == received and pending == 0:
                break
            if time.monotonic() > self._deadline:
                raise GThinkerError(
                    "checkpoint barrier did not settle before the job deadline"
                )
            time.sleep(0.001)
        snaps: List[WorkerSnapshot] = []
        for nid in range(n):
            self._send(nid, ("checkpoint",))
        for nid in range(n):
            msg = self._recv(nid)
            if not isinstance(msg, WorkerSnapshot):
                raise WorkerProcessError(
                    nid, f"expected a worker snapshot, got {type(msg).__name__}"
                )
            snaps.append(msg)
        for snap in snaps:
            # Fold the barrier partials now; clear them so a restore
            # cannot double-apply what is already in aggregator_global.
            self.global_aggregator.fold(snap.partial)
            snap.partial = None
        self._epoch += 1
        ckpt = JobCheckpoint(
            worker_snapshots=snaps,
            aggregator_global=self.global_aggregator.value,
            num_workers=n,
            compers_per_worker=self.config.compers_per_worker,
            epoch=self._epoch,
        )
        self._last_checkpoint = ckpt
        if self.checkpoint_path:
            ckpt.save(self.checkpoint_path)
        self.metrics.add("ft:checkpoints")
        value = self.global_aggregator.value
        for nid in range(n):
            self._send(nid, ("resume", value))
        for nid in range(n):
            self._recv(nid)  # ("resumed", nid)

    @staticmethod
    def _statuses_idle(statuses: List[NodeStatus]) -> bool:
        """The Safra snapshot predicate over one full status set."""
        return (
            all(
                s.tasks_in_memory == 0 and s.tasks_on_disk == 0
                and s.unspawned == 0 and s.outgoing == 0
                for s in statuses
            )
            and sum(s.sent for s in statuses)
            == sum(s.received for s in statuses)
        )

    def _finalize(self) -> List[NodeFinal]:
        finals: List[NodeFinal] = []
        for nid in range(self.num_nodes):
            self._send(nid, ("stop",))
        for nid in range(self.num_nodes):
            msg = self._recv(nid)
            if not isinstance(msg, NodeFinal):
                raise WorkerProcessError(
                    nid, f"expected a final report, got {type(msg).__name__}"
                )
            # The paper's closing rule: one more aggregation pass so data
            # from every task is folded before the job result is read.
            self.global_aggregator.fold(msg.partial)
            finals.append(msg)
        return finals

    def _run_to_completion(self) -> List[NodeFinal]:
        prev_idle = False
        prev_progress = -1
        sweeps = 0
        sweep_wait = self.config.idle_sleep_s
        self._pending_wake = False
        self._last_steal_key = None
        while True:
            if self.abort is not None:
                # The unwind reaches the executor's ``finally``, which
                # tears the node set down — quota is back within one
                # sweep of the cancel request.
                self.abort.raise_if_set()
            statuses = self._sweep()
            sweeps += 1
            self._plan_steals(statuses)
            every = self.config.checkpoint_every_syncs
            if every > 0 and sweeps % every == 0:
                self._checkpoint()
            if (self.abort_after_rounds is not None
                    and sweeps >= self.abort_after_rounds):
                # Checked after the checkpoint cadence so an aborted job
                # leaves a shard behind for resume_job.
                raise JobAbortedError(
                    f"job aborted after {sweeps} sync sweeps"
                )
            idle = self._statuses_idle(statuses)
            progress = sum(s.progress for s in statuses)
            if idle and prev_idle and progress == prev_progress:
                break
            prev_idle, prev_progress = idle, progress
            if time.monotonic() > self._deadline:
                raise GThinkerError(
                    f"job exceeded {self.join_timeout_s}s"
                )
            if idle:
                # First idle observation: run the confirming sweep right
                # away instead of burning a whole sync period — this is
                # most of the fixed-cadence latency on short jobs.
                sweep_wait = self.config.idle_sleep_s
                continue
            t0 = time.perf_counter()
            woke = self._wait_for_wake(sweep_wait)
            self.metrics.add("time:control_idle_s", time.perf_counter() - t0)
            if woke:
                sweep_wait = self.config.idle_sleep_s
            else:
                sweep_wait = min(sweep_wait * 2,
                                 self.config.aggregator_sync_period_s)

        return self._finalize()

    # -- async (event-driven) protocol ------------------------------------

    def _plan_steals_async(self) -> None:
        """Publish the steal plan as fire-and-forget ``dsteal`` commands.

        Same proportional math and hysteresis as :meth:`_plan_steals`,
        but the master never waits for a reply: the victim ships the
        batch straight to the thief over the data transport and pushes a
        corrective status.  The local table is updated optimistically so
        a stale view does not replan the same transfer every drain.
        """
        statuses = [s for s in self._status_table if s is not None]
        if not self.config.steal_enabled or len(statuses) < 2:
            return
        key = tuple(sorted((s.worker_id, s.workload) for s in statuses))
        if key == self._last_steal_key:
            self.metrics.add("control:steal_plan_skipped")
            return
        self._last_steal_key = key
        estimates = [[s.workload, s.worker_id] for s in statuses]
        batch = self.config.task_batch_size
        cap = self.config.steal_batches * batch
        prev_pairs = getattr(self, "_last_steal_pairs", frozenset())
        pairs = set()
        by_id = {s.worker_id: s for s in statuses}
        for _ in range(self.config.steal_batches):
            estimates.sort()
            low, high = estimates[0], estimates[-1]
            gap = high[0] - low[0]
            if gap <= 2 * batch:
                break
            if (low[1], high[1]) in prev_pairs:
                break
            amount = max(batch, min(gap // 4, cap))
            self._send(high[1], ("dsteal", low[1], amount))
            pairs.add((high[1], low[1]))
            # Optimistic accounting: assume the full amount moves.  The
            # victim's corrective status push overwrites this shortly;
            # meanwhile it keeps a stale table from replanning the same
            # pair.  The node counts steal:batches/tasks when the batch
            # actually moves, so master-side metrics stay honest.
            low[0] += amount
            high[0] -= amount
            by_id[high[1]].workload = max(0, by_id[high[1]].workload - amount)
        self._last_steal_pairs = frozenset(pairs)

    def _termination_hint(self) -> bool:
        """True when the pushed table *suggests* global quiescence.

        Only a hint: pushed statuses are from different instants, so the
        caller always confirms with two synchronous legacy sweeps (the
        authoritative Safra double snapshot) before stopping.
        """
        table = self._status_table
        if table is None or any(s is None for s in table):
            return False
        return self._statuses_idle([s for s in table if s is not None])

    def _run_async(self) -> List[NodeFinal]:
        """Event-driven master loop (``control_plane='async'``).

        Per iteration: drain pushed events (blocking only until the
        first message or the next broadcast deadline), replan steals
        when the table changed, broadcast the aggregate at the sync
        cadence without waiting for replies, and — only when the pushed
        table hints at quiescence — run the legacy double-sweep
        termination proof.  Checkpoints reuse the synchronous barrier
        verbatim.
        """
        period = self.config.aggregator_sync_period_s
        n = self.num_nodes
        self._status_table = [None] * n
        self._status_heard = [time.monotonic()] * n
        self._status_dirty = False
        self._pending_wake = False
        self._last_steal_key = None
        sweeps = 0
        next_sync = time.monotonic()  # first broadcast immediately
        try:
            while True:
                if self.abort is not None:
                    self.abort.raise_if_set()
                now = time.monotonic()
                if now > self._deadline:
                    raise GThinkerError(f"job exceeded {self.join_timeout_s}s")
                if now >= next_sync:
                    t0 = time.perf_counter()
                    value = self.global_aggregator.value
                    for nid in range(n):
                        self._send(nid, ("asweep", value))
                    self.metrics.add("time:master_sweep_s",
                                     time.perf_counter() - t0)
                    sweeps += 1
                    next_sync = now + period
                    every = self.config.checkpoint_every_syncs
                    if every > 0 and sweeps % every == 0:
                        self._checkpoint()
                    if (self.abort_after_rounds is not None
                            and sweeps >= self.abort_after_rounds):
                        raise JobAbortedError(
                            f"job aborted after {sweeps} sync sweeps"
                        )
                # Every asweep elicits a status reply, so a node that
                # stays silent for a full reply timeout is dead or hung.
                stale = time.monotonic() - self.config.control_reply_timeout_s
                for nid in range(n):
                    if self._status_heard[nid] < stale:
                        raise WorkerProcessError(
                            nid,
                            "no status heard for "
                            f"{self.config.control_reply_timeout_s}s",
                            recoverable=True,
                        )
                wait = max(0.0, min(next_sync - time.monotonic(), 0.25))
                t0 = time.perf_counter()
                self._drain_events(wait)
                self.metrics.add("time:control_idle_s",
                                 time.perf_counter() - t0)
                self._pending_wake = False
                if self._status_dirty:
                    self._status_dirty = False
                    self._plan_steals_async()
                    if self._termination_hint():
                        # Confirm with the authoritative synchronous
                        # double snapshot; pushed statuses interleaved
                        # with the sweep replies are routed by _recv.
                        first = self._sweep()
                        if self._statuses_idle(first):
                            second = self._sweep()
                            if (self._statuses_idle(second)
                                    and sum(s.progress for s in first)
                                    == sum(s.progress for s in second)):
                                break
                        self._last_steal_key = None
        finally:
            self._status_table = None
            self._status_heard = None
        return self._finalize()

    def run(self) -> List[NodeFinal]:
        """Drive the job to completion, recovering lost nodes."""
        self._deadline = time.monotonic() + self.join_timeout_s
        runner = (
            self._run_async
            if self.config.control_plane == "async"
            else self._run_to_completion
        )
        attempts = 0
        while True:
            try:
                return runner()
            except WorkerProcessError as exc:
                attempts += 1
                if not exc.recoverable or attempts > self.config.max_worker_restarts:
                    raise
                delay = self.config.worker_restart_backoff_s * (2 ** (attempts - 1))
                if delay > 0:
                    time.sleep(delay)
                self._recover()
