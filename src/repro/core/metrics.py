"""Instrumentation counters.

Every component increments a shared :class:`MetricsRegistry` so that the
benchmarks can report the paper's quantities: messages and bytes on the
wire, cache hits / misses / evictions / duplicate-request suppressions,
task spills and refills, steal batches, per-comper busy vs idle rounds,
and estimated peak memory per worker (modeled C++-footprint bytes, to
mirror the paper's "GB per machine" columns).
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

__all__ = [
    "MetricsRegistry",
    "WorkerMemoryModel",
    "CacheStats",
    "ControlPlaneStats",
    "WorkerMetrics",
    "MetricsAccessors",
]


class MetricsRegistry:
    """A thread-safe bag of named counters and gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = defaultdict(float)
        self._maxima: Dict[str, float] = defaultdict(float)

    # -- counters -------------------------------------------------------

    def add(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self._counters[name] += amount

    def get(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    # -- high-water marks ------------------------------------------------

    def record_max(self, name: str, value: float) -> None:
        with self._lock:
            if value > self._maxima[name]:
                self._maxima[name] = value

    def get_max(self, name: str) -> float:
        with self._lock:
            return self._maxima.get(name, 0.0)

    # -- export -----------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            out = dict(self._counters)
            out.update({f"max:{k}": v for k, v in self._maxima.items()})
            return out

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, float]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict.

        Registries hold a lock, so they cannot cross process boundaries;
        worker processes ship their snapshot and the parent reconstructs
        a registry here to feed :meth:`merge_from`.
        """
        reg = cls()
        for k, v in snapshot.items():
            if k.startswith("max:"):
                reg._maxima[k[len("max:"):]] = v
            else:
                reg._counters[k] = v
        return reg

    def merge_from(self, other: "MetricsRegistry") -> None:
        snap = other.snapshot()
        with self._lock:
            for k, v in snap.items():
                if k.startswith("max:"):
                    key = k[len("max:"):]
                    if v > self._maxima[key]:
                        self._maxima[key] = v
                else:
                    self._counters[k] += v

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetricsRegistry({self.snapshot()})"


@dataclass(frozen=True)
class CacheStats:
    """Typed view of the vertex-cache counters in a metrics snapshot."""

    hits: int
    misses_first: int
    misses_duplicate: int
    responses: int
    evictions: int

    @property
    def misses(self) -> int:
        return self.misses_first + self.misses_duplicate

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class ControlPlaneStats:
    """Typed view of the control-plane counters in a metrics snapshot.

    ``master_sweep_s`` is the master's time inside sweep/broadcast
    protocol work; ``control_idle_s`` its time blocked waiting for
    control events.  ``status_pushes`` counts node-pushed status deltas
    consumed by the master (async mode), ``direct_steal_batches`` the
    worker-to-worker ``dsteal`` batch transfers that bypassed the
    master, and ``steal_plan_skipped`` the memoized steal-plan rounds
    skipped because no workload estimate changed.
    """

    status_pushes: int
    direct_steal_batches: int
    steal_plan_skipped: int
    master_sweep_s: float
    control_idle_s: float


@dataclass(frozen=True)
class WorkerMetrics:
    """Typed view of one worker's slice of a metrics snapshot."""

    worker_id: int
    peak_memory_bytes: float
    #: Every metric keyed to this worker, with the worker prefix removed.
    raw: Dict[str, float]


class MetricsAccessors:
    """Typed accessors over a ``metrics`` snapshot dict.

    Mixed into :class:`~repro.core.job.JobResult` and
    :class:`~repro.sim.SimJobResult` so benchmarks read
    ``result.cache_stats.evictions`` or
    ``result.worker_metrics(0).peak_memory_bytes`` instead of
    string-poking ``"max:worker0:peak_memory_bytes"`` keys.
    """

    metrics: Dict[str, float]

    @property
    def kernel_backend(self) -> str:
        """Which kernels backend ran (``kernels:backend:<name>`` metric)."""
        for key in self.metrics:
            base = key[len("max:"):] if key.startswith("max:") else key
            if base.startswith("kernels:backend:"):
                return base.rsplit(":", 1)[-1]
        return "unknown"

    @property
    def cache_stats(self) -> CacheStats:
        m = self.metrics
        return CacheStats(
            hits=int(m.get("cache:hits", 0)),
            misses_first=int(m.get("cache:miss_first", 0)),
            misses_duplicate=int(m.get("cache:miss_duplicate", 0)),
            responses=int(m.get("cache:responses", 0)),
            evictions=int(m.get("cache:evictions", 0)),
        )

    @property
    def control_plane_stats(self) -> ControlPlaneStats:
        m = self.metrics
        return ControlPlaneStats(
            status_pushes=int(m.get("control:status_pushes", 0)),
            direct_steal_batches=int(m.get("steal:direct_batches", 0)),
            steal_plan_skipped=int(m.get("control:steal_plan_skipped", 0)),
            master_sweep_s=float(m.get("time:master_sweep_s", 0.0)),
            control_idle_s=float(m.get("time:control_idle_s", 0.0)),
        )

    def worker_metrics(self, worker_id: int) -> WorkerMetrics:
        prefix = f"worker{worker_id}:"
        raw: Dict[str, float] = {}
        for key, value in self.metrics.items():
            base = key[len("max:"):] if key.startswith("max:") else key
            if base.startswith(prefix):
                raw[base[len(prefix):]] = value
        return WorkerMetrics(
            worker_id=worker_id,
            peak_memory_bytes=self.metrics.get(
                f"max:{prefix}peak_memory_bytes", 0.0
            ),
            raw=raw,
        )


class WorkerMemoryModel:
    """Models a worker's resident memory the way the paper reports it.

    The paper's memory column is per-machine peak RSS of a C++ process.
    We track the modeled footprint of the pieces the paper discusses:
    local vertex table, remote vertex cache, and in-memory tasks
    (subgraphs).  Numbers are *modeled bytes* (8 B per adjacency entry
    plus per-object overheads), not Python ``sys.getsizeof`` — Python
    object overheads would drown the signal the experiments look for.
    """

    # Modeled per-process baseline.  The real system idles around tens
    # of MB, but at our down-scaled graph sizes that constant would
    # swamp the differences the experiments measure; 256 KB keeps the
    # relative shape (cache size, task pool, local table) visible.
    BASELINE_BYTES = 256 << 10

    def __init__(self, metrics: MetricsRegistry, worker_id: int) -> None:
        self._metrics = metrics
        self._worker_id = worker_id
        self._lock = threading.Lock()
        self._local_table = 0
        self._cache = 0
        self._tasks = 0

    def set_local_table(self, num_bytes: int) -> None:
        with self._lock:
            self._local_table = num_bytes
        self._commit()

    def add_local_table(self, num_bytes: int) -> None:
        """Lazy-loading path (``Worker.load_shared``): charge one faulted
        row at its trimmed size."""
        with self._lock:
            self._local_table += num_bytes
        self._commit()

    def add_cache(self, num_bytes: int) -> None:
        with self._lock:
            self._cache += num_bytes
        self._commit()

    def add_tasks(self, num_bytes: int) -> None:
        with self._lock:
            self._tasks += num_bytes
        self._commit()

    def current(self) -> int:
        with self._lock:
            return (
                self.BASELINE_BYTES + self._local_table + self._cache + self._tasks
            )

    def _commit(self) -> None:
        with self._lock:
            local = self._local_table
            current = self.BASELINE_BYTES + local + self._cache + self._tasks
        # local_table_bytes is a runtime-equivalence invariant: once every
        # owned row is resident it must agree across eager (load_rows)
        # and lazy (load_shared) loading for the same app and graph.
        self._metrics.record_max(
            f"worker{self._worker_id}:local_table_bytes", local
        )
        self._metrics.record_max(
            f"worker{self._worker_id}:peak_memory_bytes", current
        )
        self._metrics.record_max("peak_memory_bytes", current)
