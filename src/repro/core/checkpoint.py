"""Fault tolerance via checkpointing (paper §V-B, "Fault Tolerance").

A checkpoint captures, per worker: the task-spawning cursor over
``T_local``, every in-memory task (tasks in ``T_task`` and ``B_task``
are saved with their pull sets so they re-request vertices after
recovery — the cache restarts cold, exactly as the paper describes),
the spilled task files, the outputs emitted so far, and the global
aggregator value.

Checkpoints are written at sync points of the **serial runtime** (the
deterministic scheduler guarantees no task is mid-iteration there) and
at the sync-barrier checkpoints of the **process runtime** (workers
quiesce, the wire is drained until ``sent == received`` globally, then
every worker ships a :class:`WorkerSnapshot` — including its transport
counters, so the termination detector stays sound after a restore).
Recovery builds a fresh job seeded from the snapshot; both runtimes
read the same :class:`JobCheckpoint` format, so a shard written by one
can be resumed by the other.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .api import Task
from .errors import CheckpointError

__all__ = [
    "TaskSnapshot",
    "WorkerSnapshot",
    "JobCheckpoint",
    "snapshot_task",
    "restore_task",
    "snapshot_worker",
    "restore_worker",
]


@dataclass
class TaskSnapshot:
    """A picklable, lock-free image of a task at an iteration boundary."""

    adjacency: Dict[int, Tuple[int, ...]]
    labels: Dict[int, int]
    context: Any
    pulls: Tuple[int, ...]


def snapshot_task(task: Task) -> TaskSnapshot:
    """Capture a task; pending pulls (in flight or not yet issued) are
    recorded so recovery re-requests them.

    The pull set is the **union** of ``pulls_in_flight`` (the P(t) of
    the parked iteration) and ``pending_pulls()`` (pulls requested but
    not yet taken by the engine): a task can hold both at once, and
    restoring only one silently drops the other's vertices.
    """
    return TaskSnapshot(
        adjacency=dict(task.g.adjacency()),
        labels={v: task.g.label(v) for v in task.g.vertices() if task.g.label(v)},
        context=task.context,
        pulls=task.all_pending_pulls(),
    )


def restore_task(snap: TaskSnapshot) -> Task:
    task = Task(context=snap.context)
    for v, adj in snap.adjacency.items():
        task.g.add_vertex(v, adj, label=snap.labels.get(v, 0))
    for v in snap.pulls:
        task.pull(v)
    return task


@dataclass
class WorkerSnapshot:
    spawn_cursor: int
    tasks: List[TaskSnapshot] = field(default_factory=list)
    outputs: List[Any] = field(default_factory=list)
    #: Process runtime only: the worker's aggregator partial at the
    #: barrier (folded into :attr:`JobCheckpoint.aggregator_global` by
    #: the parent; never re-applied on restore).
    partial: Any = None
    #: Process runtime only: the worker's monotone transport counters at
    #: the barrier.  Globally ``sum(sent) == sum(received)`` (the
    #: barrier drains the wire first), so restoring them keeps the
    #: ``sent == received`` termination rule sound after recovery.
    sent: int = 0
    received: int = 0


@dataclass
class JobCheckpoint:
    worker_snapshots: List[WorkerSnapshot]
    aggregator_global: Any
    num_workers: int
    compers_per_worker: int
    #: Which sync-barrier checkpoint this is (1-based; monotone per
    #: job).  Lets tooling and recovery logs tell shards apart, and
    #: output dedup reason about which epoch a restored output list
    #: belongs to.
    epoch: int = 0

    def save(self, path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        try:
            with open(tmp, "wb") as f:
                pickle.dump(self, f, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
        except (OSError, pickle.PicklingError) as exc:
            raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc

    @classmethod
    def load(cls, path) -> "JobCheckpoint":
        try:
            with open(path, "rb") as f:
                ckpt = pickle.load(f)
        except (OSError, pickle.UnpicklingError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        if not isinstance(ckpt, cls):
            raise CheckpointError(f"{path} does not contain a JobCheckpoint")
        return ckpt


def snapshot_worker(worker) -> WorkerSnapshot:
    """Capture one (quiescent) worker's tasks, cursor and outputs.

    Tasks are collected from every container: ``Q_task`` (peeked),
    ``B_task`` (a non-destructive ``get_batch``/``put`` round-trip that
    preserves order), ``T_task`` (entries keep their pull sets so they
    re-request on restore), and the spilled batch files of ``L_file``
    (read without consuming).
    """
    tasks: List[TaskSnapshot] = []
    for engine in worker.engines:
        for t in list(engine.q_task._q):
            tasks.append(snapshot_task(t))
        # B_task and T_task entries: saved with pulls so they re-pull.
        for t in engine.b_task.get_batch(limit=10**9):
            tasks.append(snapshot_task(t))
            engine.b_task.put(t)  # non-destructive round-trip
        with engine.t_task._lock:
            for entry in engine.t_task._entries.values():
                tasks.append(snapshot_task(entry.task))
    for file_tasks in _peek_files(worker.l_file):
        tasks.extend(snapshot_task(t) for t in file_tasks)
    return WorkerSnapshot(
        spawn_cursor=worker.spawn_cursor(),
        tasks=tasks,
        outputs=worker.outputs(),
    )


def restore_worker(worker, snap: WorkerSnapshot) -> None:
    """Seed a freshly built worker from its snapshot.

    The cache restarts cold and every restored task re-requests its
    pulls (they were snapshotted as pull sets); outputs are replaced —
    not appended — so re-emission after a rollback cannot duplicate
    records from an earlier epoch.
    """
    worker.set_spawn_cursor(snap.spawn_cursor)
    worker.set_outputs(list(snap.outputs))
    for i, tsnap in enumerate(snap.tasks):
        engine = worker.engines[i % len(worker.engines)]
        engine.add_task(restore_task(tsnap))


def capture(cluster) -> JobCheckpoint:
    """Snapshot a (quiescent-at-sync-point) cluster."""
    return JobCheckpoint(
        worker_snapshots=[snapshot_worker(w) for w in cluster.workers],
        aggregator_global=cluster.master.global_aggregator.value,
        num_workers=len(cluster.workers),
        compers_per_worker=cluster.config.compers_per_worker,
    )


def _peek_files(l_file) -> List[List[Task]]:
    """Read every spilled batch without consuming it."""
    from .containers import deserialize_tasks

    out: List[List[Task]] = []
    with l_file._lock:
        paths = [p for p, _c in l_file._files]
    for p in paths:
        with open(p, "rb") as f:
            out.append(deserialize_tasks(f.read()))
    return out
