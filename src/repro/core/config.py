"""System configuration.

All of the paper's tunables live here with their paper defaults noted.
Sizes that assumed 64 GB Azure nodes are scaled down but keep the same
*ratios* (the quantities the paper's Table V sensitivity study varies).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

__all__ = [
    "GThinkerConfig",
    "FailurePlanConfig",
    "NetworkModel",
    "DiskModel",
    "MachineModel",
    "parse_host_port",
]


def parse_host_port(spec: str) -> Tuple[str, int]:
    """Parse a ``"host:port"`` string; raises ``ValueError`` with the
    offending value on malformed entries (shared by the config validator,
    the CLI and the TCP transport)."""
    if not isinstance(spec, str) or ":" not in spec:
        raise ValueError(f"expected 'host:port', got {spec!r}")
    host, _, port_s = spec.rpartition(":")
    if not host:
        raise ValueError(f"expected 'host:port', got {spec!r}")
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"non-numeric port in {spec!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in {spec!r}")
    return host, port


@dataclass(frozen=True)
class NetworkModel:
    """Simulated interconnect (used by the DES runtime only).

    Defaults approximate the paper's GigE testbed: ~100 microsecond
    round-trip latency, ~110 MB/s effective bandwidth per link.
    """

    latency_s: float = 100e-6
    bandwidth_bytes_per_s: float = 110e6

    def transfer_time(self, num_bytes: int) -> float:
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class DiskModel:
    """Simulated local managed disk (sequential IO for task spills)."""

    seek_s: float = 2e-3
    bandwidth_bytes_per_s: float = 150e6

    def io_time(self, num_bytes: int) -> float:
        return self.seek_s + num_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class MachineModel:
    """A simulated machine (paper: Azure D16S_V3 — 16 cores, 64 GB)."""

    num_cores: int = 16
    memory_bytes: int = 64 << 30
    cpu_speed: float = 1.0  # virtual-seconds per measured-second of compute


#: Events a :class:`FailurePlanConfig` can trigger on.
FAILURE_EVENTS = ("sync", "spawn", "spill", "steal", "random")


@dataclass(frozen=True)
class FailurePlanConfig:
    """Deterministic worker-kill schedule for ``runtime="process"``.

    Drives the §V-B fault-tolerance machinery from tests, the CI
    kill-worker matrix and the ``repro check`` fuzzer: the selected
    worker process exits hard (``os._exit``, no error report — exactly
    what a machine loss looks like to the parent) when its trigger
    fires.  Triggers:

    * ``when="sync"`` — on receiving the ``at_count``-th sync command
      (mid-protocol: the master is left waiting for the status reply);
    * ``when="spawn"`` — mid-spawn: the ``at_count``-th scheduler round
      observing a partially advanced spawn cursor;
    * ``when="spill"`` — post-spill: the ``at_count``-th round observing
      at least one spilled batch file in ``L_file``;
    * ``when="steal"`` — on receiving the ``at_count``-th steal command
      (a task batch may be mid-flight to the thief);
    * ``when="random"`` — seeded coin flip at every sync on every
      worker (``kill_worker=None`` means any worker may die).

    A plan is armed only in the job's first incarnation: once a worker
    set has been respawned after a failure the plan stays quiet, so one
    plan produces exactly one injected loss (set ``rearm=True`` to keep
    killing after recoveries, e.g. to exercise retry exhaustion).
    """

    kill_worker: Optional[int] = None
    when: str = "sync"
    at_count: int = 1
    probability: float = 1.0
    seed: int = 0
    rearm: bool = False
    exit_code: int = 43

    def __post_init__(self) -> None:
        if self.when not in FAILURE_EVENTS:
            raise ValueError(
                f"unknown failure event {self.when!r}; pick one of {FAILURE_EVENTS}"
            )
        if self.when != "random" and self.kill_worker is None:
            raise ValueError(
                f"FailurePlanConfig(when={self.when!r}) needs an explicit kill_worker"
            )
        if self.kill_worker is not None and self.kill_worker < 0:
            raise ValueError("kill_worker must be a worker id (>= 0)")
        if self.at_count < 1:
            raise ValueError("at_count must be >= 1")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")


@dataclass(frozen=True)
class GThinkerConfig:
    """Runtime parameters of a G-thinker job.

    Attributes
    ----------
    num_workers:
        Number of worker "machines".
    compers_per_worker:
        Mining threads per worker (paper: up to 16).
    task_batch_size:
        The paper's ``C``: refill trigger is ``|Q_task| <= C``, refill
        target ``2C``, queue capacity ``3C``, spill unit ``C``.
        Paper default 150.
    pending_threshold:
        The paper's ``D``: a comper stops popping new tasks when the
        number of tasks in ``T_task`` + ``B_task`` exceeds this.
        Paper default ``8C``.
    cache_capacity:
        The paper's ``c_cache``: target number of vertices in the remote
        vertex cache (Γ-tables + R-tables).  Paper default 2M on 64 GB
        machines; our default is sized for laptop-scale graphs.
    cache_overflow_alpha:
        The paper's ``α``: GC only acts (and compers only stop fetching
        new tasks) when ``s_cache > (1 + α) · c_cache``.  Paper default
        0.2.
    cache_buckets:
        The paper's ``k``: number of mutex-protected buckets in the
        vertex cache.  Paper default 10,000.
    cache_count_delta:
        The paper's ``δ``: per-thread local counter committed to the
        approximate cache size ``s_cache`` when it reaches ±δ.
        Paper default 10.
    decompose_threshold:
        The paper's ``τ``: a task whose subgraph exceeds this many
        vertices is decomposed into child tasks instead of mined
        serially.  Paper default 40,000; ours is sized to our graphs.
    aggregator_sync_period_s:
        How often worker aggregators synchronize (paper default 1 s);
        the serial runtime interprets this as "every N scheduler rounds".
    control_plane:
        How the process/cluster master coordinates its nodes.
        ``'sweep'`` (the default for one release, the legacy oracle) is
        the synchronous protocol: the master probes every node with a
        round-robin ``sync`` request-reply sweep each period, then plans
        and executes steals through itself.  ``'async'`` is event-driven:
        nodes push compact status deltas when their state changes
        materially, the master consumes them from a single multiplexed
        queue, steal *plans* are published as fire-and-forget
        ``dsteal`` commands whose ``B_task`` batch moves worker-to-worker
        over the data transport (no master round-trips), and the
        aggregator broadcast overlaps with compute — the master only
        quiesces into synchronous confirming sweeps when Safra
        double-snapshot termination is about to fire.  Answers, the
        checkpoint/rollback protocol and cancellation semantics are
        identical in both modes.  Ignored by the serial/threaded/DES
        runtimes (they have no remote control plane).
    steal_enabled / steal_batches:
        Master-coordinated work stealing: when the gap between the most-
        and least-loaded workers exceeds one batch, move up to
        ``steal_batches`` task batches per sync.  The per-pair transfer
        is workload-proportional (about a quarter of the victim/thief
        gap, at least one batch) with hysteresis: a pair that just moved
        work in one direction is not reversed on the next sweep, so
        near-balanced workers stop ping-ponging batches.
    idle_sleep_s / idle_backoff_max_s:
        Adaptive idle polling, shared by every runtime that polls: an
        idle comper/service/worker loop starts sleeping
        ``idle_sleep_s`` and doubles up to ``idle_backoff_max_s`` until
        work (or an explicit wake) arrives, then resets.  The threaded
        and process masters use the same backoff between sweeps instead
        of a fixed ``aggregator_sync_period_s`` sleep.
    bulk_cache_ops:
        Route the pull path through the bulk cache operations
        (``request_batch`` / ``insert_responses`` / ``release_batch``
        — one bucket-lock acquisition per touched bucket per batch) and
        the bulk ``CommService.queue_requests``.  Default on; switching
        it off restores the per-vertex OP1/OP2/OP3 calls, which is what
        the A/B lock-acquisition regression test measures against.
    response_chunk:
        Cap on vertices per :class:`~repro.net.message.ResponseBatch`
        so one huge request batch does not produce one giant message
        (MTU-ish chunking; default 4096).
    checkpoint_every_syncs:
        If > 0, write a checkpoint every this many progress syncs.  On
        ``runtime="process"`` each checkpoint is a sync-barrier protocol
        (quiesce, drain the wire, snapshot every worker, resume) and the
        resulting in-memory checkpoint doubles as the rollback point for
        worker-loss recovery even when no ``checkpoint_path`` is given.
    failure_plan:
        ``runtime="process"`` only: a :class:`FailurePlanConfig`
        describing a deterministic injected worker kill (worker *i* at
        sync *k*, or seeded random kills) for fault-tolerance tests and
        the CI kill matrix.
    max_worker_restarts:
        ``runtime="process"`` only: how many times the parent may
        respawn the worker set from the last checkpoint after losing a
        worker process before giving up with
        :class:`~repro.core.errors.WorkerProcessError` (0 = any worker
        loss is fatal, the pre-fault-tolerance behaviour).
    worker_restart_backoff_s:
        Base delay before a recovery respawn; doubles per consecutive
        restart (exponential backoff on the control plane).
    control_reply_timeout_s:
        How long the parent waits for a single control-plane reply from
        a worker process before treating it as hung (and, if restarts
        remain, recovering it).
    inline_iteration_limit:
        A task whose pulls keep resolving locally yields its comper after
        this many consecutive inline iterations (``None`` = the engine
        default, :attr:`~repro.core.comper.ComperEngine.INLINE_ITERATION_LIMIT`).
        Tests and the interleaving fuzzer lower it to force the
        yield/re-queue path.
    check_protocols:
        Enable the concurrency protocol checkers (``repro.check``): the
        task-lifecycle state machine, the cache-protocol wrapper and the
        single-writer guards.  Off by default (zero hot-path cost); the
        ``REPRO_CHECK=1`` environment variable enables it globally.
    kernel_backend:
        Which :mod:`repro.graph.kernels` implementation the mining inner
        loops run on: ``'numpy'`` (always available, the oracle),
        ``'numba'`` (compiled ``@njit`` kernels — requires numba, fails
        loudly if missing), or ``'auto'`` (numba when importable, else
        numpy, silently).  Selected once per job, in every worker
        process; the ``REPRO_KERNEL_BACKEND`` environment variable
        overrides this field, and the backend that actually ran is
        recorded under the ``kernels:backend:<name>`` metric.
    process_start_method:
        ``multiprocessing`` start method for ``runtime="process"``
        (``"fork"``, ``"spawn"`` or ``"forkserver"``); ``None`` picks
        ``fork`` where available (cheap worker startup), else ``spawn``.
    ipc_batch_max_messages:
        ``runtime="process"`` only: how many outgoing messages a
        worker's :class:`~repro.net.transport.ProcessTransport` buffers
        per destination before forcing a queue put (the IPC analogue of
        the paper's batched sending; buffers also drain every comm-service
        step).
    ipc_wire_format:
        ``runtime="process"`` only: how IPC batches are encoded.
        ``"binary"`` (default) uses the :mod:`repro.net.wire` frame
        format — adjacency lists cross the process boundary as raw
        ``int64`` buffers and are decoded as zero-copy ``np.frombuffer``
        views; ``"pickle"`` keeps the one-pickle-per-batch encoding
        (useful for A/B-measuring payload sizes).
    cluster_hosts:
        ``runtime="cluster"`` only: one ``"host:port"`` data-plane
        address per node (= per worker).  ``None`` (the default) selects
        single-command localhost mode — the executor spawns every node
        process itself on ephemeral loopback ports.  When given, the
        executor *attaches*: each node must already be running
        ``python -m repro node --node-id K --master ...`` and bind its
        listed address.
    cluster_bind:
        ``runtime="cluster"`` only: ``"host:port"`` the master's control
        channel listens on (port 0 = ephemeral, fine for localhost mode;
        attached multi-host runs need a concrete port the nodes can
        reach).
    cluster_connect_timeout_s:
        ``runtime="cluster"`` only: how long a node retries a data-plane
        connect to a peer before declaring the peer lost.
    checkpoint_dir / spill_dir:
        Filesystem locations (spill_dir defaults to a temp dir per job).
    seed:
        Seed for any tie-breaking randomness (kept for reproducibility;
        the engine itself is deterministic in the serial runtime).
    """

    num_workers: int = 2
    compers_per_worker: int = 2
    task_batch_size: int = 32
    pending_threshold: Optional[int] = None  # defaults to 8 * C
    cache_capacity: int = 50_000
    cache_overflow_alpha: float = 0.2
    cache_buckets: int = 256
    cache_count_delta: int = 10
    decompose_threshold: int = 64
    aggregator_sync_period_s: float = 0.05
    sync_every_rounds: int = 64
    control_plane: str = "sweep"
    steal_enabled: bool = True
    steal_batches: int = 4
    idle_sleep_s: float = 0.0005
    idle_backoff_max_s: float = 0.02
    bulk_cache_ops: bool = True
    response_chunk: int = 4096
    checkpoint_every_syncs: int = 0
    checkpoint_dir: Optional[str] = None
    failure_plan: Optional[FailurePlanConfig] = None
    max_worker_restarts: int = 3
    worker_restart_backoff_s: float = 0.05
    control_reply_timeout_s: float = 60.0
    spill_dir: Optional[str] = None
    inline_iteration_limit: Optional[int] = None
    check_protocols: bool = False
    kernel_backend: str = "auto"
    process_start_method: Optional[str] = None
    ipc_batch_max_messages: int = 64
    ipc_wire_format: str = "binary"
    cluster_hosts: Optional[Tuple[str, ...]] = None
    cluster_bind: str = "127.0.0.1:0"
    cluster_connect_timeout_s: float = 10.0
    seed: int = 0

    network: NetworkModel = field(default_factory=NetworkModel)
    disk: DiskModel = field(default_factory=DiskModel)
    machine: MachineModel = field(default_factory=MachineModel)

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.compers_per_worker < 1:
            raise ValueError("compers_per_worker must be >= 1")
        if self.task_batch_size < 1:
            raise ValueError("task_batch_size must be >= 1")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.cache_overflow_alpha < 0:
            raise ValueError("cache_overflow_alpha must be >= 0")
        if self.cache_buckets < 1:
            raise ValueError("cache_buckets must be >= 1")
        if self.cache_count_delta < 1:
            raise ValueError("cache_count_delta must be >= 1")
        if self.decompose_threshold < 2:
            raise ValueError("decompose_threshold must be >= 2")
        if self.sync_every_rounds < 1:
            # 0 would divide (serial sync cadence is `rounds % N`) and a
            # negative value would never trigger a sync at all.
            raise ValueError("sync_every_rounds must be >= 1")
        if self.steal_enabled and self.steal_batches < 1:
            raise ValueError(
                "steal_batches must be >= 1 when steal_enabled is True"
            )
        if self.aggregator_sync_period_s <= 0:
            raise ValueError("aggregator_sync_period_s must be > 0")
        if self.pending_threshold is not None and self.pending_threshold < 0:
            # 0 is meaningful (a comper with any pending task may not pop
            # more); negative thresholds would gate every pop forever.
            raise ValueError("pending_threshold must be >= 0 when given")
        if self.inline_iteration_limit is not None and self.inline_iteration_limit < 1:
            raise ValueError("inline_iteration_limit must be >= 1")
        if self.ipc_batch_max_messages < 1:
            raise ValueError("ipc_batch_max_messages must be >= 1")
        if self.idle_sleep_s <= 0:
            raise ValueError("idle_sleep_s must be > 0")
        if self.idle_backoff_max_s < self.idle_sleep_s:
            raise ValueError(
                f"idle_backoff_max_s ({self.idle_backoff_max_s}) must be >= "
                f"idle_sleep_s ({self.idle_sleep_s})"
            )
        if self.response_chunk < 1:
            raise ValueError("response_chunk must be >= 1")
        if self.control_plane not in ("sweep", "async"):
            raise ValueError(
                f"control_plane must be 'sweep' or 'async', "
                f"got {self.control_plane!r}"
            )
        if self.kernel_backend not in ("auto", "numpy", "numba"):
            raise ValueError(
                f"kernel_backend must be 'auto', 'numpy' or 'numba', "
                f"got {self.kernel_backend!r}"
            )
        if self.ipc_wire_format not in ("binary", "pickle"):
            raise ValueError(
                f"ipc_wire_format must be 'binary' or 'pickle', "
                f"got {self.ipc_wire_format!r}"
            )
        if self.process_start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(
                f"unknown process_start_method {self.process_start_method!r}"
            )
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")
        if self.worker_restart_backoff_s < 0:
            raise ValueError("worker_restart_backoff_s must be >= 0")
        if self.control_reply_timeout_s <= 0:
            raise ValueError("control_reply_timeout_s must be > 0")
        if self.cluster_hosts is not None:
            if not isinstance(self.cluster_hosts, tuple):
                object.__setattr__(self, "cluster_hosts",
                                   tuple(self.cluster_hosts))
            if len(self.cluster_hosts) != self.num_workers:
                raise ValueError(
                    f"cluster_hosts lists {len(self.cluster_hosts)} nodes "
                    f"but num_workers is {self.num_workers} (one host per "
                    f"worker)"
                )
            for spec in self.cluster_hosts:
                try:
                    parse_host_port(spec)
                except ValueError as exc:
                    raise ValueError(f"cluster_hosts: {exc}") from None
        try:
            parse_host_port(self.cluster_bind)
        except ValueError as exc:
            raise ValueError(f"cluster_bind: {exc}") from None
        if self.cluster_connect_timeout_s <= 0:
            raise ValueError("cluster_connect_timeout_s must be > 0")
        if self.failure_plan is not None and self.failure_plan.kill_worker is not None:
            if self.failure_plan.kill_worker >= self.num_workers:
                raise ValueError(
                    f"failure_plan.kill_worker {self.failure_plan.kill_worker} "
                    f"out of range for {self.num_workers} workers"
                )

    @property
    def check_enabled(self) -> bool:
        """Protocol checking, via config flag or ``REPRO_CHECK=1``."""
        if self.check_protocols:
            return True
        return os.environ.get("REPRO_CHECK", "") not in ("", "0")

    @property
    def effective_kernel_backend(self) -> str:
        """Kernel backend after the ``REPRO_KERNEL_BACKEND`` override."""
        env = os.environ.get("REPRO_KERNEL_BACKEND", "")
        return env if env else self.kernel_backend

    @property
    def effective_pending_threshold(self) -> int:
        """The paper's ``D`` (defaults to ``8C``)."""
        if self.pending_threshold is not None:
            return self.pending_threshold
        return 8 * self.task_batch_size

    @property
    def queue_capacity(self) -> int:
        """``Q_task`` holds at most ``3C`` tasks."""
        return 3 * self.task_batch_size

    @property
    def refill_target(self) -> int:
        """Refills aim to bring ``|Q_task|`` back to ``2C``."""
        return 2 * self.task_batch_size

    def with_updates(self, **kwargs) -> "GThinkerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
