"""System configuration.

All of the paper's tunables live here with their paper defaults noted.
Sizes that assumed 64 GB Azure nodes are scaled down but keep the same
*ratios* (the quantities the paper's Table V sensitivity study varies).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["GThinkerConfig", "NetworkModel", "DiskModel", "MachineModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Simulated interconnect (used by the DES runtime only).

    Defaults approximate the paper's GigE testbed: ~100 microsecond
    round-trip latency, ~110 MB/s effective bandwidth per link.
    """

    latency_s: float = 100e-6
    bandwidth_bytes_per_s: float = 110e6

    def transfer_time(self, num_bytes: int) -> float:
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class DiskModel:
    """Simulated local managed disk (sequential IO for task spills)."""

    seek_s: float = 2e-3
    bandwidth_bytes_per_s: float = 150e6

    def io_time(self, num_bytes: int) -> float:
        return self.seek_s + num_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class MachineModel:
    """A simulated machine (paper: Azure D16S_V3 — 16 cores, 64 GB)."""

    num_cores: int = 16
    memory_bytes: int = 64 << 30
    cpu_speed: float = 1.0  # virtual-seconds per measured-second of compute


@dataclass(frozen=True)
class GThinkerConfig:
    """Runtime parameters of a G-thinker job.

    Attributes
    ----------
    num_workers:
        Number of worker "machines".
    compers_per_worker:
        Mining threads per worker (paper: up to 16).
    task_batch_size:
        The paper's ``C``: refill trigger is ``|Q_task| <= C``, refill
        target ``2C``, queue capacity ``3C``, spill unit ``C``.
        Paper default 150.
    pending_threshold:
        The paper's ``D``: a comper stops popping new tasks when the
        number of tasks in ``T_task`` + ``B_task`` exceeds this.
        Paper default ``8C``.
    cache_capacity:
        The paper's ``c_cache``: target number of vertices in the remote
        vertex cache (Γ-tables + R-tables).  Paper default 2M on 64 GB
        machines; our default is sized for laptop-scale graphs.
    cache_overflow_alpha:
        The paper's ``α``: GC only acts (and compers only stop fetching
        new tasks) when ``s_cache > (1 + α) · c_cache``.  Paper default
        0.2.
    cache_buckets:
        The paper's ``k``: number of mutex-protected buckets in the
        vertex cache.  Paper default 10,000.
    cache_count_delta:
        The paper's ``δ``: per-thread local counter committed to the
        approximate cache size ``s_cache`` when it reaches ±δ.
        Paper default 10.
    decompose_threshold:
        The paper's ``τ``: a task whose subgraph exceeds this many
        vertices is decomposed into child tasks instead of mined
        serially.  Paper default 40,000; ours is sized to our graphs.
    aggregator_sync_period_s:
        How often worker aggregators synchronize (paper default 1 s);
        the serial runtime interprets this as "every N scheduler rounds".
    steal_enabled / steal_batches:
        Master-coordinated work stealing: when the gap between the most-
        and least-loaded workers exceeds one batch, move up to
        ``steal_batches`` task batches per sync.
    checkpoint_every_syncs:
        If > 0, write a checkpoint every this many progress syncs.
    inline_iteration_limit:
        A task whose pulls keep resolving locally yields its comper after
        this many consecutive inline iterations (``None`` = the engine
        default, :attr:`~repro.core.comper.ComperEngine.INLINE_ITERATION_LIMIT`).
        Tests and the interleaving fuzzer lower it to force the
        yield/re-queue path.
    check_protocols:
        Enable the concurrency protocol checkers (``repro.check``): the
        task-lifecycle state machine, the cache-protocol wrapper and the
        single-writer guards.  Off by default (zero hot-path cost); the
        ``REPRO_CHECK=1`` environment variable enables it globally.
    process_start_method:
        ``multiprocessing`` start method for ``runtime="process"``
        (``"fork"``, ``"spawn"`` or ``"forkserver"``); ``None`` picks
        ``fork`` where available (cheap worker startup), else ``spawn``.
    ipc_batch_max_messages:
        ``runtime="process"`` only: how many outgoing messages a
        worker's :class:`~repro.net.transport.ProcessTransport` buffers
        per destination before forcing a queue put (the IPC analogue of
        the paper's batched sending; buffers also drain every comm-service
        step).
    ipc_wire_format:
        ``runtime="process"`` only: how IPC batches are encoded.
        ``"binary"`` (default) uses the :mod:`repro.net.wire` frame
        format — adjacency lists cross the process boundary as raw
        ``int64`` buffers and are decoded as zero-copy ``np.frombuffer``
        views; ``"pickle"`` keeps the one-pickle-per-batch encoding
        (useful for A/B-measuring payload sizes).
    checkpoint_dir / spill_dir:
        Filesystem locations (spill_dir defaults to a temp dir per job).
    seed:
        Seed for any tie-breaking randomness (kept for reproducibility;
        the engine itself is deterministic in the serial runtime).
    """

    num_workers: int = 2
    compers_per_worker: int = 2
    task_batch_size: int = 32
    pending_threshold: Optional[int] = None  # defaults to 8 * C
    cache_capacity: int = 50_000
    cache_overflow_alpha: float = 0.2
    cache_buckets: int = 256
    cache_count_delta: int = 10
    decompose_threshold: int = 64
    aggregator_sync_period_s: float = 0.05
    sync_every_rounds: int = 64
    steal_enabled: bool = True
    steal_batches: int = 4
    checkpoint_every_syncs: int = 0
    checkpoint_dir: Optional[str] = None
    spill_dir: Optional[str] = None
    inline_iteration_limit: Optional[int] = None
    check_protocols: bool = False
    process_start_method: Optional[str] = None
    ipc_batch_max_messages: int = 64
    ipc_wire_format: str = "binary"
    seed: int = 0

    network: NetworkModel = field(default_factory=NetworkModel)
    disk: DiskModel = field(default_factory=DiskModel)
    machine: MachineModel = field(default_factory=MachineModel)

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.compers_per_worker < 1:
            raise ValueError("compers_per_worker must be >= 1")
        if self.task_batch_size < 1:
            raise ValueError("task_batch_size must be >= 1")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.cache_overflow_alpha < 0:
            raise ValueError("cache_overflow_alpha must be >= 0")
        if self.cache_buckets < 1:
            raise ValueError("cache_buckets must be >= 1")
        if self.decompose_threshold < 2:
            raise ValueError("decompose_threshold must be >= 2")
        if self.inline_iteration_limit is not None and self.inline_iteration_limit < 1:
            raise ValueError("inline_iteration_limit must be >= 1")
        if self.ipc_batch_max_messages < 1:
            raise ValueError("ipc_batch_max_messages must be >= 1")
        if self.ipc_wire_format not in ("binary", "pickle"):
            raise ValueError(
                f"ipc_wire_format must be 'binary' or 'pickle', "
                f"got {self.ipc_wire_format!r}"
            )
        if self.process_start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(
                f"unknown process_start_method {self.process_start_method!r}"
            )

    @property
    def check_enabled(self) -> bool:
        """Protocol checking, via config flag or ``REPRO_CHECK=1``."""
        if self.check_protocols:
            return True
        return os.environ.get("REPRO_CHECK", "") not in ("", "0")

    @property
    def effective_pending_threshold(self) -> int:
        """The paper's ``D`` (defaults to ``8C``)."""
        if self.pending_threshold is not None:
            return self.pending_threshold
        return 8 * self.task_batch_size

    @property
    def queue_capacity(self) -> int:
        """``Q_task`` holds at most ``3C`` tasks."""
        return 3 * self.task_batch_size

    @property
    def refill_target(self) -> int:
        """Refills aim to bring ``|Q_task|`` back to ``2C``."""
        return 2 * self.task_batch_size

    def with_updates(self, **kwargs) -> "GThinkerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
