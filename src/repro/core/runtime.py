"""Execution runtimes: deterministic serial and real-thread.

Both runtimes drive the same components (comm services, comper engines,
GC, master); only the interleaving differs:

* :class:`SerialRuntime` — steps every component round-robin in one
  thread.  Deterministic; the default for tests and the substrate the
  checkpointing support relies on (components are quiescent between
  steps).
* :class:`ThreadedRuntime` — one OS thread per comper plus one comm/GC
  thread per worker, mirroring the paper's thread layout.  Exercises the
  real lock protocols (bucketed cache, concurrent containers).  The GIL
  serializes Python bytecode, so this runtime demonstrates correctness
  under concurrency, not wall-clock speedup — the discrete-event runtime
  in :mod:`repro.sim` covers performance shape (see DESIGN.md).

A :class:`Cluster` is the bag of components a runtime drives.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional

from .config import GThinkerConfig
from .errors import GThinkerError, JobAbortedError
from .master import Master
from .metrics import MetricsRegistry
from .worker import Worker

__all__ = ["Cluster", "SerialRuntime", "ThreadedRuntime"]


@dataclass
class Cluster:
    workers: List[Worker]
    master: Master
    transport: object
    metrics: MetricsRegistry
    config: GThinkerConfig


class SerialRuntime:
    """Deterministic round-robin scheduler."""

    def __init__(self, max_rounds: int = 50_000_000) -> None:
        self.max_rounds = max_rounds

    def run(self, cluster: Cluster, abort_after_rounds: Optional[int] = None) -> None:
        """Drive the cluster to completion.

        ``abort_after_rounds`` injects a failure after that many rounds
        (fault-tolerance tests): the job stops with
        :class:`JobAbortedError` leaving the last checkpoint on disk.
        """
        cfg = cluster.config
        rounds = 0
        while True:
            worked = False
            for w in cluster.workers:
                worked = w.comm.step() or worked
                for engine in w.engines:
                    worked = engine.step() or worked
                worked = w.gc_step() or worked
            rounds += 1
            if abort_after_rounds is not None and rounds >= abort_after_rounds:
                raise JobAbortedError(f"injected failure after {rounds} rounds")
            if rounds % cfg.sync_every_rounds == 0 or not worked:
                if cluster.master.sync():
                    return
            if rounds > self.max_rounds:
                raise GThinkerError(
                    f"job did not terminate within {self.max_rounds} rounds "
                    f"(likely a livelock bug)"
                )


class ThreadedRuntime:
    """One thread per comper + one service thread per worker."""

    IDLE_SLEEP_S = 0.0005

    def __init__(self, join_timeout_s: float = 120.0) -> None:
        self.join_timeout_s = join_timeout_s

    def run(self, cluster: Cluster) -> None:
        stop = threading.Event()
        errors: List[BaseException] = []
        errors_lock = threading.Lock()

        def record_error(exc: BaseException) -> None:
            with errors_lock:
                errors.append(exc)
            stop.set()

        def comper_loop(engine) -> None:
            try:
                while not stop.is_set():
                    if not engine.step():
                        time.sleep(self.IDLE_SLEEP_S)
            except BaseException as exc:  # propagate to the main thread
                record_error(exc)

        def service_loop(worker) -> None:
            try:
                while not stop.is_set():
                    worked = worker.comm.step()
                    worked = worker.gc_step() or worked
                    if not worked:
                        time.sleep(self.IDLE_SLEEP_S)
            except BaseException as exc:
                record_error(exc)

        threads: List[threading.Thread] = []
        for w in cluster.workers:
            threads.append(
                threading.Thread(target=service_loop, args=(w,), daemon=True,
                                 name=f"svc-{w.worker_id}")
            )
            for engine in w.engines:
                threads.append(
                    threading.Thread(target=comper_loop, args=(engine,), daemon=True,
                                     name=f"comper-{engine.global_id}")
                )
        for t in threads:
            t.start()

        deadline = time.monotonic() + self.join_timeout_s
        try:
            while not stop.is_set():
                if cluster.master.sync():
                    break
                if time.monotonic() > deadline:
                    raise GThinkerError(
                        f"threaded job exceeded {self.join_timeout_s}s"
                    )
                time.sleep(cluster.config.aggregator_sync_period_s)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5.0)
        if errors:
            raise errors[0]
