"""Execution runtimes and the pluggable runtime registry.

Low-level cluster steppers (both drive the same components — comm
services, comper engines, GC, master — only the interleaving differs):

* :class:`SerialRuntime` — steps every component round-robin in one
  thread.  Deterministic; the default for tests and the substrate the
  checkpointing support relies on (components are quiescent between
  steps).  The process backend reaches the same quiescent state across
  process boundaries with its sync-barrier checkpoint protocol (see
  :mod:`repro.core.procruntime`), so checkpointing, failure injection
  and resume are available on both.
* :class:`ThreadedRuntime` — one OS thread per comper plus one comm/GC
  thread per worker, mirroring the paper's thread layout.  Exercises the
  real lock protocols (bucketed cache, concurrent containers).  The GIL
  serializes Python bytecode, so this runtime demonstrates correctness
  under concurrency, not wall-clock speedup — the process backend
  (``runtime="process"``) and the discrete-event runtime in
  :mod:`repro.sim` cover performance (see DESIGN.md).

A :class:`Cluster` is the bag of components a runtime drives.

Runtime registry
----------------

``run_job``/``resume_job`` resolve their ``runtime=`` string through the
:data:`RUNTIMES` registry rather than an if/elif ladder.  Each entry is a
:class:`RuntimeSpec`: a zero-argument ``factory`` producing an executor
object with ``execute(request: JobRequest) -> JobResult``, plus a
:class:`RuntimeCapabilities` declaration.  Unsupported runtime/feature
combinations fail uniformly with
:class:`~repro.core.errors.UnsupportedRuntimeFeature`; unknown names with
:class:`~repro.core.errors.UnknownRuntimeError`.

Register a custom runtime with::

    from repro.core.runtime import RuntimeCapabilities, register_runtime

    register_runtime("myrt", MyRuntimeExecutor,
                     RuntimeCapabilities(resume=True))
    run_job(app, graph, config, runtime="myrt")
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from .config import GThinkerConfig
from .errors import (
    GThinkerError,
    JobAbortedError,
    JobCancelledError,
    UnknownRuntimeError,
    UnsupportedRuntimeFeature,
)
from .master import Master
from .metrics import MetricsRegistry
from .worker import Worker

__all__ = [
    "AbortToken",
    "Cluster",
    "SerialRuntime",
    "ThreadedRuntime",
    "JobRequest",
    "RuntimeCapabilities",
    "RuntimeSpec",
    "RUNTIMES",
    "register_runtime",
    "unregister_runtime",
    "get_runtime",
    "available_runtimes",
    "capability_matrix",
]


@dataclass
class Cluster:
    workers: List[Worker]
    master: Master
    transport: object
    metrics: MetricsRegistry
    config: GThinkerConfig
    #: Root directory the workers spill task batches under.  When the
    #: job created it (no ``config.spill_dir``), ``owns_spill_root`` is
    #: True and teardown removes the whole tree.
    spill_root: Optional[Path] = None
    owns_spill_root: bool = False


class AbortToken:
    """Cooperative cancellation signal for one running job.

    The session sets it from :meth:`LocalJobHandle.cancel`; the control
    plane polls it at sync-barrier/steal-sweep boundaries (the same
    cadence the master already owns) and unwinds the job with
    :class:`~repro.core.errors.JobCancelledError`.  Cancellation is
    therefore *cooperative*: a job stops within one sync round, never
    mid-iteration, so worker teardown always runs from a consistent
    scheduler state.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def set(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()

    def raise_if_set(self) -> None:
        """Unwind with :class:`JobCancelledError` if cancellation was requested."""
        if self._event.is_set():
            raise JobCancelledError("job cancelled at a sync boundary")


# ---------------------------------------------------------------------------
# Runtime registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RuntimeCapabilities:
    """What a runtime supports; requests outside this set are rejected.

    Every boolean field doubles as a *feature name* accepted by
    :meth:`RuntimeSpec.require`.
    """

    checkpointing: bool = False
    failure_injection: bool = False
    protocol_checking: bool = True
    resume: bool = False
    #: Running jobs honor an :class:`AbortToken` at sync boundaries.
    cancellation: bool = False

    def feature_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(self))


@dataclass
class JobRequest:
    """Everything an executor needs to run one job to completion."""

    app_factory: Callable[[], Any]
    graph: Any
    config: GThinkerConfig
    checkpoint_path: Optional[str] = None
    abort_after_rounds: Optional[int] = None
    #: A loaded :class:`~repro.core.checkpoint.JobCheckpoint` when
    #: resuming, else None.
    checkpoint: Any = None
    #: Cooperative-cancellation token (an :class:`AbortToken`), or None
    #: when the caller never cancels / the runtime declines cancellation.
    abort: Any = None


@dataclass(frozen=True)
class RuntimeSpec:
    """One registry entry: name, executor factory, capabilities."""

    name: str
    factory: Callable[[], Any]
    capabilities: RuntimeCapabilities = field(default_factory=RuntimeCapabilities)

    def require(self, *features: str) -> None:
        """Raise unless every named feature is in the capabilities."""
        unknown = [f for f in features if not hasattr(self.capabilities, f)]
        if unknown:
            raise UnsupportedRuntimeFeature(
                f"unknown runtime feature(s) {unknown!r}; known features: "
                f"{list(self.capabilities.feature_names())}"
            )
        missing = [f for f in features if not getattr(self.capabilities, f)]
        if missing:
            raise UnsupportedRuntimeFeature(
                f"runtime {self.name!r} does not support: {', '.join(missing)} "
                f"(capabilities: {self.capabilities}); pick a runtime whose "
                f"capabilities include the feature, or register one"
            )


#: The global registry.  The four built-ins (serial, threaded, checked,
#: process) are registered by :mod:`repro.core.job` on import.
RUNTIMES: Dict[str, RuntimeSpec] = {}


def register_runtime(
    name: str,
    factory: Callable[[], Any],
    capabilities: Optional[RuntimeCapabilities] = None,
    replace: bool = False,
) -> RuntimeSpec:
    """Register an executor under ``name``.

    ``factory`` takes no arguments and returns an object with
    ``execute(request: JobRequest) -> JobResult``.  Pass ``replace=True``
    to overwrite an existing entry (the built-ins use it so repeated
    imports stay idempotent).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"runtime name must be a non-empty string, got {name!r}")
    if name in RUNTIMES and not replace:
        raise ValueError(
            f"runtime {name!r} is already registered; pass replace=True to override"
        )
    spec = RuntimeSpec(
        name=name,
        factory=factory,
        capabilities=capabilities or RuntimeCapabilities(),
    )
    RUNTIMES[name] = spec
    return spec


def unregister_runtime(name: str) -> None:
    """Remove a registered runtime (mostly for tests)."""
    RUNTIMES.pop(name, None)


def _ensure_builtin_runtimes() -> None:
    # The built-ins are registered as a side effect of importing the job
    # module; a function-level import avoids the cycle (job imports this
    # module at its top level).
    if "serial" not in RUNTIMES:
        from . import job  # noqa: F401


def get_runtime(name: str) -> RuntimeSpec:
    """Resolve a runtime name; raises :class:`UnknownRuntimeError`."""
    _ensure_builtin_runtimes()
    spec = RUNTIMES.get(name)
    if spec is None:
        raise UnknownRuntimeError(
            f"unknown runtime {name!r}; registered runtimes: "
            f"{sorted(RUNTIMES)} (register custom runtimes with "
            f"repro.core.runtime.register_runtime)"
        )
    return spec


def available_runtimes() -> Tuple[str, ...]:
    """Sorted names of every registered runtime."""
    _ensure_builtin_runtimes()
    return tuple(sorted(RUNTIMES))


def capability_matrix() -> Dict[str, Dict[str, bool]]:
    """``{runtime: {feature: supported}}`` for docs and error messages."""
    _ensure_builtin_runtimes()
    return {
        name: {
            f: getattr(spec.capabilities, f)
            for f in spec.capabilities.feature_names()
        }
        for name, spec in sorted(RUNTIMES.items())
    }


class SerialRuntime:
    """Deterministic round-robin scheduler."""

    def __init__(self, max_rounds: int = 50_000_000) -> None:
        self.max_rounds = max_rounds

    def run(self, cluster: Cluster, abort_after_rounds: Optional[int] = None) -> None:
        """Drive the cluster to completion.

        ``abort_after_rounds`` injects a failure after that many rounds
        (fault-tolerance tests): the job stops with
        :class:`JobAbortedError` leaving the last checkpoint on disk.
        """
        cfg = cluster.config
        rounds = 0
        while True:
            worked = False
            for w in cluster.workers:
                worked = w.comm.step() or worked
                for engine in w.engines:
                    worked = engine.step() or worked
                worked = w.gc_step() or worked
            rounds += 1
            if abort_after_rounds is not None and rounds >= abort_after_rounds:
                raise JobAbortedError(f"injected failure after {rounds} rounds")
            if rounds % cfg.sync_every_rounds == 0 or not worked:
                if cluster.master.sync():
                    return
            if rounds > self.max_rounds:
                raise GThinkerError(
                    f"job did not terminate within {self.max_rounds} rounds "
                    f"(likely a livelock bug)"
                )


class ThreadedRuntime:
    """One thread per comper + one service thread per worker.

    Idle loops sleep adaptively: starting at ``config.idle_sleep_s`` and
    doubling up to ``config.idle_backoff_max_s`` while nothing happens,
    resetting on work.  The master sweep is driven the same way — it
    backs off towards ``aggregator_sync_period_s`` between sweeps, but a
    service thread observing its worker fully drained sets a wake event
    so the termination-detecting sweeps run immediately instead of a
    sync period later.
    """

    def __init__(self, join_timeout_s: float = 120.0) -> None:
        self.join_timeout_s = join_timeout_s

    def run(self, cluster: Cluster) -> None:
        cfg = cluster.config
        stop = threading.Event()
        wake = threading.Event()
        errors: List[BaseException] = []
        errors_lock = threading.Lock()

        def record_error(exc: BaseException) -> None:
            with errors_lock:
                errors.append(exc)
            stop.set()
            wake.set()

        def comper_loop(engine) -> None:
            try:
                backoff = cfg.idle_sleep_s
                while not stop.is_set():
                    if engine.step():
                        backoff = cfg.idle_sleep_s
                    else:
                        engine.worker.cache.flush_local_counter()
                        time.sleep(backoff)
                        backoff = min(backoff * 2, cfg.idle_backoff_max_s)
            except BaseException as exc:  # propagate to the main thread
                record_error(exc)

        def service_loop(worker) -> None:
            try:
                backoff = cfg.idle_sleep_s
                was_drained = False
                while not stop.is_set():
                    worked = worker.comm.step()
                    worked = worker.gc_step() or worked
                    if worked:
                        backoff = cfg.idle_sleep_s
                        was_drained = False
                        continue
                    drained = (
                        worker.tasks_in_memory() == 0
                        and len(worker.l_file) == 0
                        and worker.unspawned_count() == 0
                        and worker.comm.pending_outgoing() == 0
                    )
                    if drained and not was_drained:
                        # Locally out of work: nudge the master so the
                        # two termination sweeps run now, not after the
                        # sync period elapses.
                        wake.set()
                    was_drained = drained
                    time.sleep(backoff)
                    backoff = min(backoff * 2, cfg.idle_backoff_max_s)
            except BaseException as exc:
                record_error(exc)

        threads: List[threading.Thread] = []
        for w in cluster.workers:
            threads.append(
                threading.Thread(target=service_loop, args=(w,), daemon=True,
                                 name=f"svc-{w.worker_id}")
            )
            for engine in w.engines:
                threads.append(
                    threading.Thread(target=comper_loop, args=(engine,), daemon=True,
                                     name=f"comper-{engine.global_id}")
                )
        for t in threads:
            t.start()

        deadline = time.monotonic() + self.join_timeout_s
        sweep_wait = cfg.idle_sleep_s
        try:
            while not stop.is_set():
                if cluster.master.sync():
                    break
                if time.monotonic() > deadline:
                    raise GThinkerError(
                        f"threaded job exceeded {self.join_timeout_s}s"
                    )
                if wake.wait(timeout=sweep_wait):
                    wake.clear()
                    sweep_wait = cfg.idle_sleep_s
                else:
                    sweep_wait = min(sweep_wait * 2,
                                     cfg.aggregator_sync_period_s)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5.0)
        if errors:
            raise errors[0]
