"""The highly-concurrent remote-vertex cache ``T_cache`` (paper §V-A, Fig. 6).

``T_cache`` is an array of ``k`` buckets, each guarded by its own mutex
so operations on vertices hashed to different buckets proceed in
parallel.  Each bucket holds three tables:

* **Γ-table** — cached vertices ``(v, Γ(v))`` with a ``lock_count(v)``
  of tasks currently using ``v``;
* **Z-table** — the subset of Γ-table entries with ``lock_count == 0``
  (safe to evict; lets GC scan only evictables while holding the lock);
* **R-table** — vertices requested but not yet received, each with the
  id list of waiting tasks (``lock_count`` is that list's length plus
  any extra holds).

The four atomic operations:

* **OP1** :meth:`VertexCache.request` — a comper asks for ``Γ(v)``;
* **OP2** :meth:`VertexCache.insert_response` — the receiving thread
  moves ``v`` from R-table to Γ-table, transferring its lock count;
* **OP3** :meth:`VertexCache.release` — a task releases ``v`` after an
  iteration; at zero the vertex enters the Z-table;
* **OP4** :meth:`VertexCache.evict` — GC removes Z-table entries,
  round-robin over buckets, until the overflow is cleared.

The cache size ``s_cache`` counts Γ-table plus R-table entries and is
maintained *approximately*: each thread accumulates a local delta and
commits it when it reaches ±δ (paper default δ=10), bounding contention
on the shared counter while keeping the estimation error below
``n_threads · δ``.

The bulk entry points :meth:`VertexCache.request_batch`,
:meth:`VertexCache.insert_responses` and :meth:`VertexCache.release_batch`
apply a whole batch of OP1/OP2/OP3 operations while taking each touched
bucket's mutex **once per batch** instead of once per vertex.  They are
observationally equivalent to the per-vertex sequence in batch order
(same outcomes, same lock counts, same Z-table membership, same
``s_cache``); only the number of mutex acquisitions differs, which the
``cache:bucket_lock_acquisitions`` metric makes visible.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..graph import kernels
from .errors import CacheProtocolError
from .metrics import MetricsRegistry

__all__ = [
    "VertexCache",
    "CachedVertex",
    "RequestOutcome",
    "BatchRequestOutcome",
]

#: Modeled per-entry header cost: the CachedVertex record, the Γ-table
#: slot and the ndarray object header a C++ implementation would also
#: pay in some form.  The old ``32`` ignored all of that and undercounted.
_ENTRY_HEADER_BYTES = 64


@dataclass
class CachedVertex:
    """A Γ-table entry.

    ``adj`` is a sorted read-only int64 ndarray — an owned array for
    remote vertices materialized from a wire response, or a zero-copy
    view into the local ``SharedCSR`` partition when the runtime caches
    locally-owned rows.  Legacy tuple adjacency is still accepted.
    """

    vid: int
    label: int
    adj: Union[np.ndarray, Sequence[int]]
    lock_count: int = 0

    def memory_estimate_bytes(self) -> int:
        adj = self.adj
        if isinstance(adj, np.ndarray):
            return _ENTRY_HEADER_BYTES + adj.nbytes
        return _ENTRY_HEADER_BYTES + 8 * len(adj)


@dataclass
class _PendingRequest:
    """An R-table entry: tasks waiting for the response."""

    waiting_task_ids: List[int] = field(default_factory=list)

    @property
    def lock_count(self) -> int:
        return len(self.waiting_task_ids)


class RequestOutcome:
    """Result of OP1."""

    HIT = "hit"                    # Γ(v) available; entry returned, lock taken
    MISS_SEND = "miss_send"        # first request: caller must send it
    MISS_DUPLICATE = "miss_dup"    # already requested by another task: wait

    __slots__ = ("status", "entry")

    def __init__(self, status: str, entry: Optional[CachedVertex] = None) -> None:
        self.status = status
        self.entry = entry


class BatchRequestOutcome:
    """Aggregate result of a :meth:`VertexCache.request_batch` (bulk OP1).

    Equivalent to folding the per-vertex :class:`RequestOutcome` stream:
    ``hits`` counts HIT outcomes (each took one lock, exactly as the
    per-vertex op would), ``to_send`` lists the MISS_SEND vertices in
    batch order (the caller must queue a network request for each), and
    ``duplicates`` counts suppressed MISS_DUPLICATE outcomes.
    """

    __slots__ = ("hits", "to_send", "duplicates")

    def __init__(self, hits: int, to_send: List[int], duplicates: int) -> None:
        self.hits = hits
        self.to_send = to_send
        self.duplicates = duplicates


class _Bucket:
    __slots__ = ("lock", "gamma", "zero", "requests", "acquisitions")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.gamma: Dict[int, CachedVertex] = {}
        self.zero: Set[int] = set()
        self.requests: Dict[int, _PendingRequest] = {}
        #: Mutex acquisitions by OP1-OP4/get_locked (bulk ops count one
        #: per touched bucket).  Mutated only while ``lock`` is held, so
        #: the count is exact without any extra synchronization.
        self.acquisitions = 0


class VertexCache:
    """The ``T_cache`` structure shared by all compers of one worker."""

    def __init__(
        self,
        num_buckets: int,
        capacity: int,
        overflow_alpha: float,
        count_delta: int = 10,
        metrics: Optional[MetricsRegistry] = None,
        memory_model=None,
    ) -> None:
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self._buckets = [_Bucket() for _ in range(num_buckets)]
        self._num_buckets = num_buckets
        self.capacity = capacity
        self.overflow_alpha = overflow_alpha
        self._count_delta = max(1, count_delta)
        self._metrics = metrics or MetricsRegistry()
        self._memory_model = memory_model

        # Approximate size counter s_cache with per-thread local deltas.
        self._s_cache = 0
        self._s_cache_lock = threading.Lock()
        self._local = threading.local()

        # GC round-robin cursor over buckets.  Guarded by _gc_lock: one
        # service thread calls evict() today, but the cursor must not
        # silently corrupt if a future change runs GC concurrently.
        self._gc_cursor = 0
        self._gc_lock = threading.Lock()

    # -- bucket addressing ------------------------------------------------

    def _bucket(self, v: int) -> _Bucket:
        return self._buckets[v % self._num_buckets]

    # -- approximate size counter ------------------------------------------

    def _local_delta(self) -> int:
        return getattr(self._local, "delta", 0)

    def _bump(self, amount: int) -> None:
        delta = self._local_delta() + amount
        if abs(delta) >= self._count_delta:
            with self._s_cache_lock:
                self._s_cache += delta
            delta = 0
        self._local.delta = delta

    def flush_local_counter(self) -> None:
        """Commit this thread's pending delta (call when a thread parks)."""
        delta = self._local_delta()
        if delta:
            with self._s_cache_lock:
                self._s_cache += delta
            self._local.delta = 0

    @property
    def size_estimate(self) -> int:
        """The approximate ``s_cache`` (committed part only)."""
        with self._s_cache_lock:
            return self._s_cache

    def exact_size(self) -> int:
        """Exact |Γ-tables| + |R-tables| (test/diagnostic use; takes all locks)."""
        total = 0
        for b in self._buckets:
            with b.lock:
                total += len(b.gamma) + len(b.requests)
        return total

    def overflowed(self) -> bool:
        """True when ``s_cache > (1 + α) · c_cache`` — compers must stop
        fetching new tasks and GC must act."""
        return self.size_estimate > (1 + self.overflow_alpha) * self.capacity

    # -- OP1: comper requests Γ(v) -------------------------------------------

    def request(self, v: int, task_id: int) -> RequestOutcome:
        """A task asks for ``Γ(v)``.

        Returns HIT with the entry (lock count incremented), or
        MISS_SEND (v entered the R-table for the first time — the caller
        must append a network request), or MISS_DUPLICATE (another task
        already requested v; this task is queued on the same response).
        """
        b = self._bucket(v)
        with b.lock:
            b.acquisitions += 1
            entry = b.gamma.get(v)
            if entry is not None:
                # Case 1: cached.  Take a lock; leave the Z-table if there.
                if entry.lock_count == 0:
                    b.zero.discard(v)
                entry.lock_count += 1
                self._metrics.add("cache:hits")
                return RequestOutcome(RequestOutcome.HIT, entry)
            pending = b.requests.get(v)
            if pending is None:
                # Case 2.1: first request for v.
                b.requests[v] = _PendingRequest([task_id])
                self._metrics.add("cache:miss_first")
                new_entry = True
            else:
                # Case 2.2: duplicate request — suppressed.
                pending.waiting_task_ids.append(task_id)
                self._metrics.add("cache:miss_duplicate")
                new_entry = False
        if new_entry:
            self._bump(+1)
            return RequestOutcome(RequestOutcome.MISS_SEND)
        return RequestOutcome(RequestOutcome.MISS_DUPLICATE)

    def request_batch(self, vertices: Sequence[int], task_id: int) -> BatchRequestOutcome:
        """Bulk OP1: request every vertex in ``vertices`` for one task.

        Groups the vertices by bucket and takes each touched bucket's
        mutex once, applying the per-vertex OP1 state transitions in
        batch order inside it.  Observationally equivalent to calling
        :meth:`request` per vertex; HIT entries are *not* returned
        because the park-first protocol resolves them later through
        :meth:`get_locked` (the lock is taken here, exactly as OP1 does).
        """
        by_bucket: Dict[int, List[int]] = {}
        for v in vertices:
            by_bucket.setdefault(v % self._num_buckets, []).append(v)
        hits = 0
        duplicates = 0
        new_entries = 0
        send_set: Set[int] = set()
        for bidx, vs in by_bucket.items():
            b = self._buckets[bidx]
            with b.lock:
                b.acquisitions += 1
                for v in vs:
                    entry = b.gamma.get(v)
                    if entry is not None:
                        if entry.lock_count == 0:
                            b.zero.discard(v)
                        entry.lock_count += 1
                        hits += 1
                        continue
                    pending = b.requests.get(v)
                    if pending is None:
                        b.requests[v] = _PendingRequest([task_id])
                        new_entries += 1
                        send_set.add(v)
                    else:
                        pending.waiting_task_ids.append(task_id)
                        duplicates += 1
        if hits:
            self._metrics.add("cache:hits", hits)
        if new_entries:
            self._metrics.add("cache:miss_first", new_entries)
            self._bump(+new_entries)
        if duplicates:
            self._metrics.add("cache:miss_duplicate", duplicates)
        # Preserve batch order in to_send so request batches on the wire
        # match what the per-vertex path would have queued (one entry per
        # MISS_SEND even if the batch names a vertex twice).
        to_send: List[int] = []
        for v in vertices:
            if v in send_set:
                send_set.discard(v)
                to_send.append(v)
        return BatchRequestOutcome(hits, to_send, duplicates)

    # -- OP2: receiving thread inserts a response ------------------------------

    def insert_response(self, v: int, label: int, adj: Sequence[int]) -> List[int]:
        """Move ``v`` from R-table to Γ-table; returns the waiting task ids.

        The lock count transfers: every waiting task already holds one
        lock on ``v`` (taken at request time), so the new Γ-entry starts
        with ``len(waiting)`` locks.  ``adj`` is stored as a sorted
        read-only int64 ndarray (zero-copy when the caller already
        decoded one from the binary wire format).
        """
        b = self._bucket(v)
        with b.lock:
            b.acquisitions += 1
            pending = b.requests.pop(v, None)
            if pending is None:
                raise CacheProtocolError(
                    f"response for vertex {v} that has no R-table entry"
                )
            if v in b.gamma:
                raise CacheProtocolError(f"vertex {v} already in Γ-table")
            arr = kernels.as_ids_array(adj)
            if arr.flags.writeable:
                arr.flags.writeable = False
            entry = CachedVertex(int(v), int(label), arr,
                                 lock_count=pending.lock_count)
            b.gamma[v] = entry
            waiting = list(pending.waiting_task_ids)
        # s_cache unchanged (R-table entry became a Γ-table entry).
        if self._memory_model is not None:
            self._memory_model.add_cache(entry.memory_estimate_bytes())
        self._metrics.add("cache:responses")
        return waiting

    def insert_responses(
        self, rows: Iterable[Tuple[int, int, Sequence[int]]]
    ) -> List[Tuple[int, List[int]]]:
        """Bulk OP2: land a batch of ``(v, label, adj)`` responses.

        Groups by bucket, takes each bucket's mutex once, and applies the
        per-vertex OP2 transition for each row in batch order.  Returns
        ``[(v, waiting_task_ids), ...]`` in batch order so the caller can
        notify pending tasks exactly as it would per vertex.  Raises
        :class:`CacheProtocolError` mid-batch on a protocol violation —
        rows already landed stay landed, mirroring a per-vertex sequence
        that fails partway through.
        """
        by_bucket: Dict[int, List[Tuple[int, int, int, Sequence[int]]]] = {}
        order = 0
        for v, label, adj in rows:
            by_bucket.setdefault(v % self._num_buckets, []).append(
                (order, v, label, adj)
            )
            order += 1
        results: List[Optional[Tuple[int, List[int]]]] = [None] * order
        added_bytes = 0
        landed = 0
        try:
            for bidx, items in by_bucket.items():
                b = self._buckets[bidx]
                with b.lock:
                    b.acquisitions += 1
                    for pos, v, label, adj in items:
                        pending = b.requests.pop(v, None)
                        if pending is None:
                            raise CacheProtocolError(
                                f"response for vertex {v} that has no R-table entry"
                            )
                        if v in b.gamma:
                            raise CacheProtocolError(
                                f"vertex {v} already in Γ-table"
                            )
                        arr = kernels.as_ids_array(adj)
                        if arr.flags.writeable:
                            arr.flags.writeable = False
                        entry = CachedVertex(int(v), int(label), arr,
                                             lock_count=pending.lock_count)
                        b.gamma[v] = entry
                        results[pos] = (int(v), list(pending.waiting_task_ids))
                        added_bytes += entry.memory_estimate_bytes()
                        landed += 1
        finally:
            # s_cache unchanged (R-table entries became Γ-table entries).
            if self._memory_model is not None and added_bytes:
                self._memory_model.add_cache(added_bytes)
            if landed:
                self._metrics.add("cache:responses", landed)
        return [r for r in results if r is not None]

    # -- OP3: task releases a vertex after an iteration -------------------------

    def release(self, v: int, task_id: int = -1) -> None:
        """Decrement ``lock_count(v)``; at zero, enter the Z-table.

        ``task_id`` identifies the releasing task; the base cache ignores
        it, the protocol checker uses it to balance each task's ledger.
        """
        b = self._bucket(v)
        with b.lock:
            b.acquisitions += 1
            entry = b.gamma.get(v)
            if entry is None or entry.lock_count <= 0:
                raise CacheProtocolError(
                    f"release of vertex {v} that is not locked in the Γ-table"
                )
            entry.lock_count -= 1
            if entry.lock_count == 0:
                b.zero.add(v)

    def release_batch(self, vertices: Sequence[int], task_id: int = -1) -> None:
        """Bulk OP3: release every vertex in ``vertices`` for one task.

        Groups by bucket and takes each touched bucket's mutex once.
        Equivalent to calling :meth:`release` per vertex in batch order
        (a vertex listed twice is decremented twice).
        """
        by_bucket: Dict[int, List[int]] = {}
        for v in vertices:
            by_bucket.setdefault(v % self._num_buckets, []).append(v)
        for bidx, vs in by_bucket.items():
            b = self._buckets[bidx]
            with b.lock:
                b.acquisitions += 1
                for v in vs:
                    entry = b.gamma.get(v)
                    if entry is None or entry.lock_count <= 0:
                        raise CacheProtocolError(
                            f"release of vertex {v} that is not locked in the "
                            f"Γ-table"
                        )
                    entry.lock_count -= 1
                    if entry.lock_count == 0:
                        b.zero.add(v)

    # -- reads for ready tasks (no extra lock taken) -----------------------------

    def get_locked(self, v: int, task_id: int = -1) -> CachedVertex:
        """Fetch a vertex this task already holds a lock on.

        Used when a pending task becomes ready: its request locks were
        taken at OP1 time, so resolution must *not* re-increment.
        ``task_id`` is checker attribution, ignored here.
        """
        b = self._bucket(v)
        with b.lock:
            b.acquisitions += 1
            entry = b.gamma.get(v)
            if entry is None or entry.lock_count <= 0:
                raise CacheProtocolError(
                    f"vertex {v} expected locked in Γ-table but is not"
                )
            return entry

    # -- OP4: garbage collection ----------------------------------------------

    def evict(self, max_evictions: Optional[int] = None) -> int:
        """Evict up to ``max_evictions`` zero-lock vertices, round-robin
        over buckets; returns how many were evicted.

        With ``max_evictions=None``, clears the current overflow
        ``s_cache - c_cache`` (the paper's δ_cache batch).  The calling
        thread's uncommitted counter delta is flushed first so the
        overflow budget is computed from this thread's true view of
        ``s_cache`` — without this the GC thread's own pending inserts
        made it under- or over-shoot by up to δ.
        """
        if max_evictions is None:
            self.flush_local_counter()
            max_evictions = max(0, self.size_estimate - self.capacity)
        evicted = 0
        scanned_buckets = 0
        freed_bytes = 0
        with self._gc_lock:
            while evicted < max_evictions and scanned_buckets < self._num_buckets:
                b = self._buckets[self._gc_cursor]
                self._gc_cursor = (self._gc_cursor + 1) % self._num_buckets
                scanned_buckets += 1
                with b.lock:
                    b.acquisitions += 1
                    while b.zero and evicted < max_evictions:
                        v = b.zero.pop()
                        entry = b.gamma.pop(v)
                        freed_bytes += entry.memory_estimate_bytes()
                        evicted += 1
        if evicted:
            with self._s_cache_lock:
                self._s_cache -= evicted
            if self._memory_model is not None:
                self._memory_model.add_cache(-freed_bytes)
            self._metrics.add("cache:evictions", evicted)
        return evicted

    # -- lock-acquisition accounting ------------------------------------------

    def bucket_lock_acquisitions(self) -> int:
        """Total bucket-mutex acquisitions so far (racy read; exact once
        the cache is quiescent)."""
        return sum(b.acquisitions for b in self._buckets)

    def commit_lock_metrics(self) -> None:
        """Publish the acquisition total to ``cache:bucket_lock_acquisitions``.

        Delta-tracked so repeated calls (every sync) are idempotent; the
        metric ends up equal to :meth:`bucket_lock_acquisitions` at job
        end.
        """
        total = self.bucket_lock_acquisitions()
        delta = total - getattr(self, "_lock_metrics_committed", 0)
        if delta:
            self._metrics.add("cache:bucket_lock_acquisitions", delta)
            self._lock_metrics_committed = total

    # -- invariant checks (tests) -------------------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants (single-threaded contexts only)."""
        for b in self._buckets:
            with b.lock:
                for v in b.zero:
                    if v not in b.gamma:
                        raise CacheProtocolError(f"Z-table entry {v} not in Γ-table")
                    if b.gamma[v].lock_count != 0:
                        raise CacheProtocolError(
                            f"Z-table entry {v} has lock_count "
                            f"{b.gamma[v].lock_count}"
                        )
                for v, entry in b.gamma.items():
                    if entry.lock_count == 0 and v not in b.zero:
                        raise CacheProtocolError(
                            f"Γ-table entry {v} has zero locks but is not in Z-table"
                        )
                    if entry.lock_count < 0:
                        raise CacheProtocolError(f"negative lock count on {v}")
                    if v in b.requests:
                        raise CacheProtocolError(f"{v} in both Γ-table and R-table")
