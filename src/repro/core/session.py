"""Sessions and job handles: the resident-graph entry-point layer.

A :class:`Session` holds one graph resident and runs any number of jobs
against it.  The first job pays the load/flatten cost; every later job
reuses the memoized CSR arrays (:meth:`repro.graph.Graph.csr_arrays`),
which is what makes a long-lived job server economical — see
:mod:`repro.service` for the multi-tenant server built on top.

Submission is asynchronous: :meth:`Session.submit` returns a
:class:`JobHandle` immediately with ``.result(timeout=)``, ``.status()``
and ``.cancel()``.  The classic one-shot entry points
:func:`repro.core.job.run_job` and :func:`~repro.core.job.resume_job`
are thin wrappers over a one-shot Session — same signatures, same
behavior, same exceptions — so nothing existing changes spelling.

The :class:`JobHandle` surface is a *protocol*: the local handle here
and the remote handle in :mod:`repro.service.client` implement the same
four methods, so code written against a handle does not care whether
the job runs in-process or on a served resident graph.

Typical use::

    from repro import Session
    from repro.apps import TriangleCountComper

    with Session(graph, config, runtime="process") as session:
        h1 = session.submit(TriangleCountComper)
        h2 = session.submit(MaxCliqueComper)
        print(h1.result().aggregate, h2.result().aggregate)

Recovery is a parameter, not a separate entry point: pass
``resume_from=<shard path>`` to :meth:`Session.submit` (or ``run_job``)
to seed the job from a checkpoint shard.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Callable, List, Optional, Set

from .config import GThinkerConfig
from .errors import JobCancelledError
from .runtime import AbortToken, get_runtime

__all__ = [
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "JobHandle",
    "LocalJobHandle",
    "Session",
]

#: Job lifecycle states, shared by local and remote handles.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = frozenset({JOB_DONE, JOB_FAILED, JOB_CANCELLED})


class JobHandle:
    """The handle protocol: what every submitted job hands back.

    Implementations: :class:`LocalJobHandle` (in-process Session) and
    :class:`repro.service.client.RemoteJobHandle` (a job on a served
    resident graph).  Both expose exactly this surface, so local and
    served jobs are interchangeable to calling code.
    """

    job_id: str

    def status(self) -> str:
        """One of ``queued / running / done / failed / cancelled``."""
        raise NotImplementedError

    def done(self) -> bool:
        """True once the job reached a terminal state."""
        raise NotImplementedError

    def result(self, timeout: Optional[float] = None):
        """Block for the :class:`~repro.core.job.JobResult`.

        Re-raises the job's exception if it failed, raises
        :class:`~repro.core.errors.JobCancelledError` if it was
        cancelled, and :class:`TimeoutError` if ``timeout`` elapses
        first (the job keeps running; call ``result`` again).
        """
        raise NotImplementedError

    def cancel(self) -> bool:
        """Try to cancel; True iff the request was accepted.

        A queued job cancels immediately.  A *running* job cancels
        cooperatively when its runtime declares the ``cancellation``
        capability (built-ins: serial, threaded, checked, process): the
        job's abort token is set, the control plane observes it at the
        next sync boundary, and the handle reaches the ``cancelled``
        terminal state shortly after — ``cancel()`` returning True means
        the cancel was *accepted*, not that the job already stopped.
        Runtimes without the capability (``cluster``) and finished jobs
        return False.
        """
        raise NotImplementedError


class LocalJobHandle(JobHandle):
    """Handle to a job submitted to an in-process :class:`Session`."""

    def __init__(self, session: "Session", job_id: str) -> None:
        self._session = session
        self.job_id = job_id
        self._event = threading.Event()
        self._state = JOB_QUEUED
        self._result = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["LocalJobHandle"], None]] = []
        #: The job's cooperative-cancellation token; None when the
        #: runtime declined the ``cancellation`` capability.
        self._abort: Optional[AbortToken] = None

    # -- protocol ----------------------------------------------------

    def status(self) -> str:
        with self._session._lock:
            return self._state

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} still {self.status()} after {timeout}s"
            )
        if self._state == JOB_CANCELLED:
            raise JobCancelledError(f"job {self.job_id} was cancelled")
        if self._error is not None:
            raise self._error
        return self._result

    def cancel(self) -> bool:
        return self._session._cancel(self)

    def add_done_callback(
        self, fn: Callable[["LocalJobHandle"], None]
    ) -> None:
        """Run ``fn(handle)`` when the job reaches a terminal state.

        Called on the runner thread (or immediately, on the calling
        thread, if the job already finished).  The job service uses this
        to release worker quota and admit the next queued job.
        """
        run_now = False
        with self._session._lock:
            if self._event.is_set():
                run_now = True
            else:
                self._callbacks.append(fn)
        if run_now:
            fn(self)

    # -- session-side completion --------------------------------------

    def _finish(self, state: str, result=None,
                error: Optional[BaseException] = None) -> None:
        with self._session._lock:
            self._state = state
            self._result = result
            self._error = error
            callbacks, self._callbacks = self._callbacks, []
        self._event.set()
        for fn in callbacks:
            fn(self)


class _PendingJob:
    """A submitted-but-not-started job: the handle plus its run thunk."""

    __slots__ = ("handle", "thunk")

    def __init__(self, handle: LocalJobHandle, thunk: Callable[[], Any]) -> None:
        self.handle = handle
        self.thunk = thunk


class Session:
    """A resident graph plus an asynchronous job executor over it.

    Parameters
    ----------
    graph:
        A :class:`repro.graph.Graph` or
        :class:`repro.graph.ShardedGraphStore`.  Held for the life of
        the session; in-memory graphs get their CSR arrays warmed once
        when the session's runtime wants them (``process`` / ``cluster``),
        so repeat jobs skip the flatten entirely.
    config:
        Default :class:`GThinkerConfig` for submitted jobs
        (per-``submit`` override available).  ``None`` keeps the classic
        ``run_job`` defaulting — including adopting a checkpoint shard's
        worker layout on ``resume_from``.
    runtime:
        Default runtime name; validated eagerly so a typo fails at
        construction, not first submit.
    max_concurrent:
        How many submitted jobs may run at once.  The default ``1``
        preserves one-job-at-a-time semantics (submissions queue FIFO);
        ``None`` means unlimited — the job service supplies its own
        admission scheduler and never wants a second queue below it.
    """

    #: Runtimes whose workers read the flattened CSR; anything else
    #: loads adjacency rows directly and must not pay the flatten.
    _CSR_RUNTIMES = frozenset({"process", "cluster"})

    def __init__(
        self,
        graph,
        config: Optional[GThinkerConfig] = None,
        runtime: str = "serial",
        max_concurrent: Optional[int] = 1,
    ) -> None:
        get_runtime(runtime)  # fail fast on unknown names
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1 or None (unlimited)")
        self.graph = graph
        self.runtime = runtime
        self._config = config  # may be None: submit-time defaulting
        self._max_concurrent = max_concurrent
        self._lock = threading.RLock()
        self._pending: deque = deque()  # of _PendingJob
        self._running = 0
        self._threads: Set[threading.Thread] = set()
        self._closed = False
        self._seq = itertools.count(1)
        self._warmed = False
        if runtime in self._CSR_RUNTIMES:
            self._warm()

    # -- graph residency ----------------------------------------------

    def _warm(self) -> None:
        """Flatten the in-memory graph's CSR once (memoized on the graph)."""
        if self._warmed:
            return
        csr = getattr(self.graph, "csr_arrays", None)
        if callable(csr):
            csr()
        self._warmed = True

    # -- submission ----------------------------------------------------

    def submit(
        self,
        app_factory: Callable[[], Any],
        *,
        config: Optional[GThinkerConfig] = None,
        runtime: Optional[str] = None,
        checkpoint_path: Optional[str] = None,
        abort_after_rounds: Optional[int] = None,
        resume_from: Optional[str] = None,
    ) -> LocalJobHandle:
        """Queue one job; returns its :class:`LocalJobHandle` immediately.

        Parameters mirror :func:`~repro.core.job.run_job` (which is a
        wrapper over exactly this call).  ``resume_from`` names a
        checkpoint shard to seed the job from — recovery as a parameter
        rather than a parallel entry point; validation (runtime name,
        worker-count match) happens here, synchronously, before any
        cluster is built.
        """
        # Imported here, not at module top: job.py imports this module
        # lazily from run_job, and importing it back at top level would
        # complete the cycle during package init.
        from .job import _dispatch, resolve_resume

        runtime = runtime if runtime is not None else self.runtime
        config = config if config is not None else self._config
        checkpoint = None
        if resume_from is not None:
            checkpoint, config = resolve_resume(resume_from, config, runtime)
            if checkpoint_path is None and config.checkpoint_every_syncs > 0:
                # Keep checkpointing to the shard we resumed from (the
                # classic resume_job contract).
                checkpoint_path = resume_from
        else:
            config = config or GThinkerConfig()

        # Validate the runtime/feature combination now, on the calling
        # thread, so submit-time errors stay synchronous exactly like
        # the one-shot entry points.
        spec = get_runtime(runtime)
        wanted = []
        if checkpoint_path is not None:
            wanted.append("checkpointing")
        if abort_after_rounds is not None or config.failure_plan is not None:
            wanted.append("failure_injection")
        if checkpoint is not None:
            wanted.append("resume")
        spec.require(*wanted)
        if runtime in self._CSR_RUNTIMES:
            self._warm()

        graph = self.graph
        ckpt = checkpoint
        # Runtimes with the ``cancellation`` capability get an abort
        # token threaded down to their control plane; others run exactly
        # as before and cancel() on a running handle returns False.
        abort = AbortToken() if spec.capabilities.cancellation else None

        def thunk():
            return _dispatch(
                runtime, app_factory, graph, config,
                checkpoint_path=checkpoint_path,
                abort_after_rounds=abort_after_rounds,
                checkpoint=ckpt,
                abort=abort,
            )

        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed Session")
            handle = LocalJobHandle(self, f"job-{next(self._seq)}")
            handle._abort = abort
            job = _PendingJob(handle, thunk)
            if self._max_concurrent is None or self._running < self._max_concurrent:
                self._start_locked(job)
            else:
                self._pending.append(job)
        return handle

    # -- execution -----------------------------------------------------

    def _start_locked(self, job: _PendingJob) -> None:
        """Start a runner thread for ``job``; caller holds the lock."""
        self._running += 1
        job.handle._state = JOB_RUNNING
        t = threading.Thread(
            target=self._run_loop, args=(job,), daemon=True,
            name=f"session-{job.handle.job_id}",
        )
        self._threads.add(t)
        t.start()

    def _run_loop(self, job: Optional[_PendingJob]) -> None:
        while job is not None:
            try:
                result = job.thunk()
            except JobCancelledError:
                # The control plane observed the abort token and unwound
                # cleanly — a cancelled job, not a failed one.
                job.handle._finish(JOB_CANCELLED)
            except BaseException as exc:
                job.handle._finish(JOB_FAILED, error=exc)
            else:
                job.handle._finish(JOB_DONE, result=result)
            with self._lock:
                job = None
                while self._pending:
                    nxt = self._pending.popleft()
                    if nxt.handle._state == JOB_QUEUED:
                        nxt.handle._state = JOB_RUNNING
                        job = nxt
                        break
                if job is None:
                    self._running -= 1
                    self._threads.discard(threading.current_thread())

    def _cancel(self, handle: LocalJobHandle) -> bool:
        with self._lock:
            if handle._state == JOB_RUNNING and handle._abort is not None:
                # Cooperative running-job cancel: set the token and
                # return — the control plane unwinds at its next sync
                # boundary and the runner thread settles the handle in
                # the cancelled terminal state.  True means accepted.
                handle._abort.set()
                return True
            if handle._state != JOB_QUEUED:
                return False
            handle._state = JOB_CANCELLED
        # The queued entry stays in _pending; the runner loop skips
        # cancelled entries.  Finish outside the lock (callbacks).
        handle._finish(JOB_CANCELLED)
        return True

    # -- lifecycle ------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting jobs; by default wait for submitted ones.

        ``wait=False`` cancels everything still queued and returns
        without joining running jobs (they finish on their daemon
        threads; their handles stay valid).
        """
        with self._lock:
            if self._closed and not self._threads:
                return
            self._closed = True
            threads = list(self._threads)
            if not wait:
                stranded = [j.handle for j in self._pending
                            if j.handle._state == JOB_QUEUED]
            else:
                stranded = []
        for handle in stranded:
            self._cancel(handle)
        if wait:
            for t in threads:
                t.join()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(wait=exc_type is None)

    @property
    def closed(self) -> bool:
        return self._closed
