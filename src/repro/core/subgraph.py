"""The ``Subgraph`` abstraction a task constructs and mines upon.

A task's subgraph ``t.g`` is private to the task (tasks never share
mutable state — that independence is one of the paper's desirabilities),
so unlike :class:`repro.graph.Graph` it is mutable and grows as the task
pulls vertices.  It stores plain ``{v: tuple}`` adjacency so the serial
miners in :mod:`repro.algorithms` can run on it directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import kernels

__all__ = ["Subgraph"]


class Subgraph:
    """A growable vertex-induced subgraph owned by one task."""

    __slots__ = ("_adj", "_labels")

    def __init__(self) -> None:
        self._adj: Dict[int, Tuple[int, ...]] = {}
        self._labels: Dict[int, int] = {}

    # -- growth ----------------------------------------------------------

    def add_vertex(
        self,
        v: int,
        adj: Iterable[int],
        label: int = 0,
        keep_only: Optional[Iterable[int]] = None,
    ) -> None:
        """Add ``v`` with its adjacency list.

        ``keep_only`` filters the adjacency to a candidate set while
        copying — the paper's Fig. 5 line 2 filtering ("we filter any
        adjacency list item w if w not in Gamma_>(v)") without an extra
        pass.  Re-adding a vertex overwrites its row.

        ``adj`` may be an ndarray (the hot-path representation coming
        from ``VertexView.adj``).  Rows are normalized to tuples of
        *python* ints so task subgraphs stay picklable/comparable and
        np.int64 never leaks into user-visible records; because of that
        boxing, small rows filter faster through a python set probe than
        through ``np.isin`` — the vectorized filter only pays off on big
        (hub-sized) rows, where it runs before the boxing.
        """
        if isinstance(adj, np.ndarray):
            if keep_only is not None and adj.size >= 256:
                # Hub-sized rows: the candidate filter is a sorted-set
                # intersection (adj is sorted/duplicate-free by the
                # adjacency contract), so it runs on the dispatched
                # kernel backend.  Sets are sorted here — np.isin would
                # have sorted them internally anyway.
                if isinstance(keep_only, np.ndarray):
                    keep = np.unique(keep_only.astype(np.int64))
                else:
                    keep = np.fromiter(keep_only, dtype=np.int64)
                    keep.sort()
                adj = kernels.intersect(adj, keep)
                keep_only = None
            adj = adj.tolist()  # boxes to python ints in one C pass
            if keep_only is None:
                row = tuple(adj)
            else:
                keep = (keep_only if isinstance(keep_only, (set, frozenset))
                        else set(self._as_int_iter(keep_only)))
                row = tuple(u for u in adj if u in keep)
        elif keep_only is not None:
            keep = (keep_only if isinstance(keep_only, (set, frozenset))
                    else set(self._as_int_iter(keep_only)))
            row = tuple(int(u) for u in adj if u in keep)
        else:
            row = tuple(int(u) for u in adj)
        self._adj[int(v)] = row
        if label:
            self._labels[int(v)] = int(label)

    @staticmethod
    def _as_int_iter(values: Iterable[int]) -> Iterable[int]:
        return values.tolist() if isinstance(values, np.ndarray) else values

    def remove_vertex(self, v: int) -> None:
        """Drop ``v``'s row (does not rewrite other rows; use
        :meth:`induced` for a clean cut)."""
        self._adj.pop(v, None)
        self._labels.pop(v, None)

    # -- access -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    def vertices(self) -> Iterator[int]:
        return iter(self._adj)

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        return self._adj[v]

    def label(self, v: int) -> int:
        return self._labels.get(v, 0)

    def adjacency(self) -> Dict[int, Tuple[int, ...]]:
        """The underlying mapping (shared, do not mutate rows)."""
        return self._adj

    def symmetrize(self) -> None:
        """Make adjacency symmetric (and rows sorted) in place.

        Needed when rows were built from ``Γ_>``-trimmed pulls: the
        set-enumeration apps pull only larger-id adjacency to halve
        traffic, but the serial miners expect undirected adjacency.
        Only edges between *present* vertices are mirrored.
        """
        undirected: Dict[int, set] = {v: set() for v in self._adj}
        for v, row in self._adj.items():
            for u in row:
                if u in undirected:
                    undirected[v].add(u)
                    undirected[u].add(v)
        for v in undirected:
            self._adj[v] = tuple(sorted(undirected[v]))

    # -- derivation ---------------------------------------------------------

    def induced(self, vertices: Iterable[int]) -> "Subgraph":
        """A new subgraph induced on ``vertices`` (rows filtered)."""
        vset = set(vertices)
        out = Subgraph()
        for v in vset:
            row = self._adj.get(v)
            if row is None:
                continue
            out._adj[v] = tuple(u for u in row if u in vset)
            if v in self._labels:
                out._labels[v] = self._labels[v]
        return out

    def memory_estimate_bytes(self) -> int:
        """Modeled C++ footprint (see ``WorkerMemoryModel``)."""
        return sum(24 + 8 * len(a) for a in self._adj.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        edges = sum(len(a) for a in self._adj.values())
        return f"Subgraph(|V|={len(self._adj)}, adj-entries={edges})"
