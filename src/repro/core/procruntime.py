"""The ``runtime="process"`` backend: real CPU parallelism, crash-safe.

The paper's headline claim is *CPU-bound* execution; the threaded
runtime cannot show it because the GIL serializes the mining work.  This
backend runs one OS process per worker:

* the graph lives in :class:`~repro.graph.csr.SharedCSR` shared-memory
  segments — every worker maps it read-only at zero copy and
  materializes only its own hash partition's rows, lazily;
* inter-worker vertex pulls/responses travel over
  :class:`~repro.net.transport.ProcessTransport` — batched per
  destination, drained through ``multiprocessing`` queues (the paper's
  batched sending applied to IPC);
* a control plane of per-worker pipes carries the master protocol of
  :class:`~repro.core.controlplane.ControlPlaneMaster`: periodic syncs
  (aggregator partials up, global value down, status snapshot for
  termination detection), master-coordinated steal commands,
  sync-barrier checkpoints, and the final report (outputs + metrics
  snapshot), with each worker's
  :class:`~repro.core.metrics.MetricsRegistry` merged into the parent
  via ``merge_from`` at join time.

Termination mirrors :class:`~repro.core.master.Master`'s double
snapshot: two consecutive syncs must observe every worker drained
(no tasks in memory / on disk / unspawned, no queued or buffered
outgoing messages), a globally balanced ``sent == received`` message
count, and an unchanged progress counter between the observations.

Fault tolerance (paper §V-B)
----------------------------

This runtime supports the full capability set: **checkpointing**,
**failure injection** and **resume**.

*Checkpoints* are a sync-barrier protocol.  Every
``checkpoint_every_syncs`` master sweeps the parent quiesces all workers
(``"quiesce"`` — engines pause, only the comm service keeps stepping so
in-transit messages drain), polls ``"qstatus"`` until the wire is
*settled* — globally ``sum(sent) == sum(received)`` with zero buffered
outgoing anywhere, which proves no message exists in any queue — then
collects a :class:`~repro.core.checkpoint.WorkerSnapshot` per worker
(``"checkpoint"``: spawn cursor, every in-memory and spilled task with
its pull set, outputs, aggregator partial, transport counters) and
resumes all workers with the freshly folded global aggregate
(``"resume"``).  Snapshots are kept in memory as the rollback point and,
when a ``checkpoint_path`` is given, written atomically as a
:class:`~repro.core.checkpoint.JobCheckpoint` shard (same format as the
serial runtime's — shards resume across runtimes).

*Recovery* is a global rollback.  When any worker dies or times out on
the control plane, the parent terminates the whole worker set, rebuilds
fresh queues and pipes, and respawns every worker from the last barrier
snapshot (or from scratch when none was taken): caches restart cold,
restored tasks re-issue their pull sets, transport counters resume from
the barrier's balanced values so termination stays sound, outputs are
replaced by the snapshot's (work redone after the barrier cannot
duplicate records), and the master aggregator rolls back to the barrier
value so sum-style aggregates count redone work exactly once.
Single-worker respawn would be unsound — in-transit messages addressed
to the dead worker and the survivors' unanswered pulls are unrecoverable
— so rollback is all-or-nothing.  Retries are bounded by
``max_worker_restarts`` with exponential backoff
(``worker_restart_backoff_s`` doubling per consecutive restart); a
worker that *reported* an exception (an app/framework bug that would
recur) raises :class:`~repro.core.errors.WorkerProcessError` with
``recoverable=False`` and the original traceback chained, immediately.

*Failure injection* is driven by
:class:`~repro.core.config.FailurePlanConfig`: the selected worker
``os._exit``\\ s — no error report, exactly what a machine loss looks
like — at a deterministic trigger (n-th sync/steal command, n-th round
observing a mid-spawn cursor or a non-empty spill list, or a seeded
coin flip per sync).  Plans arm only in the job's first incarnation
unless ``rearm=True``.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection as mp_connection
import pickle
import shutil
import tempfile
import time
import traceback
from pathlib import Path
from typing import Any, List, Optional

from ..graph.csr import SharedCSR
from ..graph.graph import Graph
from ..graph.io import ShardedGraphStore
from ..net.transport import ProcessTransport
from .aggregator import GlobalAggregator
from .checkpoint import JobCheckpoint, restore_worker
from .config import GThinkerConfig
from .controlplane import (
    ControlPlaneMaster,
    FailureInjector,
    NodeFinal,
    NodeSession,
    NodeStatus,
)
from .errors import CheckpointError, GThinkerError, WorkerProcessError
from .metrics import MetricsRegistry
from .runtime import JobRequest
from .worker import Worker

__all__ = ["ProcessExecutor"]

# Backwards-compatible aliases: the protocol types moved to
# controlplane.py when runtime="cluster" started sharing them.
_Status = NodeStatus
_Final = NodeFinal
_FailureInjector = FailureInjector

#: How long `_send` drains a broken pipe looking for the error report.
_ERROR_DRAIN_S = 1.0


def _default_start_method() -> str:
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_main(
    worker_id,
    config,
    app_factory,
    csr_meta,
    data_queues,
    conn,
    spill_root,
    snapshot=None,
    global_value=None,
    incarnation=0,
):
    """Entry point of one worker process.

    Steps its worker's components (comm service, comper engines, GC)
    round-robin — the per-machine layout of the serial runtime, but with
    every machine on its own core — and answers control commands from
    the parent between rounds, both via the shared
    :class:`~repro.core.controlplane.NodeSession` machine.  The spill
    directory lives under a parent-owned root, so a ``terminate()``
    during recovery cannot leak it.
    """
    csr = None
    worker = None
    try:
        csr = SharedCSR.attach(csr_meta)
        metrics = MetricsRegistry()
        # Honor kernel_backend in the child even under 'spawn' (where the
        # parent's import-time selection is not inherited).
        from .job import activate_kernel_backend

        activate_kernel_backend(config, metrics)
        transport = ProcessTransport(
            worker_id,
            data_queues,
            metrics=metrics,
            max_batch_messages=config.ipc_batch_max_messages,
            wire_format=config.ipc_wire_format,
        )
        worker = Worker(
            worker_id=worker_id,
            num_workers=config.num_workers,
            config=config,
            app_factory=app_factory,
            transport=transport,
            metrics=metrics,
            spill_dir=Path(spill_root),
        )
        worker.load_shared(csr)
        if snapshot is not None:
            restore_worker(worker, snapshot)
            # Counters resume from the barrier's balanced values; the
            # fresh queues are empty, so sent==received still means
            # "wire empty" to the termination detector.
            transport.sent_count = snapshot.sent
            transport.received_count = snapshot.received
        if global_value is not None:
            worker.aggregator.publish_global(global_value)
        injector = FailureInjector(config.failure_plan, worker_id, incarnation)
        session = NodeSession(worker, transport, injector, metrics, config)

        # Adaptive idle wait: back off exponentially while nothing
        # happens, waking promptly on either a control command or an
        # incoming data-queue message (selected together via
        # multiprocessing.connection.wait).  Unsolicited notifications —
        # the drained-edge ("wake", wid) in sweep mode, pushed status
        # deltas in async mode — come from session.pending_pushes().
        backoff = config.idle_sleep_s

        while True:
            worked = session.step()

            while conn.poll(0):
                reply = session.handle(conn.recv())
                conn.send(reply)
                if session.done:
                    return

            for push in session.pending_pushes():
                conn.send(push)

            if worked:
                backoff = config.idle_sleep_s
            else:
                # Block until a command or data arrives, up to backoff.
                transport.wait_for_activity(backoff, extra=(conn,))
                backoff = min(backoff * 2, config.idle_backoff_max_s)
    except BaseException as exc:
        try:
            conn.send(("error", worker_id, type(exc).__name__,
                       "".join(traceback.format_exception(type(exc), exc,
                                                          exc.__traceback__))))
        except Exception:
            pass
    finally:
        if worker is not None:
            worker.cleanup()
        if csr is not None:
            csr.close()
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side master
# ---------------------------------------------------------------------------


class _ProcessMaster(ControlPlaneMaster):
    """Pipe/queue plumbing for :class:`ControlPlaneMaster`.

    Owns the worker set (queues, pipes, processes) so it can tear the
    whole set down and respawn it from the last barrier snapshot when a
    worker is lost.
    """

    def __init__(
        self,
        ctx,
        config: GThinkerConfig,
        app_factory,
        csr_meta,
        spill_root: Path,
        join_timeout_s: float,
        checkpoint_path: Optional[str] = None,
        abort_after_rounds: Optional[int] = None,
    ) -> None:
        super().__init__(
            config=config,
            app_factory=app_factory,
            join_timeout_s=join_timeout_s,
            checkpoint_path=checkpoint_path,
            abort_after_rounds=abort_after_rounds,
        )
        self.ctx = ctx
        self.csr_meta = csr_meta
        self.spill_root = spill_root
        self.procs: List = []
        self.conns: List = []
        self.data_queues: List = []

    # -- worker-set lifecycle ---------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.conns)

    def start(self, checkpoint: Optional[JobCheckpoint] = None) -> None:
        """Spawn the initial worker set, optionally seeded from a shard."""
        self._last_checkpoint = checkpoint
        if checkpoint is not None:
            self._epoch = checkpoint.epoch
        self._spawn_workers()

    def _spawn_workers(self) -> None:
        config = self.config
        ckpt = self._last_checkpoint
        # The aggregator rolls back with the workers: partials folded
        # after the barrier belong to work that will be redone.
        self.global_aggregator = GlobalAggregator(
            self.app_factory().make_aggregator()
        )
        if ckpt is not None:
            self.global_aggregator.set_value(ckpt.aggregator_global)
        global_value = self.global_aggregator.value if ckpt is not None else None
        # Fresh queues every incarnation: batches sent before the loss
        # belong to the rolled-back epoch and must not be delivered.
        self.data_queues = [self.ctx.Queue() for _ in range(config.num_workers)]
        self.procs, self.conns = [], []
        for wid in range(config.num_workers):
            parent_conn, child_conn = self.ctx.Pipe()
            snap = ckpt.worker_snapshots[wid] if ckpt is not None else None
            proc = self.ctx.Process(
                target=_worker_main,
                args=(wid, config, self.app_factory, self.csr_meta,
                      self.data_queues, child_conn, str(self.spill_root),
                      snap, global_value, self._incarnation),
                name=f"gthinker-worker-{wid}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.procs.append(proc)
            self.conns.append(parent_conn)

    def _terminate_workers(self) -> None:
        for conn in self.conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for q in self.data_queues:
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self.procs, self.conns, self.data_queues = [], [], []

    def _recover(self) -> None:
        """Global rollback: respawn everything from the last barrier."""
        self._terminate_workers()
        self._incarnation += 1
        self.metrics.add("ft:recoveries")
        self._spawn_workers()

    def shutdown(self) -> None:
        self._terminate_workers()

    # -- plumbing ---------------------------------------------------------

    def _recv(self, worker_id: int, timeout: Optional[float] = None):
        if timeout is None:
            timeout = self.config.control_reply_timeout_s
        conn = self.conns[worker_id]
        deadline = time.monotonic() + timeout
        poll_s = 0.002
        while not conn.poll(poll_s):
            # Exponential backoff on the control plane: spin tightly for
            # prompt replies, back off towards 100ms for slow ones.
            poll_s = min(poll_s * 2, 0.1)
            if not self.procs[worker_id].is_alive():
                # Exit may have raced a final message into the pipe.
                if conn.poll(0.25):
                    break
                raise WorkerProcessError(
                    worker_id,
                    f"died with exit code {self.procs[worker_id].exitcode} "
                    f"without reporting an error",
                    recoverable=True,
                )
            if time.monotonic() > deadline:
                raise WorkerProcessError(
                    worker_id,
                    f"no control-plane reply within {timeout}s",
                    recoverable=True,
                )
        try:
            msg = conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerProcessError(
                worker_id, "control pipe closed while receiving",
                recoverable=True,
            ) from exc
        if isinstance(msg, tuple) and msg and msg[0] == "error":
            _tag, wid, exc_type, tb = msg
            # The worker's own code raised: rolling back and redoing the
            # same work would fail identically, so this is final.
            raise WorkerProcessError(
                wid, f"{exc_type} raised:\n{tb}", recoverable=False
            )
        if self._note_oob(worker_id, msg):
            # Unsolicited notification (wake or pushed status) racing a
            # request-reply exchange; the reply we are waiting for is
            # still behind it.
            return self._recv(worker_id, timeout)
        return msg

    def _send(self, worker_id: int, cmd) -> None:
        try:
            self.conns[worker_id].send(cmd)
        except (BrokenPipeError, OSError) as exc:
            # The worker died.  Drain its pipe looking for the error
            # report — a late _Status or other stale reply must not
            # shadow the real traceback — and chain the pipe error.
            conn = self.conns[worker_id]
            deadline = time.monotonic() + _ERROR_DRAIN_S
            while time.monotonic() < deadline:
                try:
                    if not conn.poll(0.05):
                        continue
                    msg = conn.recv()
                except (EOFError, OSError):
                    break
                if isinstance(msg, tuple) and msg and msg[0] == "error":
                    _tag, wid, exc_type, tb = msg
                    raise WorkerProcessError(
                        wid, f"{exc_type} raised:\n{tb}", recoverable=False
                    ) from exc
                # else: a stale pre-death reply; keep draining.
            raise WorkerProcessError(
                worker_id, "control pipe closed unexpectedly",
                recoverable=True,
            ) from exc

    def _drain_events(self, timeout: float) -> None:
        """Multiplexed control-event drain over every worker's pipe.

        Blocks up to ``timeout`` for the *first* message, then consumes
        everything already buffered.  Out-of-band messages (wakes,
        pushed statuses) route through ``_note_oob``; anything else is
        an error report (raised final) or a pipe closure/dead process
        (raised as a recoverable loss).  Real protocol replies cannot
        appear: the control plane is strictly request-reply outside
        this window.
        """
        try:
            ready = mp_connection.wait(self.conns, timeout=timeout)
        except OSError:  # a pipe died mid-wait; the next op reports it
            self._pending_wake = True
            return
        for conn in ready:
            wid = self.conns.index(conn)
            if not self.procs[wid].is_alive() and not conn.poll(0):
                raise WorkerProcessError(
                    wid,
                    f"died with exit code {self.procs[wid].exitcode} "
                    f"without reporting an error",
                    recoverable=True,
                )
            while conn.poll(0):
                try:
                    msg = conn.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerProcessError(
                        wid, "control pipe closed while idle",
                        recoverable=True,
                    ) from exc
                if isinstance(msg, tuple) and msg and msg[0] == "error":
                    _tag, ewid, exc_type, tb = msg
                    raise WorkerProcessError(
                        ewid, f"{exc_type} raised:\n{tb}", recoverable=False
                    )
                if not self._note_oob(wid, msg):
                    raise WorkerProcessError(
                        wid,
                        "unexpected out-of-band control message "
                        f"{type(msg).__name__}",
                    )


# ---------------------------------------------------------------------------
# The executor registered as runtime="process"
# ---------------------------------------------------------------------------


class ProcessExecutor:
    """``execute(JobRequest) -> JobResult`` via worker processes."""

    def __init__(self, join_timeout_s: float = 600.0) -> None:
        self.join_timeout_s = join_timeout_s

    def execute(self, request: JobRequest):
        from .job import JobResult  # deferred: job.py imports us lazily

        config = request.config
        app_factory = request.app_factory
        try:
            pickle.dumps(app_factory)
        except Exception as exc:
            raise GThinkerError(
                f"runtime='process' requires a picklable app_factory "
                f"(a Comper class or functools.partial, not a lambda or "
                f"closure): {exc!r}"
            ) from exc

        ckpt = request.checkpoint
        if ckpt is not None and ckpt.num_workers != config.num_workers:
            raise CheckpointError(
                f"checkpoint was taken with {ckpt.num_workers} workers, "
                f"job has {config.num_workers}"
            )

        graph = request.graph
        if isinstance(graph, ShardedGraphStore):
            graph = graph.load_full_graph()
        if not isinstance(graph, Graph):
            raise TypeError(f"unsupported graph source {type(request.graph)!r}")

        ctx = mp.get_context(
            config.process_start_method or _default_start_method()
        )
        started = time.perf_counter()
        csr = SharedCSR.from_graph(graph)
        # The parent owns the spill root: worker processes can be
        # terminate()d mid-recovery, so they must not own tempdirs.
        owns_spill = config.spill_dir is None
        spill_root = Path(config.spill_dir) if config.spill_dir else Path(
            tempfile.mkdtemp(prefix="gthinker-spill-proc-")
        )
        master = _ProcessMaster(
            ctx=ctx,
            config=config,
            app_factory=app_factory,
            csr_meta=csr.meta,
            spill_root=spill_root,
            join_timeout_s=self.join_timeout_s,
            checkpoint_path=request.checkpoint_path,
            abort_after_rounds=request.abort_after_rounds,
        )
        # Cooperative cancel: the sweep loop raises JobCancelledError,
        # which unwinds through the ``finally`` below — shutdown()
        # terminates every worker process, so quota is really free.
        master.abort = request.abort
        try:
            master.start(checkpoint=ckpt)
            finals = master.run()

            merged = MetricsRegistry()
            merged.merge_from(master.metrics)
            outputs: List[Any] = []
            for final in sorted(finals, key=lambda f: f.worker_id):
                merged.merge_from(MetricsRegistry.from_snapshot(final.metrics))
                outputs.extend(final.outputs)
            for proc in master.procs:
                proc.join(timeout=10.0)
            return JobResult(
                aggregate=master.global_aggregator.value,
                outputs=outputs,
                metrics=merged.snapshot(),
                elapsed_s=time.perf_counter() - started,
                num_workers=config.num_workers,
                compers_per_worker=config.compers_per_worker,
            )
        finally:
            master.shutdown()
            if owns_spill:
                shutil.rmtree(spill_root, ignore_errors=True)
            csr.close()
            csr.unlink()
