"""The ``runtime="process"`` backend: real CPU parallelism, crash-safe.

The paper's headline claim is *CPU-bound* execution; the threaded
runtime cannot show it because the GIL serializes the mining work.  This
backend runs one OS process per worker:

* the graph lives in :class:`~repro.graph.csr.SharedCSR` shared-memory
  segments — every worker maps it read-only at zero copy and
  materializes only its own hash partition's rows, lazily;
* inter-worker vertex pulls/responses travel over
  :class:`~repro.net.transport.ProcessTransport` — batched per
  destination, drained through ``multiprocessing`` queues (the paper's
  batched sending applied to IPC);
* a control plane of per-worker pipes carries the master protocol:
  periodic syncs (aggregator partials up, global value down, status
  snapshot for termination detection), master-coordinated steal
  commands, sync-barrier checkpoints, and the final report (outputs +
  metrics snapshot), with each worker's
  :class:`~repro.core.metrics.MetricsRegistry` merged into the parent
  via ``merge_from`` at join time.

Termination mirrors :class:`~repro.core.master.Master`'s double
snapshot: two consecutive syncs must observe every worker drained
(no tasks in memory / on disk / unspawned, no queued or buffered
outgoing messages), a globally balanced ``sent == received`` message
count, and an unchanged progress counter between the observations.

Fault tolerance (paper §V-B)
----------------------------

This runtime supports the full capability set: **checkpointing**,
**failure injection** and **resume**.

*Checkpoints* are a sync-barrier protocol.  Every
``checkpoint_every_syncs`` master sweeps the parent quiesces all workers
(``"quiesce"`` — engines pause, only the comm service keeps stepping so
in-transit messages drain), polls ``"qstatus"`` until the wire is
*settled* — globally ``sum(sent) == sum(received)`` with zero buffered
outgoing anywhere, which proves no message exists in any queue — then
collects a :class:`~repro.core.checkpoint.WorkerSnapshot` per worker
(``"checkpoint"``: spawn cursor, every in-memory and spilled task with
its pull set, outputs, aggregator partial, transport counters) and
resumes all workers with the freshly folded global aggregate
(``"resume"``).  Snapshots are kept in memory as the rollback point and,
when a ``checkpoint_path`` is given, written atomically as a
:class:`~repro.core.checkpoint.JobCheckpoint` shard (same format as the
serial runtime's — shards resume across runtimes).

*Recovery* is a global rollback.  When any worker dies or times out on
the control plane, the parent terminates the whole worker set, rebuilds
fresh queues and pipes, and respawns every worker from the last barrier
snapshot (or from scratch when none was taken): caches restart cold,
restored tasks re-issue their pull sets, transport counters resume from
the barrier's balanced values so termination stays sound, outputs are
replaced by the snapshot's (work redone after the barrier cannot
duplicate records), and the master aggregator rolls back to the barrier
value so sum-style aggregates count redone work exactly once.
Single-worker respawn would be unsound — in-transit messages addressed
to the dead worker and the survivors' unanswered pulls are unrecoverable
— so rollback is all-or-nothing.  Retries are bounded by
``max_worker_restarts`` with exponential backoff
(``worker_restart_backoff_s`` doubling per consecutive restart); a
worker that *reported* an exception (an app/framework bug that would
recur) raises :class:`~repro.core.errors.WorkerProcessError` with
``recoverable=False`` and the original traceback chained, immediately.

*Failure injection* is driven by
:class:`~repro.core.config.FailurePlanConfig`: the selected worker
``os._exit``\\ s — no error report, exactly what a machine loss looks
like — at a deterministic trigger (n-th sync/steal command, n-th round
observing a mid-spawn cursor or a non-empty spill list, or a seeded
coin flip per sync).  Plans arm only in the job's first incarnation
unless ``rearm=True``.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import pickle
import random
import shutil
import tempfile
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..graph.csr import SharedCSR
from ..graph.graph import Graph
from ..graph.io import ShardedGraphStore
from ..net.message import TaskBatchTransfer
from ..net.transport import ProcessTransport
from .aggregator import GlobalAggregator
from .checkpoint import JobCheckpoint, WorkerSnapshot, restore_worker, snapshot_worker
from .config import FailurePlanConfig, GThinkerConfig
from .errors import (
    CheckpointError,
    GThinkerError,
    JobAbortedError,
    WorkerProcessError,
)
from .metrics import MetricsRegistry
from .runtime import JobRequest
from .worker import Worker

__all__ = ["ProcessExecutor"]

#: How long `_send` drains a broken pipe looking for the error report.
_ERROR_DRAIN_S = 1.0

#: Engine steps a worker runs between control-plane/inbox polls.  Bounds
#: the extra latency of answering a sync or serving a pull at one burst
#: (engine steps end early when no engine has work); big enough that the
#: per-round polling overhead is noise next to the mining work.
_ENGINE_BURST_STEPS = 32


@dataclass
class _Status:
    """One worker's answer to a sync command."""

    worker_id: int
    tasks_in_memory: int
    tasks_on_disk: int
    unspawned: int
    outgoing: int
    sent: int
    received: int
    progress: int
    workload: int
    partial: Any


@dataclass
class _Final:
    """One worker's end-of-job report."""

    worker_id: int
    outputs: List[Any]
    metrics: Dict[str, float]
    partial: Any


def _default_start_method() -> str:
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


# ---------------------------------------------------------------------------
# Failure injection (worker side)
# ---------------------------------------------------------------------------


class _FailureInjector:
    """Kills this worker process per its :class:`FailurePlanConfig`.

    Death is ``os._exit`` — no cleanup, no error report up the pipe —
    so the parent observes exactly what a machine loss looks like.
    """

    def __init__(
        self,
        plan: Optional[FailurePlanConfig],
        worker_id: int,
        incarnation: int,
    ) -> None:
        self._plan = plan
        self._worker_id = worker_id
        self._counts: Dict[str, int] = {}
        self.active = (
            plan is not None
            and (incarnation == 0 or plan.rearm)
            and (plan.kill_worker is None or plan.kill_worker == worker_id)
        )
        # Incarnation perturbs the stream so a rearmed random plan does
        # not replay the same kill schedule after every recovery.
        self._rng = random.Random(
            ((plan.seed if plan else 0) << 8) ^ worker_id ^ (incarnation * 7919)
        )

    def fire(self, event: str) -> None:
        """Record one occurrence of ``event``; die if the plan says so."""
        if not self.active:
            return
        plan = self._plan
        if plan.when == "random":
            if event == "sync" and self._rng.random() < plan.probability:
                os._exit(plan.exit_code)
            return
        if event != plan.when:
            return
        count = self._counts.get(event, 0) + 1
        self._counts[event] = count
        if count == plan.at_count and (
            plan.probability >= 1.0 or self._rng.random() < plan.probability
        ):
            os._exit(plan.exit_code)

    def observe_round(self, worker: Worker) -> None:
        """Round-boundary triggers: mid-spawn cursor, non-empty L_file."""
        if not self.active:
            return
        when = self._plan.when
        if when == "spawn":
            if 0 < worker.spawn_cursor() < worker.num_local_vertices:
                self.fire("spawn")
        elif when == "spill":
            if len(worker.l_file) > 0:
                self.fire("spill")


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_main(
    worker_id,
    config,
    app_factory,
    csr_meta,
    data_queues,
    conn,
    spill_root,
    snapshot=None,
    global_value=None,
    incarnation=0,
):
    """Entry point of one worker process.

    Steps its worker's components (comm service, comper engines, GC)
    round-robin — the per-machine layout of the serial runtime, but with
    every machine on its own core — and answers control commands from
    the parent between rounds.  The spill directory lives under a
    parent-owned root, so a ``terminate()`` during recovery cannot leak
    it.  While *quiesced* (checkpoint barrier) only the comm service
    steps: pulls keep being served and responses delivered, but no new
    work starts, so the wire drains to a provably empty state.
    """
    csr = None
    worker = None
    try:
        csr = SharedCSR.attach(csr_meta)
        metrics = MetricsRegistry()
        transport = ProcessTransport(
            worker_id,
            data_queues,
            metrics=metrics,
            max_batch_messages=config.ipc_batch_max_messages,
            wire_format=config.ipc_wire_format,
        )
        worker = Worker(
            worker_id=worker_id,
            num_workers=config.num_workers,
            config=config,
            app_factory=app_factory,
            transport=transport,
            metrics=metrics,
            spill_dir=Path(spill_root),
        )
        worker.load_shared(csr)
        if snapshot is not None:
            restore_worker(worker, snapshot)
            # Counters resume from the barrier's balanced values; the
            # fresh queues are empty, so sent==received still means
            # "wire empty" to the termination detector.
            transport.sent_count = snapshot.sent
            transport.received_count = snapshot.received
        if global_value is not None:
            worker.aggregator.publish_global(global_value)
        injector = _FailureInjector(config.failure_plan, worker_id, incarnation)

        # Adaptive idle wait: back off exponentially while nothing
        # happens, waking promptly on either a control command or an
        # incoming data-queue message (selected together via
        # multiprocessing.connection.wait).  On the transition into a
        # fully drained state, send an unsolicited ("wake", wid) so the
        # parent runs its termination sweeps immediately instead of a
        # sync period later.
        own_queue = data_queues[worker_id]
        queue_reader = getattr(own_queue, "_reader", None)
        wait_on = [conn] if queue_reader is None else [conn, queue_reader]
        backoff = config.idle_sleep_s
        was_drained = False

        quiesced = False
        while True:
            worked = worker.comm.step()
            if not quiesced:
                # Run a burst of engine steps per control-plane round:
                # the inbox poll (an Empty-exception probe on an
                # mp.Queue) and the conn.poll syscall cost more than a
                # cheap task iteration, so paying them once per step
                # made the 1-worker process runtime measurably slower
                # than serial.  A burst amortizes that fixed cost while
                # also letting parked tasks' requests accumulate into
                # fewer, larger flush batches.  The burst ends early the
                # moment no engine makes progress, so pull latency only
                # grows while there is local work to overlap it with.
                for _ in range(_ENGINE_BURST_STEPS):
                    stepped = False
                    for engine in worker.engines:
                        stepped = engine.step() or stepped
                    # GC and the failure injector keep per-step (not
                    # per-burst) granularity: spill pressure must be
                    # relieved as it builds, and injection triggers
                    # count scheduler rounds *observing* a transient
                    # condition (mid-spawn cursor, fresh spill) that
                    # can appear and clear within one burst.
                    stepped = worker.gc_step() or stepped
                    injector.observe_round(worker)
                    worked = worked or stepped
                    if not stepped:
                        break

            while conn.poll(0):
                cmd = conn.recv()
                tag = cmd[0]
                if tag == "sync":
                    # Injected death *before* the reply: the master is
                    # left waiting mid-protocol, like a machine loss.
                    injector.fire("sync")
                    worker.aggregator.publish_global(cmd[1])
                    # This loop is the process's only cache-mutating
                    # thread, so flushing here makes s_cache exact and
                    # the lock-acquisition metric current at every sync.
                    worker.cache.flush_local_counter()
                    worker.cache.commit_lock_metrics()
                    worker.update_memory_gauge()
                    transport.flush_outgoing()
                    conn.send(_Status(
                        worker_id=worker_id,
                        tasks_in_memory=worker.tasks_in_memory(),
                        tasks_on_disk=len(worker.l_file),
                        unspawned=worker.unspawned_count(),
                        outgoing=(worker.comm.pending_outgoing()
                                  + transport.pending_unflushed()),
                        sent=transport.sent_count,
                        received=transport.received_count,
                        progress=worker.progress.value,
                        workload=worker.remaining_workload_estimate(),
                        partial=worker.aggregator.take_partial(),
                    ))
                elif tag == "steal":
                    injector.fire("steal")
                    _tag, thief_id, max_tasks = cmd
                    payload_info = worker.l_file.take_payload()
                    if payload_info is None:
                        payload_info = worker.spawn_batch_payload(max_tasks)
                    moved = 0
                    if payload_info is not None:
                        payload, moved = payload_info
                        transport.send(TaskBatchTransfer(
                            src=worker_id, dst=thief_id,
                            payload=payload, num_tasks=moved,
                        ))
                        transport.flush_outgoing()
                    conn.send(("stolen", moved))
                elif tag == "quiesce":
                    quiesced = True
                    conn.send(("quiesced", worker_id))
                elif tag == "qstatus":
                    transport.flush_outgoing()
                    conn.send((
                        "qstatus", worker_id,
                        transport.sent_count, transport.received_count,
                        worker.comm.pending_outgoing()
                        + transport.pending_unflushed(),
                    ))
                elif tag == "checkpoint":
                    snap = snapshot_worker(worker)
                    snap.partial = worker.aggregator.take_partial()
                    snap.sent = transport.sent_count
                    snap.received = transport.received_count
                    conn.send(snap)
                elif tag == "resume":
                    worker.aggregator.publish_global(cmd[1])
                    quiesced = False
                    conn.send(("resumed", worker_id))
                elif tag == "stop":
                    worker.cache.flush_local_counter()
                    worker.cache.commit_lock_metrics()
                    worker.update_memory_gauge()
                    conn.send(_Final(
                        worker_id=worker_id,
                        outputs=worker.outputs(),
                        metrics=metrics.snapshot(),
                        partial=worker.aggregator.take_partial(),
                    ))
                    return
                else:
                    raise GThinkerError(f"unknown control command {tag!r}")

            if worked:
                backoff = config.idle_sleep_s
                was_drained = False
            else:
                drained = (
                    not quiesced
                    and worker.tasks_in_memory() == 0
                    and len(worker.l_file) == 0
                    and worker.unspawned_count() == 0
                    and worker.comm.pending_outgoing() == 0
                    and transport.pending_unflushed() == 0
                )
                if drained and not was_drained:
                    conn.send(("wake", worker_id))
                was_drained = drained
                # Block until a command or data arrives, up to backoff.
                mp_connection.wait(wait_on, timeout=backoff)
                backoff = min(backoff * 2, config.idle_backoff_max_s)
    except BaseException as exc:
        try:
            conn.send(("error", worker_id, type(exc).__name__,
                       "".join(traceback.format_exception(type(exc), exc,
                                                          exc.__traceback__))))
        except Exception:
            pass
    finally:
        if worker is not None:
            worker.cleanup()
        if csr is not None:
            csr.close()
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side master
# ---------------------------------------------------------------------------


class _ProcessMaster:
    """Drives the control plane: syncs, steals, checkpoints, recovery.

    Owns the worker set (queues, pipes, processes) so it can tear the
    whole set down and respawn it from the last barrier snapshot when a
    worker is lost.
    """

    def __init__(
        self,
        ctx,
        config: GThinkerConfig,
        app_factory,
        csr_meta,
        spill_root: Path,
        join_timeout_s: float,
        checkpoint_path: Optional[str] = None,
        abort_after_rounds: Optional[int] = None,
    ) -> None:
        self.ctx = ctx
        self.config = config
        self.app_factory = app_factory
        self.csr_meta = csr_meta
        self.spill_root = spill_root
        self.join_timeout_s = join_timeout_s
        self.checkpoint_path = checkpoint_path
        self.abort_after_rounds = abort_after_rounds
        self.metrics = MetricsRegistry()
        self.global_aggregator = GlobalAggregator(app_factory().make_aggregator())
        self.procs: List = []
        self.conns: List = []
        self.data_queues: List = []
        self._incarnation = 0
        self._epoch = 0
        self._last_checkpoint: Optional[JobCheckpoint] = None
        self._deadline = float("inf")

    # -- worker-set lifecycle ---------------------------------------------

    def start(self, checkpoint: Optional[JobCheckpoint] = None) -> None:
        """Spawn the initial worker set, optionally seeded from a shard."""
        self._last_checkpoint = checkpoint
        if checkpoint is not None:
            self._epoch = checkpoint.epoch
        self._spawn_workers()

    def _spawn_workers(self) -> None:
        config = self.config
        ckpt = self._last_checkpoint
        # The aggregator rolls back with the workers: partials folded
        # after the barrier belong to work that will be redone.
        self.global_aggregator = GlobalAggregator(
            self.app_factory().make_aggregator()
        )
        if ckpt is not None:
            self.global_aggregator.set_value(ckpt.aggregator_global)
        global_value = self.global_aggregator.value if ckpt is not None else None
        # Fresh queues every incarnation: batches sent before the loss
        # belong to the rolled-back epoch and must not be delivered.
        self.data_queues = [self.ctx.Queue() for _ in range(config.num_workers)]
        self.procs, self.conns = [], []
        for wid in range(config.num_workers):
            parent_conn, child_conn = self.ctx.Pipe()
            snap = ckpt.worker_snapshots[wid] if ckpt is not None else None
            proc = self.ctx.Process(
                target=_worker_main,
                args=(wid, config, self.app_factory, self.csr_meta,
                      self.data_queues, child_conn, str(self.spill_root),
                      snap, global_value, self._incarnation),
                name=f"gthinker-worker-{wid}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.procs.append(proc)
            self.conns.append(parent_conn)

    def _terminate_workers(self) -> None:
        for conn in self.conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for q in self.data_queues:
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self.procs, self.conns, self.data_queues = [], [], []

    def _recover(self) -> None:
        """Global rollback: respawn everything from the last barrier."""
        self._terminate_workers()
        self._incarnation += 1
        self.metrics.add("ft:recoveries")
        self._spawn_workers()

    def shutdown(self) -> None:
        self._terminate_workers()

    # -- plumbing ---------------------------------------------------------

    def _recv(self, worker_id: int, timeout: Optional[float] = None):
        if timeout is None:
            timeout = self.config.control_reply_timeout_s
        conn = self.conns[worker_id]
        deadline = time.monotonic() + timeout
        poll_s = 0.002
        while not conn.poll(poll_s):
            # Exponential backoff on the control plane: spin tightly for
            # prompt replies, back off towards 100ms for slow ones.
            poll_s = min(poll_s * 2, 0.1)
            if not self.procs[worker_id].is_alive():
                # Exit may have raced a final message into the pipe.
                if conn.poll(0.25):
                    break
                raise WorkerProcessError(
                    worker_id,
                    f"died with exit code {self.procs[worker_id].exitcode} "
                    f"without reporting an error",
                    recoverable=True,
                )
            if time.monotonic() > deadline:
                raise WorkerProcessError(
                    worker_id,
                    f"no control-plane reply within {timeout}s",
                    recoverable=True,
                )
        try:
            msg = conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerProcessError(
                worker_id, "control pipe closed while receiving",
                recoverable=True,
            ) from exc
        if isinstance(msg, tuple) and msg and msg[0] == "error":
            _tag, wid, exc_type, tb = msg
            # The worker's own code raised: rolling back and redoing the
            # same work would fail identically, so this is final.
            raise WorkerProcessError(
                wid, f"{exc_type} raised:\n{tb}", recoverable=False
            )
        if isinstance(msg, tuple) and msg and msg[0] == "wake":
            # Unsolicited idle notification racing a request-reply
            # exchange; the reply we are waiting for is still behind it.
            return self._recv(worker_id, timeout)
        return msg

    def _send(self, worker_id: int, cmd) -> None:
        try:
            self.conns[worker_id].send(cmd)
        except (BrokenPipeError, OSError) as exc:
            # The worker died.  Drain its pipe looking for the error
            # report — a late _Status or other stale reply must not
            # shadow the real traceback — and chain the pipe error.
            conn = self.conns[worker_id]
            deadline = time.monotonic() + _ERROR_DRAIN_S
            while time.monotonic() < deadline:
                try:
                    if not conn.poll(0.05):
                        continue
                    msg = conn.recv()
                except (EOFError, OSError):
                    break
                if isinstance(msg, tuple) and msg and msg[0] == "error":
                    _tag, wid, exc_type, tb = msg
                    raise WorkerProcessError(
                        wid, f"{exc_type} raised:\n{tb}", recoverable=False
                    ) from exc
                # else: a stale pre-death reply; keep draining.
            raise WorkerProcessError(
                worker_id, "control pipe closed unexpectedly",
                recoverable=True,
            ) from exc

    # -- protocol ---------------------------------------------------------

    def _sweep(self) -> List[_Status]:
        value = self.global_aggregator.value
        for wid in range(len(self.conns)):
            self._send(wid, ("sync", value))
        statuses = []
        for wid in range(len(self.conns)):
            msg = self._recv(wid)
            if not isinstance(msg, _Status):
                raise WorkerProcessError(
                    wid, f"expected a status report, got {type(msg).__name__}"
                )
            statuses.append(msg)
        for s in statuses:
            self.global_aggregator.fold(s.partial)
        return statuses

    def _plan_steals(self, statuses: List[_Status]) -> None:
        """Workload-proportional steal plan with ping-pong hysteresis.

        Mirrors :meth:`repro.core.master.Master._plan_and_execute_steals`:
        the per-pair transfer is ``max(batch, gap // 4)`` capped at
        ``steal_batches`` batches (halving the gap without overshoot),
        and a pair that moved work one way in the previous sweep is not
        reversed in this one.
        """
        if not self.config.steal_enabled or len(statuses) < 2:
            return
        estimates = [[s.workload, s.worker_id] for s in statuses]
        batch = self.config.task_batch_size
        cap = self.config.steal_batches * batch
        prev_pairs = getattr(self, "_last_steal_pairs", frozenset())
        pairs = set()
        for _ in range(self.config.steal_batches):
            estimates.sort()
            low, high = estimates[0], estimates[-1]
            gap = high[0] - low[0]
            if gap <= 2 * batch:
                break
            if (low[1], high[1]) in prev_pairs:
                break
            amount = max(batch, min(gap // 4, cap))
            self._send(high[1], ("steal", low[1], amount))
            reply = self._recv(high[1])
            moved = reply[1] if isinstance(reply, tuple) else 0
            if moved == 0:
                break
            pairs.add((high[1], low[1]))
            low[0] += moved
            high[0] -= moved
            self.metrics.add("steal:batches")
            self.metrics.add("steal:tasks", moved)
        self._last_steal_pairs = frozenset(pairs)

    def _checkpoint(self) -> None:
        """The sync-barrier checkpoint protocol (see module docstring)."""
        n = len(self.conns)
        for wid in range(n):
            self._send(wid, ("quiesce",))
        for wid in range(n):
            self._recv(wid)  # ("quiesced", wid)
        # Settle the wire: with engines paused, only in-transit pulls and
        # responses remain; they drain in finitely many comm steps.  When
        # globally sent == received with nothing buffered on any sender,
        # no message exists in any queue (and every parked task has its
        # responses delivered), so the snapshot set is closed.
        while True:
            replies = []
            for wid in range(n):
                self._send(wid, ("qstatus",))
            for wid in range(n):
                replies.append(self._recv(wid))
            sent = sum(r[2] for r in replies)
            received = sum(r[3] for r in replies)
            pending = sum(r[4] for r in replies)
            if sent == received and pending == 0:
                break
            if time.monotonic() > self._deadline:
                raise GThinkerError(
                    "checkpoint barrier did not settle before the job deadline"
                )
            time.sleep(0.001)
        snaps: List[WorkerSnapshot] = []
        for wid in range(n):
            self._send(wid, ("checkpoint",))
        for wid in range(n):
            msg = self._recv(wid)
            if not isinstance(msg, WorkerSnapshot):
                raise WorkerProcessError(
                    wid, f"expected a worker snapshot, got {type(msg).__name__}"
                )
            snaps.append(msg)
        for snap in snaps:
            # Fold the barrier partials now; clear them so a restore
            # cannot double-apply what is already in aggregator_global.
            self.global_aggregator.fold(snap.partial)
            snap.partial = None
        self._epoch += 1
        ckpt = JobCheckpoint(
            worker_snapshots=snaps,
            aggregator_global=self.global_aggregator.value,
            num_workers=n,
            compers_per_worker=self.config.compers_per_worker,
            epoch=self._epoch,
        )
        self._last_checkpoint = ckpt
        if self.checkpoint_path:
            ckpt.save(self.checkpoint_path)
        self.metrics.add("ft:checkpoints")
        value = self.global_aggregator.value
        for wid in range(n):
            self._send(wid, ("resume", value))
        for wid in range(n):
            self._recv(wid)  # ("resumed", wid)

    def _wait_for_wake(self, timeout: float) -> bool:
        """Sleep up to ``timeout``, returning early (True) on a worker's
        unsolicited ``("wake", wid)`` idle notification.

        Anything else arriving out of band is an error report (raised
        here) or a pipe closure (raised as a recoverable loss).  Real
        protocol replies cannot appear: the control plane is strictly
        request-reply outside this window.
        """
        try:
            ready = mp_connection.wait(self.conns, timeout=timeout)
        except OSError:  # a pipe died mid-wait; the next sweep reports it
            return True
        woke = False
        for conn in ready:
            wid = self.conns.index(conn)
            if not self.procs[wid].is_alive() and not conn.poll(0):
                raise WorkerProcessError(
                    wid,
                    f"died with exit code {self.procs[wid].exitcode} "
                    f"without reporting an error",
                    recoverable=True,
                )
            try:
                msg = conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerProcessError(
                    wid, "control pipe closed while idle",
                    recoverable=True,
                ) from exc
            if isinstance(msg, tuple) and msg and msg[0] == "error":
                _tag, ewid, exc_type, tb = msg
                raise WorkerProcessError(
                    ewid, f"{exc_type} raised:\n{tb}", recoverable=False
                )
            if isinstance(msg, tuple) and msg and msg[0] == "wake":
                woke = True
        return woke

    def _run_to_completion(self) -> List[_Final]:
        prev_idle = False
        prev_progress = -1
        sweeps = 0
        sweep_wait = self.config.idle_sleep_s
        while True:
            statuses = self._sweep()
            sweeps += 1
            self._plan_steals(statuses)
            every = self.config.checkpoint_every_syncs
            if every > 0 and sweeps % every == 0:
                self._checkpoint()
            if (self.abort_after_rounds is not None
                    and sweeps >= self.abort_after_rounds):
                # Checked after the checkpoint cadence so an aborted job
                # leaves a shard behind for resume_job.
                raise JobAbortedError(
                    f"process job aborted after {sweeps} sync sweeps"
                )
            idle = (
                all(
                    s.tasks_in_memory == 0 and s.tasks_on_disk == 0
                    and s.unspawned == 0 and s.outgoing == 0
                    for s in statuses
                )
                and sum(s.sent for s in statuses)
                == sum(s.received for s in statuses)
            )
            progress = sum(s.progress for s in statuses)
            if idle and prev_idle and progress == prev_progress:
                break
            prev_idle, prev_progress = idle, progress
            if time.monotonic() > self._deadline:
                raise GThinkerError(
                    f"process job exceeded {self.join_timeout_s}s"
                )
            if idle:
                # First idle observation: run the confirming sweep right
                # away instead of burning a whole sync period — this is
                # most of the fixed-cadence latency on short jobs.
                sweep_wait = self.config.idle_sleep_s
                continue
            if self._wait_for_wake(sweep_wait):
                sweep_wait = self.config.idle_sleep_s
            else:
                sweep_wait = min(sweep_wait * 2,
                                 self.config.aggregator_sync_period_s)

        finals: List[_Final] = []
        for wid in range(len(self.conns)):
            self._send(wid, ("stop",))
        for wid in range(len(self.conns)):
            msg = self._recv(wid)
            if not isinstance(msg, _Final):
                raise WorkerProcessError(
                    wid, f"expected a final report, got {type(msg).__name__}"
                )
            # The paper's closing rule: one more aggregation pass so data
            # from every task is folded before the job result is read.
            self.global_aggregator.fold(msg.partial)
            finals.append(msg)
        return finals

    def run(self) -> List[_Final]:
        """Drive the job to completion, recovering lost workers."""
        self._deadline = time.monotonic() + self.join_timeout_s
        attempts = 0
        while True:
            try:
                return self._run_to_completion()
            except WorkerProcessError as exc:
                attempts += 1
                if not exc.recoverable or attempts > self.config.max_worker_restarts:
                    raise
                delay = self.config.worker_restart_backoff_s * (2 ** (attempts - 1))
                if delay > 0:
                    time.sleep(delay)
                self._recover()


# ---------------------------------------------------------------------------
# The executor registered as runtime="process"
# ---------------------------------------------------------------------------


class ProcessExecutor:
    """``execute(JobRequest) -> JobResult`` via worker processes."""

    def __init__(self, join_timeout_s: float = 600.0) -> None:
        self.join_timeout_s = join_timeout_s

    def execute(self, request: JobRequest):
        from .job import JobResult  # deferred: job.py imports us lazily

        config = request.config
        app_factory = request.app_factory
        try:
            pickle.dumps(app_factory)
        except Exception as exc:
            raise GThinkerError(
                f"runtime='process' requires a picklable app_factory "
                f"(a Comper class or functools.partial, not a lambda or "
                f"closure): {exc!r}"
            ) from exc

        ckpt = request.checkpoint
        if ckpt is not None and ckpt.num_workers != config.num_workers:
            raise CheckpointError(
                f"checkpoint was taken with {ckpt.num_workers} workers, "
                f"job has {config.num_workers}"
            )

        graph = request.graph
        if isinstance(graph, ShardedGraphStore):
            graph = graph.load_full_graph()
        if not isinstance(graph, Graph):
            raise TypeError(f"unsupported graph source {type(request.graph)!r}")

        ctx = mp.get_context(
            config.process_start_method or _default_start_method()
        )
        started = time.perf_counter()
        csr = SharedCSR.from_graph(graph)
        # The parent owns the spill root: worker processes can be
        # terminate()d mid-recovery, so they must not own tempdirs.
        owns_spill = config.spill_dir is None
        spill_root = Path(config.spill_dir) if config.spill_dir else Path(
            tempfile.mkdtemp(prefix="gthinker-spill-proc-")
        )
        master = _ProcessMaster(
            ctx=ctx,
            config=config,
            app_factory=app_factory,
            csr_meta=csr.meta,
            spill_root=spill_root,
            join_timeout_s=self.join_timeout_s,
            checkpoint_path=request.checkpoint_path,
            abort_after_rounds=request.abort_after_rounds,
        )
        try:
            master.start(checkpoint=ckpt)
            finals = master.run()

            merged = MetricsRegistry()
            merged.merge_from(master.metrics)
            outputs: List[Any] = []
            for final in sorted(finals, key=lambda f: f.worker_id):
                merged.merge_from(MetricsRegistry.from_snapshot(final.metrics))
                outputs.extend(final.outputs)
            for proc in master.procs:
                proc.join(timeout=10.0)
            return JobResult(
                aggregate=master.global_aggregator.value,
                outputs=outputs,
                metrics=merged.snapshot(),
                elapsed_s=time.perf_counter() - started,
                num_workers=config.num_workers,
                compers_per_worker=config.compers_per_worker,
            )
        finally:
            master.shutdown()
            if owns_spill:
                shutil.rmtree(spill_root, ignore_errors=True)
            csr.close()
            csr.unlink()
