"""The ``runtime="process"`` backend: real CPU parallelism.

The paper's headline claim is *CPU-bound* execution; the threaded
runtime cannot show it because the GIL serializes the mining work.  This
backend runs one OS process per worker:

* the graph lives in :class:`~repro.graph.csr.SharedCSR` shared-memory
  segments — every worker maps it read-only at zero copy and
  materializes only its own hash partition's rows, lazily;
* inter-worker vertex pulls/responses travel over
  :class:`~repro.net.transport.ProcessTransport` — batched per
  destination, drained through ``multiprocessing`` queues (the paper's
  batched sending applied to IPC);
* a control plane of per-worker pipes carries the master protocol:
  periodic syncs (aggregator partials up, global value down, status
  snapshot for termination detection), master-coordinated steal
  commands, and the final report (outputs + metrics snapshot), with each
  worker's :class:`~repro.core.metrics.MetricsRegistry` merged into the
  parent via ``merge_from`` at join time.

Termination mirrors :class:`~repro.core.master.Master`'s double
snapshot: two consecutive syncs must observe every worker drained
(no tasks in memory / on disk / unspawned, no queued or buffered
outgoing messages), a globally balanced ``sent == received`` message
count, and an unchanged progress counter between the observations.

Capabilities: protocol checking works (each process checks its own
worker); checkpointing, failure injection and resume do not — the
parent cannot quiesce-and-introspect workers it does not share memory
with, and ``run_job``/``resume_job`` reject those combinations with
:class:`~repro.core.errors.UnsupportedRuntimeFeature` before any process
is spawned.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import shutil
import tempfile
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..graph.csr import SharedCSR
from ..graph.graph import Graph
from ..graph.io import ShardedGraphStore
from ..net.message import TaskBatchTransfer
from ..net.transport import ProcessTransport
from .aggregator import GlobalAggregator
from .errors import GThinkerError, WorkerProcessError
from .metrics import MetricsRegistry
from .runtime import JobRequest
from .worker import Worker

__all__ = ["ProcessExecutor"]

#: Idle backoff inside a worker process when a round does no work.
_IDLE_SLEEP_S = 0.0005

#: How long the parent waits for any single control-plane reply.
_REPLY_TIMEOUT_S = 60.0


@dataclass
class _Status:
    """One worker's answer to a sync command."""

    worker_id: int
    tasks_in_memory: int
    tasks_on_disk: int
    unspawned: int
    outgoing: int
    sent: int
    received: int
    progress: int
    workload: int
    partial: Any


@dataclass
class _Final:
    """One worker's end-of-job report."""

    worker_id: int
    outputs: List[Any]
    metrics: Dict[str, float]
    partial: Any


def _default_start_method() -> str:
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_main(worker_id, config, app_factory, csr_meta, data_queues, conn):
    """Entry point of one worker process.

    Steps its worker's components (comm service, comper engines, GC)
    round-robin — the per-machine layout of the serial runtime, but with
    every machine on its own core — and answers control commands from
    the parent between rounds.
    """
    csr = None
    worker = None
    spill_root: Optional[Path] = None
    owns_spill = config.spill_dir is None
    try:
        csr = SharedCSR.attach(csr_meta)
        spill_root = Path(config.spill_dir) if config.spill_dir else Path(
            tempfile.mkdtemp(prefix=f"gthinker-spill-proc{worker_id}-")
        )
        metrics = MetricsRegistry()
        transport = ProcessTransport(
            worker_id,
            data_queues,
            metrics=metrics,
            max_batch_messages=config.ipc_batch_max_messages,
            wire_format=config.ipc_wire_format,
        )
        worker = Worker(
            worker_id=worker_id,
            num_workers=config.num_workers,
            config=config,
            app_factory=app_factory,
            transport=transport,
            metrics=metrics,
            spill_dir=spill_root,
        )
        worker.load_shared(csr)

        while True:
            worked = worker.comm.step()
            for engine in worker.engines:
                worked = engine.step() or worked
            worked = worker.gc_step() or worked

            while conn.poll(0):
                cmd = conn.recv()
                tag = cmd[0]
                if tag == "sync":
                    worker.aggregator.publish_global(cmd[1])
                    worker.update_memory_gauge()
                    transport.flush_outgoing()
                    conn.send(_Status(
                        worker_id=worker_id,
                        tasks_in_memory=worker.tasks_in_memory(),
                        tasks_on_disk=len(worker.l_file),
                        unspawned=worker.unspawned_count(),
                        outgoing=(worker.comm.pending_outgoing()
                                  + transport.pending_unflushed()),
                        sent=transport.sent_count,
                        received=transport.received_count,
                        progress=worker.progress.value,
                        workload=worker.remaining_workload_estimate(),
                        partial=worker.aggregator.take_partial(),
                    ))
                elif tag == "steal":
                    _tag, thief_id, max_tasks = cmd
                    payload_info = worker.l_file.take_payload()
                    if payload_info is None:
                        payload_info = worker.spawn_batch_payload(max_tasks)
                    moved = 0
                    if payload_info is not None:
                        payload, moved = payload_info
                        transport.send(TaskBatchTransfer(
                            src=worker_id, dst=thief_id,
                            payload=payload, num_tasks=moved,
                        ))
                        transport.flush_outgoing()
                    conn.send(("stolen", moved))
                elif tag == "stop":
                    worker.update_memory_gauge()
                    conn.send(_Final(
                        worker_id=worker_id,
                        outputs=worker.outputs(),
                        metrics=metrics.snapshot(),
                        partial=worker.aggregator.take_partial(),
                    ))
                    return
                else:
                    raise GThinkerError(f"unknown control command {tag!r}")

            if not worked:
                time.sleep(_IDLE_SLEEP_S)
    except BaseException as exc:
        try:
            conn.send(("error", worker_id, type(exc).__name__,
                       "".join(traceback.format_exception(type(exc), exc,
                                                          exc.__traceback__))))
        except Exception:
            pass
    finally:
        if worker is not None:
            worker.cleanup()
        if owns_spill and spill_root is not None:
            shutil.rmtree(spill_root, ignore_errors=True)
        if csr is not None:
            csr.close()
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side master
# ---------------------------------------------------------------------------


class _ProcessMaster:
    """Drives the control plane: syncs, steals, termination, shutdown."""

    def __init__(self, conns, procs, config, aggregator_prototype,
                 join_timeout_s: float) -> None:
        self.conns = conns
        self.procs = procs
        self.config = config
        self.global_aggregator = GlobalAggregator(aggregator_prototype)
        self.join_timeout_s = join_timeout_s
        self.metrics = MetricsRegistry()

    # -- plumbing ---------------------------------------------------------

    def _recv(self, worker_id: int, timeout: float = _REPLY_TIMEOUT_S):
        conn = self.conns[worker_id]
        deadline = time.monotonic() + timeout
        while not conn.poll(0.05):
            if not self.procs[worker_id].is_alive():
                # Exit may have raced a final message into the pipe.
                if conn.poll(0.25):
                    break
                raise WorkerProcessError(
                    worker_id,
                    f"died with exit code {self.procs[worker_id].exitcode} "
                    f"without reporting an error",
                )
            if time.monotonic() > deadline:
                raise WorkerProcessError(
                    worker_id, f"no control-plane reply within {timeout}s"
                )
        msg = conn.recv()
        if isinstance(msg, tuple) and msg and msg[0] == "error":
            _tag, wid, exc_type, tb = msg
            raise WorkerProcessError(wid, f"{exc_type} raised:\n{tb}")
        return msg

    def _send(self, worker_id: int, cmd) -> None:
        try:
            self.conns[worker_id].send(cmd)
        except (BrokenPipeError, OSError):
            # The worker died; surface its error report if it got one out.
            self._recv(worker_id, timeout=1.0)
            raise WorkerProcessError(
                worker_id, "control pipe closed unexpectedly"
            )

    # -- protocol ---------------------------------------------------------

    def _sweep(self) -> List[_Status]:
        value = self.global_aggregator.value
        for wid in range(len(self.conns)):
            self._send(wid, ("sync", value))
        statuses = []
        for wid in range(len(self.conns)):
            msg = self._recv(wid)
            if not isinstance(msg, _Status):
                raise WorkerProcessError(
                    wid, f"expected a status report, got {type(msg).__name__}"
                )
            statuses.append(msg)
        for s in statuses:
            self.global_aggregator.fold(s.partial)
        return statuses

    def _plan_steals(self, statuses: List[_Status]) -> None:
        if not self.config.steal_enabled or len(statuses) < 2:
            return
        estimates = [[s.workload, s.worker_id] for s in statuses]
        batch = self.config.task_batch_size
        for _ in range(self.config.steal_batches):
            estimates.sort()
            low, high = estimates[0], estimates[-1]
            if high[0] - low[0] <= 2 * batch:
                return
            self._send(high[1], ("steal", low[1], batch))
            reply = self._recv(high[1])
            moved = reply[1] if isinstance(reply, tuple) else 0
            if moved == 0:
                return
            low[0] += moved
            high[0] -= moved
            self.metrics.add("steal:batches")
            self.metrics.add("steal:tasks", moved)

    def run(self) -> List[_Final]:
        deadline = time.monotonic() + self.join_timeout_s
        prev_idle = False
        prev_progress = -1
        while True:
            statuses = self._sweep()
            self._plan_steals(statuses)
            idle = (
                all(
                    s.tasks_in_memory == 0 and s.tasks_on_disk == 0
                    and s.unspawned == 0 and s.outgoing == 0
                    for s in statuses
                )
                and sum(s.sent for s in statuses)
                == sum(s.received for s in statuses)
            )
            progress = sum(s.progress for s in statuses)
            if idle and prev_idle and progress == prev_progress:
                break
            prev_idle, prev_progress = idle, progress
            if time.monotonic() > deadline:
                raise GThinkerError(
                    f"process job exceeded {self.join_timeout_s}s"
                )
            time.sleep(self.config.aggregator_sync_period_s)

        finals: List[_Final] = []
        for wid in range(len(self.conns)):
            self._send(wid, ("stop",))
        for wid in range(len(self.conns)):
            msg = self._recv(wid)
            if not isinstance(msg, _Final):
                raise WorkerProcessError(
                    wid, f"expected a final report, got {type(msg).__name__}"
                )
            # The paper's closing rule: one more aggregation pass so data
            # from every task is folded before the job result is read.
            self.global_aggregator.fold(msg.partial)
            finals.append(msg)
        return finals


# ---------------------------------------------------------------------------
# The executor registered as runtime="process"
# ---------------------------------------------------------------------------


class ProcessExecutor:
    """``execute(JobRequest) -> JobResult`` via worker processes."""

    def __init__(self, join_timeout_s: float = 600.0) -> None:
        self.join_timeout_s = join_timeout_s

    def execute(self, request: JobRequest):
        from .job import JobResult  # deferred: job.py imports us lazily

        config = request.config
        app_factory = request.app_factory
        try:
            pickle.dumps(app_factory)
        except Exception as exc:
            raise GThinkerError(
                f"runtime='process' requires a picklable app_factory "
                f"(a Comper class or functools.partial, not a lambda or "
                f"closure): {exc!r}"
            ) from exc

        graph = request.graph
        if isinstance(graph, ShardedGraphStore):
            graph = graph.load_full_graph()
        if not isinstance(graph, Graph):
            raise TypeError(f"unsupported graph source {type(request.graph)!r}")

        ctx = mp.get_context(
            config.process_start_method or _default_start_method()
        )
        started = time.perf_counter()
        csr = SharedCSR.from_graph(graph)
        procs: List = []
        conns: List = []
        data_queues: List = []
        try:
            data_queues = [ctx.Queue() for _ in range(config.num_workers)]
            for wid in range(config.num_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(wid, config, app_factory, csr.meta,
                          data_queues, child_conn),
                    name=f"gthinker-worker-{wid}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                procs.append(proc)
                conns.append(parent_conn)

            master = _ProcessMaster(
                conns, procs, config,
                aggregator_prototype=app_factory().make_aggregator(),
                join_timeout_s=self.join_timeout_s,
            )
            finals = master.run()

            merged = MetricsRegistry()
            merged.merge_from(master.metrics)
            outputs: List[Any] = []
            for final in sorted(finals, key=lambda f: f.worker_id):
                merged.merge_from(MetricsRegistry.from_snapshot(final.metrics))
                outputs.extend(final.outputs)
            for proc in procs:
                proc.join(timeout=10.0)
            return JobResult(
                aggregate=master.global_aggregator.value,
                outputs=outputs,
                metrics=merged.snapshot(),
                elapsed_s=time.perf_counter() - started,
                num_workers=config.num_workers,
                compers_per_worker=config.compers_per_worker,
            )
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            for q in data_queues:
                try:
                    q.cancel_join_thread()
                    q.close()
                except Exception:  # pragma: no cover - teardown best effort
                    pass
            csr.close()
            csr.unlink()
