"""Exception hierarchy for the G-thinker reproduction."""

from __future__ import annotations

__all__ = [
    "GThinkerError",
    "JobAbortedError",
    "CheckpointError",
    "TaskError",
    "CacheProtocolError",
    "ProtocolViolation",
]


class GThinkerError(Exception):
    """Base class for all framework errors."""


class JobAbortedError(GThinkerError):
    """A job was aborted before completion (e.g. simulated failure)."""


class CheckpointError(GThinkerError):
    """A checkpoint could not be written or restored."""


class TaskError(GThinkerError):
    """A user UDF raised inside a task; wraps the original exception."""

    def __init__(self, task_id: int, message: str) -> None:
        super().__init__(f"task {task_id:#x}: {message}")
        self.task_id = task_id


class CacheProtocolError(GThinkerError):
    """The vertex-cache OP1-OP4 protocol was violated (internal bug guard)."""


class ProtocolViolation(GThinkerError):
    """The protocol checker (``repro.check``) detected a violation.

    Raised only when checking is enabled
    (``GThinkerConfig.check_protocols`` / ``REPRO_CHECK=1``); carries the
    subsystem the violation was observed in plus the offending task id
    and vertex where known.
    """

    def __init__(
        self,
        subsystem: str,
        message: str,
        task_id: int = -1,
        vertex: int = -1,
    ) -> None:
        detail = f"[{subsystem}] {message}"
        if task_id != -1:
            detail += f" (task {task_id:#x})"
        if vertex != -1:
            detail += f" (vertex {vertex})"
        super().__init__(detail)
        self.subsystem = subsystem
        self.task_id = task_id
        self.vertex = vertex
