"""Exception hierarchy for the G-thinker reproduction."""

from __future__ import annotations

__all__ = [
    "GThinkerError",
    "JobAbortedError",
    "CheckpointError",
    "TaskError",
    "CacheProtocolError",
    "ProtocolViolation",
    "JobCancelledError",
    "JobRejectedError",
    "ServiceError",
    "UnknownRuntimeError",
    "UnsupportedRuntimeFeature",
    "WireDecodeError",
    "WorkerProcessError",
]


class GThinkerError(Exception):
    """Base class for all framework errors."""


class WireDecodeError(GThinkerError, ValueError):
    """A wire payload could not be decoded.

    Raised by :mod:`repro.net.wire` (and the TCP framing layer) for
    truncated frames, frame lengths pointing past the end of the buffer,
    negative counts, unknown frame kinds, and non-GTWIRE payloads that
    also fail the pickle fallback.  A ``ValueError`` subclass so callers
    that guarded the old raw errors keep working, but typed so transports
    receiving bytes from a network can distinguish "corrupt payload"
    (drop/rollback) from a framework bug.
    """


class UnknownRuntimeError(GThinkerError, ValueError):
    """No runtime with that name is registered (see ``register_runtime``)."""


class UnsupportedRuntimeFeature(GThinkerError, ValueError):
    """A requested feature is not in the selected runtime's capabilities.

    Both :func:`~repro.core.job.run_job` and
    :func:`~repro.core.job.resume_job` raise exactly this type for every
    unsupported runtime/feature combination (checkpointing, failure
    injection, resume, ...), so callers have one error to catch.
    """


class WorkerProcessError(GThinkerError):
    """A worker process of the ``"process"`` runtime died or misbehaved.

    Carries the worker id and, when the child could still report it, the
    formatted traceback of the original exception.  ``recoverable``
    classifies the loss for the fault-tolerance layer: a process that
    vanished without an error report (killed, OOM, injected failure)
    is recoverable — the parent may respawn the worker set from the
    last sync-barrier checkpoint — while a worker that reported an
    exception from user/framework code is not (the same code would
    fail again after a rollback).
    """

    def __init__(
        self, worker_id: int, message: str, recoverable: bool = False
    ) -> None:
        super().__init__(f"worker process {worker_id}: {message}")
        self.worker_id = worker_id
        self.recoverable = recoverable


class JobAbortedError(GThinkerError):
    """A job was aborted before completion (e.g. simulated failure)."""


class CheckpointError(GThinkerError):
    """A checkpoint could not be written or restored."""


class ServiceError(GThinkerError):
    """Base class for job-service (``repro.service``) errors."""


class JobRejectedError(ServiceError):
    """The service refused to admit a job.

    Raised for a full admission queue (bounded depth — backpressure is
    explicit, never silent), an unknown app name, or malformed app
    parameters.  The message says which.
    """


class JobCancelledError(ServiceError):
    """The job was cancelled — while queued or mid-run.

    Raised by ``result()`` on a cancelled handle, and *inside* a running
    job by the control plane when its abort token is observed set at a
    sync boundary (see :class:`~repro.core.runtime.AbortToken`); the
    session layer translates that unwind into the ``cancelled`` terminal
    state rather than ``failed``.
    """


class TaskError(GThinkerError):
    """A user UDF raised inside a task; wraps the original exception."""

    def __init__(self, task_id: int, message: str) -> None:
        super().__init__(f"task {task_id:#x}: {message}")
        self.task_id = task_id


class CacheProtocolError(GThinkerError):
    """The vertex-cache OP1-OP4 protocol was violated (internal bug guard)."""


class ProtocolViolation(GThinkerError):
    """The protocol checker (``repro.check``) detected a violation.

    Raised only when checking is enabled
    (``GThinkerConfig.check_protocols`` / ``REPRO_CHECK=1``); carries the
    subsystem the violation was observed in plus the offending task id
    and vertex where known.
    """

    def __init__(
        self,
        subsystem: str,
        message: str,
        task_id: int = -1,
        vertex: int = -1,
    ) -> None:
        detail = f"[{subsystem}] {message}"
        if task_id != -1:
            detail += f" (task {task_id:#x})"
        if vertex != -1:
            detail += f" (vertex {vertex})"
        super().__init__(detail)
        self.subsystem = subsystem
        self.task_id = task_id
        self.vertex = vertex
