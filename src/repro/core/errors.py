"""Exception hierarchy for the G-thinker reproduction."""

from __future__ import annotations

__all__ = [
    "GThinkerError",
    "JobAbortedError",
    "CheckpointError",
    "TaskError",
    "CacheProtocolError",
]


class GThinkerError(Exception):
    """Base class for all framework errors."""


class JobAbortedError(GThinkerError):
    """A job was aborted before completion (e.g. simulated failure)."""


class CheckpointError(GThinkerError):
    """A checkpoint could not be written or restored."""


class TaskError(GThinkerError):
    """A user UDF raised inside a task; wraps the original exception."""

    def __init__(self, task_id: int, message: str) -> None:
        super().__init__(f"task {task_id:#x}: {message}")
        self.task_id = task_id


class CacheProtocolError(GThinkerError):
    """The vertex-cache OP1-OP4 protocol was violated (internal bug guard)."""
