"""The user-facing programming API (paper Fig. 4).

Users write a subgraph-mining algorithm by subclassing :class:`Comper`
and implementing two serial UDFs:

* :meth:`Comper.task_spawn` — how to create task(s) from a vertex in the
  local vertex table (call :meth:`Comper.add_task` per created task);
* :meth:`Comper.compute` — one iteration of a task; return ``True`` to
  be scheduled for another iteration (after requested vertices arrive),
  ``False`` when the task is finished.

Supporting classes mirror the paper's: :class:`VertexView` (a pulled
vertex with its adjacency list), :class:`Task` (owns a
:class:`~repro.core.subgraph.Subgraph` ``g``, a ``context``, and the
``pull`` primitive), :class:`Aggregator` and :class:`Trimmer`.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Generic, Iterable, List, NamedTuple, Optional, Sequence, Tuple, TypeVar

from .subgraph import Subgraph

__all__ = ["VertexView", "Task", "Comper", "Aggregator", "Trimmer", "MaxAggregator", "SumAggregator"]

A = TypeVar("A")


class VertexView(NamedTuple):
    """A read-only view of a vertex: id, label, and adjacency list.

    Elements of ``frontier`` in :meth:`Comper.compute`.  ``adj`` is a
    sorted read-only ``numpy.ndarray`` of int64 neighbor ids — a
    zero-copy view into the local vertex table / ``SharedCSR`` partition
    for local vertices, an owned array for cached remote ones.  (Plain
    tuples are still accepted when views are constructed by hand, e.g.
    in tests.)  UDFs must treat it as immutable and *copy what they need
    into the task's subgraph* if needed beyond the current iteration —
    the cache may evict the entry afterwards (the paper's contract: "the
    vertices in frontier are released by G-thinker right after compute()
    returns").  Because a live ndarray view keeps its backing buffer
    referenced, eviction never invalidates an array a task still holds.
    """

    id: int
    label: int
    adj: Sequence[int]  # numpy.ndarray[int64] on the hot path


class Task:
    """A unit of mining work: a subgraph ``g`` plus app-defined ``context``.

    ``pull(v)`` requests the adjacency list of ``v`` for the *next*
    iteration (the paper's task-based vertex pulling).  Pulls are
    deduplicated per iteration.  The pulled adjacency arrives in the
    next iteration's ``frontier`` as a :class:`VertexView` whose ``adj``
    is an int64 ndarray (see the VertexView immutability contract).
    """

    __slots__ = ("g", "context", "_pulls", "_pull_set", "task_id", "pulls_in_flight")

    def __init__(self, context: Any = None) -> None:
        self.g = Subgraph()
        self.context = context
        self._pulls: List[int] = []
        self._pull_set: set = set()
        self.task_id: int = -1  # assigned by the engine on first park
        # Engine bookkeeping: the P(t) of the iteration in progress.
        # Remote entries hold locks in the vertex cache while non-empty.
        self.pulls_in_flight: List[int] = []

    def pull(self, v: int) -> None:
        """Request ``Gamma(v)`` to be available in the next iteration."""
        v = int(v)  # normalize np.int64 ids iterated out of ndarray adjacency
        if v not in self._pull_set:
            self._pull_set.add(v)
            self._pulls.append(v)

    def take_pulls(self) -> List[int]:
        """Engine hook: drain the pulls requested during this iteration."""
        pulls, self._pulls, self._pull_set = self._pulls, [], set()
        return pulls

    def pending_pulls(self) -> Tuple[int, ...]:
        return tuple(self._pulls)

    def all_pending_pulls(self) -> Tuple[int, ...]:
        """Every vertex this task still needs (dedup, order-preserving).

        The union of ``pulls_in_flight`` — the P(t) of a parked
        iteration — and the pulls requested but not yet taken by the
        engine.  A task can hold both at once (parked on remote pulls
        while its compute queued more), so checkpointing must snapshot
        the union; either list alone silently drops vertices.
        """
        return tuple(dict.fromkeys(
            tuple(self.pulls_in_flight) + tuple(self._pulls)
        ))

    def memory_estimate_bytes(self) -> int:
        return 64 + self.g.memory_estimate_bytes() + 8 * len(self._pulls)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Task(id={self.task_id:#x}, |g|={len(self.g)}, pulls={len(self._pulls)})"


class Aggregator(abc.ABC, Generic[A]):
    """Commutative-monoid aggregation across all tasks of a job.

    Each worker holds a local partial; the master periodically folds the
    partials into a global value and republishes it (paper: aggregator
    threads synchronize "at a user-specified frequency, 1 s by default",
    plus a final synchronization before the job terminates).
    """

    @abc.abstractmethod
    def identity(self) -> A:
        """The monoid identity (empty partial)."""

    @abc.abstractmethod
    def combine(self, a: A, b: A) -> A:
        """Fold two partials; must be associative and commutative."""


class MaxAggregator(Aggregator[Any]):
    """Keeps the maximum element under a key function (default: len).

    Used by maximum-clique finding to track :math:`S_{max}`.
    """

    def __init__(self, key=len) -> None:
        self._key = key

    def identity(self):
        return None

    def combine(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a if self._key(a) >= self._key(b) else b


class SumAggregator(Aggregator[int]):
    """Integer sum (used by triangle counting and match counting)."""

    def identity(self) -> int:
        return 0

    def combine(self, a: int, b: int) -> int:
        return a + b


class Trimmer:
    """Adjacency-list trimming applied once, right after graph loading.

    The default keeps lists intact.  Subclasses override :meth:`trim`;
    e.g. the set-enumeration apps keep only larger-id neighbors
    (:class:`GtTrimmer` in :mod:`repro.apps.common`), and subgraph
    matching drops neighbors whose labels do not occur in the query.
    Trimming also shrinks what gets *responded to remote pulls*, which is
    the paper's stated motivation (reduce communication).

    ``adj`` may be a tuple or a sorted int64 ndarray (possibly a
    zero-copy ``SharedCSR`` view); implementations should return the
    same kind they were given — returning an ndarray *slice* keeps the
    trim zero-copy.
    """

    def trim(self, v: int, label: int, adj: Sequence[int]) -> Sequence[int]:
        return adj


class Comper(abc.ABC):
    """Base class for user algorithms (one instance per mining thread).

    The engine injects itself before any UDF runs; UDFs may use:

    * :meth:`add_task` — queue a newly created task,
    * :attr:`aggregator_value` / :meth:`aggregate` — read the latest
      globally synced aggregate / fold a value into the local partial,
    * :meth:`output` — emit a final result record,
    * :attr:`config` — the job's :class:`~repro.core.config.GThinkerConfig`.
    """

    def __init__(self) -> None:
        self._engine = None  # set by the runtime (ComperEngine)

    # -- wiring (engine-side) ------------------------------------------

    def bind_engine(self, engine) -> None:
        self._engine = engine

    # -- services available inside UDFs ----------------------------------

    def add_task(self, task: Task) -> None:
        """Add a created task to this comper's ``Q_task``."""
        self._engine.add_task(task)

    def aggregate(self, value: Any) -> None:
        """Fold ``value`` into this worker's local aggregator partial."""
        self._engine.aggregate(value)

    @property
    def aggregator_value(self) -> Any:
        """Latest *globally synced* aggregate combined with the local partial.

        For monotone aggregators (max-clique size) this is the freshest
        bound available for pruning.
        """
        return self._engine.aggregator_view()

    def output(self, record: Any) -> None:
        """Emit a result record (collected per worker, merged at job end)."""
        self._engine.output(record)

    @property
    def config(self):
        return self._engine.config

    # -- UDFs --------------------------------------------------------------

    @abc.abstractmethod
    def task_spawn(self, v: VertexView) -> None:
        """Create zero or more tasks from local vertex ``v``."""

    @abc.abstractmethod
    def compute(self, task: Task, frontier: Sequence[VertexView]) -> bool:
        """Process one iteration of ``task``.

        ``frontier[i]`` is the view of the ``i``-th vertex pulled in the
        previous iteration (same order as the ``pull`` calls).  Return
        ``True`` to run another iteration once newly pulled vertices
        arrive; ``False`` when the task is finished.
        """

    def spawn_flush(self) -> None:
        """Called once the local spawn cursor is exhausted.

        Apps that *bundle* several spawned vertices into one task (the
        paper's future-work item for low-degree vertices, after [38])
        buffer state across ``task_spawn`` calls; this hook lets them
        emit the final partial bundle.  The default does nothing.
        """

    # -- optional plug-ins ---------------------------------------------------

    def make_aggregator(self) -> Optional[Aggregator]:
        """Override to enable aggregation (return an Aggregator)."""
        return None

    def make_trimmer(self) -> Optional[Trimmer]:
        """Override to trim adjacency lists at load time."""
        return None
