"""G-thinker core: the CPU-bound task-based subgraph-mining engine."""

from .api import (
    Aggregator,
    Comper,
    MaxAggregator,
    SumAggregator,
    Task,
    Trimmer,
    VertexView,
)
from .config import (
    DiskModel,
    FailurePlanConfig,
    GThinkerConfig,
    MachineModel,
    NetworkModel,
)
from .errors import (
    CacheProtocolError,
    CheckpointError,
    GThinkerError,
    JobAbortedError,
    JobCancelledError,
    JobRejectedError,
    ServiceError,
    TaskError,
    UnknownRuntimeError,
    UnsupportedRuntimeFeature,
    WorkerProcessError,
)
from .job import JobResult, build_cluster, resolve_resume, resume_job, run_job
from .metrics import CacheStats, MetricsRegistry, WorkerMetrics
from .session import JobHandle, LocalJobHandle, Session
from .runtime import (
    JobRequest,
    RuntimeCapabilities,
    RuntimeSpec,
    available_runtimes,
    capability_matrix,
    get_runtime,
    register_runtime,
    unregister_runtime,
)
from .subgraph import Subgraph
from .vertex_cache import VertexCache

__all__ = [
    "Aggregator",
    "Comper",
    "MaxAggregator",
    "SumAggregator",
    "Task",
    "Trimmer",
    "VertexView",
    "DiskModel",
    "FailurePlanConfig",
    "GThinkerConfig",
    "MachineModel",
    "NetworkModel",
    "CacheProtocolError",
    "CheckpointError",
    "GThinkerError",
    "JobAbortedError",
    "JobCancelledError",
    "JobRejectedError",
    "ServiceError",
    "TaskError",
    "UnknownRuntimeError",
    "UnsupportedRuntimeFeature",
    "WorkerProcessError",
    "JobResult",
    "build_cluster",
    "resolve_resume",
    "resume_job",
    "run_job",
    "JobHandle",
    "LocalJobHandle",
    "Session",
    "CacheStats",
    "MetricsRegistry",
    "WorkerMetrics",
    "JobRequest",
    "RuntimeCapabilities",
    "RuntimeSpec",
    "available_runtimes",
    "capability_matrix",
    "get_runtime",
    "register_runtime",
    "unregister_runtime",
    "Subgraph",
    "VertexCache",
]
