"""G-thinker core: the CPU-bound task-based subgraph-mining engine."""

from .api import (
    Aggregator,
    Comper,
    MaxAggregator,
    SumAggregator,
    Task,
    Trimmer,
    VertexView,
)
from .config import (
    DiskModel,
    FailurePlanConfig,
    GThinkerConfig,
    MachineModel,
    NetworkModel,
)
from .errors import (
    CacheProtocolError,
    CheckpointError,
    GThinkerError,
    JobAbortedError,
    TaskError,
    UnknownRuntimeError,
    UnsupportedRuntimeFeature,
    WorkerProcessError,
)
from .job import JobResult, build_cluster, resume_job, run_job
from .metrics import CacheStats, MetricsRegistry, WorkerMetrics
from .runtime import (
    JobRequest,
    RuntimeCapabilities,
    RuntimeSpec,
    available_runtimes,
    capability_matrix,
    get_runtime,
    register_runtime,
    unregister_runtime,
)
from .subgraph import Subgraph
from .vertex_cache import VertexCache

__all__ = [
    "Aggregator",
    "Comper",
    "MaxAggregator",
    "SumAggregator",
    "Task",
    "Trimmer",
    "VertexView",
    "DiskModel",
    "FailurePlanConfig",
    "GThinkerConfig",
    "MachineModel",
    "NetworkModel",
    "CacheProtocolError",
    "CheckpointError",
    "GThinkerError",
    "JobAbortedError",
    "TaskError",
    "UnknownRuntimeError",
    "UnsupportedRuntimeFeature",
    "WorkerProcessError",
    "JobResult",
    "build_cluster",
    "resume_job",
    "run_job",
    "CacheStats",
    "MetricsRegistry",
    "WorkerMetrics",
    "JobRequest",
    "RuntimeCapabilities",
    "RuntimeSpec",
    "available_runtimes",
    "capability_matrix",
    "get_runtime",
    "register_runtime",
    "unregister_runtime",
    "Subgraph",
    "VertexCache",
]
