"""Per-worker communication service (paper: "communication threads").

Compers append vertex pulls here; the service flushes them as batched
:class:`~repro.net.message.RequestBatch` messages (desirability 5 —
batching to combat round-trip time), answers incoming requests from the
local vertex table, and lands incoming responses in the vertex cache,
notifying the pending tasks of the owning compers.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict, List, Optional

from ..net.message import Message, RequestBatch, ResponseBatch, TaskBatchTransfer
from .containers import comper_of_task_id
from .errors import GThinkerError, TaskError

__all__ = ["CommService"]

#: Cap on vertices per response batch so one huge request batch does not
#: produce one giant message (mirrors MTU-ish chunking).
RESPONSE_CHUNK = 4096


class CommService:
    """Outgoing request batching + inbound message dispatch for one worker."""

    def __init__(self, worker) -> None:
        self.worker = worker
        self._lock = threading.Lock()
        self._outgoing: Dict[int, List[int]] = defaultdict(list)
        self._bytes_served = 0

    # -- comper-side -------------------------------------------------------

    def queue_request(self, v: int) -> None:
        """Append a vertex pull for batched transmission."""
        dst = self.worker.owner_of(v)
        with self._lock:
            self._outgoing[dst].append(v)
        self.worker.metrics.add("comm:requests_queued")

    def pending_outgoing(self) -> int:
        with self._lock:
            return sum(len(vs) for vs in self._outgoing.values())

    # -- service loop ----------------------------------------------------------

    def step(self, now: float = 0.0) -> bool:
        """Flush outgoing batches and dispatch every available message."""
        worked = self._flush(now)
        # Batching transports (ProcessTransport) hold sent messages in
        # per-destination buffers; drain them every service step so a
        # quiet worker still ships what its compers queued last round.
        self.worker.transport.flush_outgoing()
        messages = self.worker.transport.poll(self.worker.worker_id, now=now)
        for msg in messages:
            self._dispatch(msg, now)
        return worked or bool(messages)

    def _flush(self, now: float) -> bool:
        with self._lock:
            batches = {dst: vs for dst, vs in self._outgoing.items() if vs}
            self._outgoing.clear()
        for dst, vertex_ids in batches.items():
            msg = RequestBatch(src=self.worker.worker_id, dst=dst, vertex_ids=vertex_ids)
            self.worker.transport.send(msg, now=now)
        return bool(batches)

    def _dispatch(self, msg: Message, now: float) -> None:
        """Dispatch one inbound message.

        Any protocol violation here (a misrouted arrival, an unknown
        vertex, a corrupt batch) is re-raised as a contextual
        :class:`TaskError` naming the message kind — in threaded mode
        this service loop is the worker's only request server, so a bare
        ``KeyError`` would otherwise surface as a dead daemon thread.
        """
        try:
            if isinstance(msg, RequestBatch):
                self._serve_requests(msg, now)
            elif isinstance(msg, ResponseBatch):
                self._receive_responses(msg)
            elif isinstance(msg, TaskBatchTransfer):
                self.worker.l_file.add_payload(msg.payload, msg.num_tasks)
                self.worker.note_progress()
            else:  # pragma: no cover - no other message kinds exist
                raise TypeError(f"unknown message type {type(msg)!r}")
        except (GThinkerError, TypeError):
            raise
        except Exception as exc:
            raise TaskError(
                -1,
                f"comm dispatch of {type(msg).__name__} "
                f"(worker {msg.src} -> {msg.dst}) failed: {exc!r}",
            ) from exc

    def _serve_requests(self, msg: RequestBatch, now: float) -> None:
        """Answer a pull batch from the local vertex table."""
        out: List = []
        for v in msg.vertex_ids:
            label, adj = self.worker.local_entry(v)
            out.append((v, label, adj))
            if len(out) >= RESPONSE_CHUNK:
                self.worker.transport.send(
                    ResponseBatch(src=self.worker.worker_id, dst=msg.src, vertices=out),
                    now=now,
                )
                out = []
        if out:
            self.worker.transport.send(
                ResponseBatch(src=self.worker.worker_id, dst=msg.src, vertices=out),
                now=now,
            )
        self.worker.metrics.add("comm:requests_served", len(msg.vertex_ids))

    def _receive_responses(self, msg: ResponseBatch) -> None:
        """Insert arrived vertices into the cache and wake waiting tasks."""
        for v, label, adj in msg.vertices:
            waiting = self.worker.cache.insert_response(v, label, adj)
            for task_id in waiting:
                try:
                    engine = self.worker.engine_by_global_id(
                        comper_of_task_id(task_id)
                    )
                    engine.on_vertex_arrival(task_id)
                except GThinkerError:
                    raise
                except Exception as exc:
                    # A waiting task id that resolves to no engine or no
                    # pending entry means task identity was corrupted
                    # somewhere upstream (e.g. an id that survived a
                    # spill/steal handoff).
                    raise TaskError(
                        task_id,
                        f"cannot deliver arrival of vertex {v} "
                        f"(ResponseBatch from worker {msg.src}): {exc}",
                    ) from exc
        self.worker.metrics.add("comm:responses_received", len(msg.vertices))
        self.worker.note_progress()
