"""Per-worker communication service (paper: "communication threads").

Compers append vertex pulls here; the service flushes them as batched
:class:`~repro.net.message.RequestBatch` messages (desirability 5 —
batching to combat round-trip time), answers incoming requests from the
local vertex table, and lands incoming responses in the vertex cache,
notifying the pending tasks of the owning compers.

The pull path is batch-first end to end:

* **queueing** dedups per destination — distinct tasks on different
  compers can ask for the same remote vertex in one flush window; only
  the first copy travels (``comm:requests_deduped`` counts the rest);
* **serving** answers a whole request batch as one struct-of-arrays
  :class:`~repro.net.message.ResponseBatch` (labels/degrees gathered
  into int64 arrays, all adjacency rows concatenated with a single
  ``np.concatenate``) so the GTWIRE1 encoder can dump it without a
  per-vertex loop;
* **landing** inserts a whole response batch through
  :meth:`~repro.core.vertex_cache.VertexCache.insert_responses`, one
  bucket-lock acquisition per touched bucket.

``time:comm_flush_s`` / ``time:comm_serve_s`` / ``time:comm_land_s``
timers attribute wall time to the three phases.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..net.message import Message, RequestBatch, ResponseBatch, TaskBatchTransfer
from .containers import comper_of_task_id
from .errors import GThinkerError, TaskError

__all__ = ["CommService"]

_EMPTY_ROW = np.empty(0, dtype=np.int64)


class CommService:
    """Outgoing request batching + inbound message dispatch for one worker."""

    def __init__(self, worker) -> None:
        self.worker = worker
        self._lock = threading.Lock()
        self._outgoing: Dict[int, List[int]] = defaultdict(list)
        # Per-destination membership of the *unflushed* buffer, for
        # dedup.  Cleared with the buffer at flush time: once a request
        # is on the wire the R-table is what suppresses re-requests.
        self._outgoing_sets: Dict[int, Set[int]] = defaultdict(set)
        self._bytes_served = 0
        cfg = worker.config
        #: Cap on vertices per response batch so one huge request batch
        #: does not produce one giant message (MTU-ish chunking).
        self._response_chunk = cfg.response_chunk
        self._bulk = cfg.bulk_cache_ops

    # -- comper-side -------------------------------------------------------

    def queue_request(self, v: int) -> None:
        """Append a vertex pull for batched transmission (dedup'd)."""
        dst = self.worker.owner_of(v)
        with self._lock:
            pending = self._outgoing_sets[dst]
            if v in pending:
                duplicate = True
            else:
                duplicate = False
                pending.add(v)
                self._outgoing[dst].append(v)
        if duplicate:
            self.worker.metrics.add("comm:requests_deduped")
        else:
            self.worker.metrics.add("comm:requests_queued")

    def queue_requests(self, vertices: Sequence[int]) -> None:
        """Bulk :meth:`queue_request`: one lock acquisition per call."""
        if not vertices:
            return
        queued = 0
        deduped = 0
        with self._lock:
            for v in vertices:
                dst = self.worker.owner_of(v)
                pending = self._outgoing_sets[dst]
                if v in pending:
                    deduped += 1
                    continue
                pending.add(v)
                self._outgoing[dst].append(v)
                queued += 1
        if queued:
            self.worker.metrics.add("comm:requests_queued", queued)
        if deduped:
            self.worker.metrics.add("comm:requests_deduped", deduped)

    def pending_outgoing(self) -> int:
        with self._lock:
            return sum(len(vs) for vs in self._outgoing.values())

    # -- service loop ----------------------------------------------------------

    def step(self, now: float = 0.0) -> bool:
        """Flush outgoing batches and dispatch every available message."""
        worked = self._flush(now)
        # Batching transports (ProcessTransport) hold sent messages in
        # per-destination buffers; drain them every service step so a
        # quiet worker still ships what its compers queued last round.
        self.worker.transport.flush_outgoing()
        messages = self.worker.transport.poll(self.worker.worker_id, now=now)
        for msg in messages:
            self._dispatch(msg, now)
        return worked or bool(messages)

    def _flush(self, now: float) -> bool:
        t0 = time.perf_counter()
        with self._lock:
            batches = {dst: vs for dst, vs in self._outgoing.items() if vs}
            self._outgoing.clear()
            self._outgoing_sets.clear()
        for dst, vertex_ids in batches.items():
            msg = RequestBatch(src=self.worker.worker_id, dst=dst, vertex_ids=vertex_ids)
            self.worker.transport.send(msg, now=now)
        if batches:
            self.worker.metrics.add("time:comm_flush_s", time.perf_counter() - t0)
        return bool(batches)

    def _dispatch(self, msg: Message, now: float) -> None:
        """Dispatch one inbound message.

        Any protocol violation here (a misrouted arrival, an unknown
        vertex, a corrupt batch) is re-raised as a contextual
        :class:`TaskError` naming the message kind — in threaded mode
        this service loop is the worker's only request server, so a bare
        ``KeyError`` would otherwise surface as a dead daemon thread.
        """
        try:
            if isinstance(msg, RequestBatch):
                self._serve_requests(msg, now)
            elif isinstance(msg, ResponseBatch):
                self._receive_responses(msg)
            elif isinstance(msg, TaskBatchTransfer):
                self.worker.l_file.add_payload(msg.payload, msg.num_tasks)
                self.worker.note_progress()
            else:  # pragma: no cover - no other message kinds exist
                raise TypeError(f"unknown message type {type(msg)!r}")
        except (GThinkerError, TypeError):
            raise
        except Exception as exc:
            raise TaskError(
                -1,
                f"comm dispatch of {type(msg).__name__} "
                f"(worker {msg.src} -> {msg.dst}) failed: {exc!r}",
            ) from exc

    def _serve_requests(self, msg: RequestBatch, now: float) -> None:
        """Answer a pull batch from the local vertex table.

        Duplicate vertex ids in the batch (possible when the requester
        ran without queue-side dedup, or mixed batches meet) are served
        once.  The reply is built structure-of-arrays: one label/degree
        gather plus a single ``np.concatenate`` over the T_local row
        views — the GTWIRE1 encoder then ships it without touching the
        rows again.
        """
        t0 = time.perf_counter()
        ids = msg.vertex_ids
        if len(set(ids)) != len(ids):
            unique = list(dict.fromkeys(ids))
            self.worker.metrics.add("comm:requests_deduped", len(ids) - len(unique))
            ids = unique
        local_entry = self.worker.local_entry
        chunk = self._response_chunk
        for start in range(0, len(ids), chunk):
            part = ids[start:start + chunk]
            rows = [local_entry(v) for v in part]
            ids_arr = np.asarray(part, dtype=np.int64)
            labels = np.fromiter(
                (label for label, _adj in rows), dtype=np.int64, count=len(part)
            )
            offsets = np.zeros(len(part) + 1, dtype=np.int64)
            np.cumsum(
                np.fromiter((len(adj) for _label, adj in rows),
                            dtype=np.int64, count=len(part)),
                out=offsets[1:],
            )
            if int(offsets[-1]):
                adj_concat = np.concatenate([adj for _label, adj in rows])
            else:
                adj_concat = _EMPTY_ROW
            self.worker.transport.send(
                ResponseBatch.from_soa(
                    self.worker.worker_id, msg.src,
                    ids=ids_arr, labels=labels,
                    adj_concat=adj_concat, offsets=offsets,
                ),
                now=now,
            )
        self.worker.metrics.add("comm:requests_served", len(ids))
        self.worker.metrics.add("time:comm_serve_s", time.perf_counter() - t0)

    def _receive_responses(self, msg: ResponseBatch) -> None:
        """Insert arrived vertices into the cache and wake waiting tasks."""
        t0 = time.perf_counter()
        if self._bulk:
            landed = self.worker.cache.insert_responses(msg.iter_rows())
        else:
            landed = [
                (v, self.worker.cache.insert_response(v, label, adj))
                for v, label, adj in msg.iter_rows()
            ]
        for v, waiting in landed:
            for task_id in waiting:
                try:
                    engine = self.worker.engine_by_global_id(
                        comper_of_task_id(task_id)
                    )
                    engine.on_vertex_arrival(task_id)
                except GThinkerError:
                    raise
                except Exception as exc:
                    # A waiting task id that resolves to no engine or no
                    # pending entry means task identity was corrupted
                    # somewhere upstream (e.g. an id that survived a
                    # spill/steal handoff).
                    raise TaskError(
                        task_id,
                        f"cannot deliver arrival of vertex {v} "
                        f"(ResponseBatch from worker {msg.src}): {exc}",
                    ) from exc
        self.worker.metrics.add("comm:responses_received", len(landed))
        self.worker.metrics.add("time:comm_land_s", time.perf_counter() - t0)
        self.worker.note_progress()
