"""The worker: one simulated machine (paper Fig. 3, left side).

A worker owns:

* the local vertex table ``T_local`` (its hash partition of the graph,
  trimmed at load time if the app provides a Trimmer);
* the shared remote-vertex cache ``T_cache``;
* the spilled-task file list ``L_file`` and its spill directory;
* one :class:`~repro.core.comper.ComperEngine` per mining thread;
* the :class:`~repro.core.comm.CommService` and the GC step;
* the worker-side aggregator service and the output sink.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import kernels
from ..graph.partition import hash_partition, hash_partition_array
from .aggregator import AggregatorService
from .api import Comper, Task, VertexView
from .comm import CommService
from .comper import ComperEngine
from .config import GThinkerConfig
from .containers import TaskFileList, serialize_tasks
from .metrics import MetricsRegistry, WorkerMemoryModel
from .vertex_cache import VertexCache

__all__ = ["Worker", "AtomicCounter"]


class AtomicCounter:
    """A lock-guarded counter (GIL does not make ``+=`` atomic)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def increment(self, amount: int = 1) -> int:
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class CostMeter:
    """Accumulates modeled extra costs (disk IO seconds) during a step.

    The DES runtime drains it after each entity step and adds the value
    to the entity's virtual duration; the real runtimes never read it.
    """

    __slots__ = ("_lock", "_seconds")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seconds = 0.0

    def add(self, seconds: float) -> None:
        with self._lock:
            self._seconds += seconds

    def drain(self) -> float:
        with self._lock:
            out, self._seconds = self._seconds, 0.0
            return out


class _CollectorEngine:
    """An engine stand-in that collects spawned tasks into a list.

    Used by work stealing: the victim spawns a batch of fresh tasks to
    ship away, so ``add_task`` must not land in any local ``Q_task``.
    """

    def __init__(self, worker: "Worker") -> None:
        self.worker = worker
        self.collected: List[Task] = []

    @property
    def config(self) -> GThinkerConfig:
        return self.worker.config

    def add_task(self, task: Task) -> None:
        self.collected.append(task)

    def aggregate(self, value) -> None:
        self.worker.aggregator.aggregate(value)

    def aggregator_view(self):
        return self.worker.aggregator.view()

    def output(self, record) -> None:
        self.worker.add_output(record)


class Worker:
    """One machine of the cluster."""

    def __init__(
        self,
        worker_id: int,
        num_workers: int,
        config: GThinkerConfig,
        app_factory: Callable[[], Comper],
        transport,
        metrics: MetricsRegistry,
        spill_dir: Path,
    ) -> None:
        self.worker_id = worker_id
        self.num_workers = num_workers
        self.config = config
        self.transport = transport
        self.metrics = metrics
        self.memory = WorkerMemoryModel(metrics, worker_id)

        #: ``T_local``: vertex id -> (label, sorted read-only int64 adj
        #: ndarray).  Rows faulted in from a SharedCSR are zero-copy
        #: views into the shared ``indices`` block.
        self._local: Dict[int, Tuple[int, np.ndarray]] = {}
        #: Shared-memory graph backing (process runtime): rows are
        #: materialized lazily from here into ``_local`` on first touch.
        self._shared = None
        self._shared_owned = frozenset()
        #: Owned vertex id -> SharedCSR row position (lazy-fault index).
        self._shared_pos: Dict[int, int] = {}
        #: Bytes of lazily-faulted rows not yet folded into the memory
        #: model; committed by :meth:`update_memory_gauge`.
        self._lazy_local_bytes = 0
        self._spawn_order: List[int] = []
        self._spawn_next = 0
        self._spawn_lock = threading.Lock()

        # Protocol checking (repro.check) is opt-in; when off, checker
        # stays None and the plain cache/containers are used, so the hot
        # path pays nothing.  Imported lazily to keep core free of the
        # check package unless enabled.
        self.checker = None
        cache_cls = VertexCache
        if config.check_enabled:
            from ..check import CheckedVertexCache, TaskLifecycleChecker

            self.checker = TaskLifecycleChecker(
                worker_id=worker_id,
                compers_per_worker=config.compers_per_worker,
            )
            cache_cls = CheckedVertexCache
        self.cache = cache_cls(
            num_buckets=config.cache_buckets,
            capacity=config.cache_capacity,
            overflow_alpha=config.cache_overflow_alpha,
            count_delta=config.cache_count_delta,
            metrics=metrics,
            memory_model=self.memory,
        )
        self.l_file = TaskFileList(spill_dir / f"worker-{worker_id}", metrics=metrics)
        self.comm = CommService(self)

        prototype = app_factory()
        self.aggregator = AggregatorService(prototype.make_aggregator())
        self._trimmer = prototype.make_trimmer()

        self.engines: List[ComperEngine] = []
        base = worker_id * config.compers_per_worker
        for i in range(config.compers_per_worker):
            app = app_factory()
            self.engines.append(ComperEngine(base + i, self, app))
        self._steal_app = app_factory()

        self._outputs: List[Any] = []
        self._outputs_lock = threading.Lock()
        self.progress = AtomicCounter()
        self.cost_meter = CostMeter()

    # -- graph loading ------------------------------------------------------

    def load_rows(self, rows) -> None:
        """Load ``(v, label, adj)`` rows into ``T_local`` (trimmed)."""
        for v, label, adj in rows:
            arr = kernels.as_ids_array(adj)
            if self._trimmer is not None:
                arr = kernels.as_ids_array(self._trimmer.trim(v, label, arr))
            if arr.flags.writeable:
                arr.flags.writeable = False
            self._local[int(v)] = (int(label), arr)
        self._spawn_order = sorted(self._local)
        self.memory.set_local_table(
            sum(24 + adj.nbytes for (_l, adj) in self._local.values())
        )

    def load_shared(self, csr) -> None:
        """Attach a :class:`~repro.graph.csr.SharedCSR` as ``T_local``.

        The process runtime's zero-copy load path: the adjacency arrays
        stay in the parent's shared-memory segments; this worker only
        records which vertex ids hash to it.  Rows are converted to the
        ``(label, adj)`` tuple format (and trimmed) lazily on first
        access, memoized in ``_local`` — so over a job the worker touches
        at most its own partition, never the whole graph.  Untrimmed rows
        stay zero-copy views into the shared ``indices`` array.

        The local-table memory gauge is charged lazily as rows fault in
        (at their *trimmed* size, in :meth:`_entry`) so it reports the
        same bytes :meth:`load_rows` charges eagerly — charging untrimmed
        CSR degrees here made ``peak_memory_bytes`` disagree between the
        process and serial/threaded runtimes for any app with a Trimmer.
        """
        owners = hash_partition_array(csr.vertex_ids, self.num_workers)
        mask = owners == self.worker_id
        owned = csr.vertex_ids[mask].tolist()
        self._shared = csr
        self._shared_owned = frozenset(owned)
        # Owned id -> CSR row position, precomputed in one vectorized
        # pass: faulting a row then costs a dict lookup instead of a
        # searchsorted per vertex.
        self._shared_pos = dict(zip(owned, np.nonzero(mask)[0].tolist()))
        self._spawn_order = owned  # vertex_ids are sorted ascending
        self.memory.set_local_table(0)

    # -- vertex access ----------------------------------------------------------

    def owner_of(self, v: int) -> int:
        return hash_partition(v, self.num_workers)

    def owns_vertex(self, v: int) -> bool:
        return self.owner_of(v) == self.worker_id

    def _entry(self, v: int) -> Optional[Tuple[int, np.ndarray]]:
        """``T_local`` row for ``v``, faulting from the shared CSR.

        The faulted adjacency is the SharedCSR row *view* (or a slice of
        it after Γ_>-style trimming) — still sharing the shm buffer.
        """
        entry = self._local.get(v)
        if entry is None:
            pos = self._shared_pos.get(v)
            if pos is None:
                return None
            label, adj = self._shared.entry_at(pos)
            if self._trimmer is not None:
                adj = kernels.as_ids_array(self._trimmer.trim(v, label, adj))
            entry = (label, adj)
            self._local[v] = entry
            # Gauge bytes accumulate locally and fold into the memory
            # model at the next sync (update_memory_gauge): the model
            # takes a lock and refreshes three high-water marks per
            # commit, far too heavy to pay per faulted row.
            self._lazy_local_bytes += 24 + adj.nbytes
        return entry

    def local_view(self, v: int) -> Optional[VertexView]:
        """A view of a locally stored vertex, or None if not local."""
        entry = self._entry(v)
        if entry is None:
            if self.owns_vertex(v):
                raise KeyError(
                    f"vertex {v} hashes to worker {self.worker_id} but is not "
                    f"in the local table (bad vertex id in a pull?)"
                )
            return None
        label, adj = entry
        return VertexView(v, label, adj)

    def local_entry(self, v: int) -> Tuple[int, np.ndarray]:
        """Serve a remote pull from ``T_local`` (raises on unknown ids)."""
        entry = self._entry(v)
        if entry is None:
            raise KeyError(
                f"worker {self.worker_id} asked to serve vertex {v} it does not own"
            )
        return entry

    @property
    def num_local_vertices(self) -> int:
        return len(self._spawn_order)

    # -- task spawning --------------------------------------------------------------

    def spawn_into(self, engine: ComperEngine, room: int) -> int:
        """Spawn fresh tasks into ``engine``'s queue by advancing the
        shared "next" pointer over ``T_local`` (paper Fig. 7)."""
        spawned_from = 0
        exhausted = False
        while engine.q_task.refill_room() > 0 and spawned_from < 4 * room:
            with self._spawn_lock:
                if self._spawn_next >= len(self._spawn_order):
                    exhausted = True
                    break
                v = self._spawn_order[self._spawn_next]
                self._spawn_next += 1
            label, adj = self._entry(v)
            engine.app.task_spawn(VertexView(v, label, adj))
            spawned_from += 1
            self.note_progress()
        if exhausted and not engine.spawn_flushed:
            # Let bundling apps emit their final partial bundle, exactly
            # once per comper.
            engine.spawn_flushed = True
            engine.app.spawn_flush()
        return spawned_from

    def spawn_batch_payload(self, max_tasks: int) -> Optional[Tuple[bytes, int]]:
        """Produce a serialized batch of fresh tasks for work stealing."""
        collector = _CollectorEngine(self)
        self._steal_app.bind_engine(collector)
        exhausted = False
        while len(collector.collected) < max_tasks:
            with self._spawn_lock:
                if self._spawn_next >= len(self._spawn_order):
                    exhausted = True
                    break
                v = self._spawn_order[self._spawn_next]
                self._spawn_next += 1
            label, adj = self._entry(v)
            self._steal_app.task_spawn(VertexView(v, label, adj))
            self.note_progress()
        if exhausted:
            # Bundling apps: ship the partial bundle rather than lose it.
            self._steal_app.spawn_flush()
        if not collector.collected:
            return None
        return serialize_tasks(collector.collected), len(collector.collected)

    def unspawned_count(self) -> int:
        with self._spawn_lock:
            return len(self._spawn_order) - self._spawn_next

    def spawn_cursor(self) -> int:
        with self._spawn_lock:
            return self._spawn_next

    def set_spawn_cursor(self, value: int) -> None:
        """Checkpoint-restore hook."""
        with self._spawn_lock:
            self._spawn_next = value

    # -- outputs ------------------------------------------------------------------------

    def add_output(self, record: Any) -> None:
        with self._outputs_lock:
            self._outputs.append(record)

    def outputs(self) -> List[Any]:
        with self._outputs_lock:
            return list(self._outputs)

    def set_outputs(self, records: Sequence[Any]) -> None:
        with self._outputs_lock:
            self._outputs = list(records)

    # -- progress / status ------------------------------------------------------------------

    def note_progress(self) -> None:
        self.progress.increment()

    def engine_by_global_id(self, global_comper_id: int) -> ComperEngine:
        base = self.worker_id * self.config.compers_per_worker
        idx = global_comper_id - base
        if not 0 <= idx < len(self.engines):
            raise KeyError(
                f"comper {global_comper_id} does not belong to worker {self.worker_id}"
            )
        return self.engines[idx]

    def tasks_in_memory(self) -> int:
        return sum(e.tasks_in_memory() for e in self.engines)

    def gc_step(self) -> bool:
        """The GC thread's body: lazy eviction on overflow (paper §V-A)."""
        if self.cache.overflowed():
            evicted = self.cache.evict()
            return evicted > 0
        return False

    def update_memory_gauge(self) -> None:
        """Refresh the modeled task-pool footprint (called at sync points)."""
        if self._lazy_local_bytes:
            self.memory.add_local_table(self._lazy_local_bytes)
            self._lazy_local_bytes = 0
        # Q_task maintains its own byte gauge on the owning comper's
        # side, so this cross-thread read never iterates the deque (a
        # concurrent mutation would make deque iteration raise).
        task_bytes = sum(e.q_task.memory_estimate() for e in self.engines)
        # B_task / T_task tasks are counted coarsely by count to avoid
        # locking every container for long; their subgraphs dominate via
        # the cache bytes anyway.
        pending = sum(e.pending_load() for e in self.engines)
        task_bytes += 128 * pending
        self.memory.add_tasks(task_bytes - getattr(self, "_last_task_bytes", 0))
        self._last_task_bytes = task_bytes

    def remaining_workload_estimate(self) -> int:
        """Steal-planning signal: batches on disk + unspawned vertices."""
        return self.l_file.num_tasks_on_disk() + self.unspawned_count()

    def flush_for_status(self) -> None:
        """Make node-local counters exact before a status report.

        Called from the control-plane serve loop (the only
        cache-mutating thread) before every status/final report, so
        ``s_cache``, the lock-acquisition metrics, and the memory gauge
        are current whenever the master reads them.
        """
        self.cache.flush_local_counter()
        self.cache.commit_lock_metrics()
        self.update_memory_gauge()

    def cleanup(self) -> None:
        self.l_file.cleanup()
