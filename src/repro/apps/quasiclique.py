"""Maximal γ-quasi-clique enumeration — the paper's running API example.

For ``γ >= 0.5`` any two members of a γ-quasi-clique are within two hops
([17]), so the task spawned from vertex ``v`` materializes ``v``'s 2-hop
ego network over two pull iterations ("request its neighbors in
Iteration 1, and when receiving them, request the 2nd-hop neighbors in
Iteration 2") and mines it serially.

Ownership / de-duplication: task ``v`` reports exactly the maximal
quasi-cliques whose *smallest* member is ``v``.  Maximality is judged
inside the full 2-hop ego network (which provably contains every
qualifying superset of any set containing ``v``), so the union over all
tasks is exactly the globally maximal quasi-cliques of size >=
``min_size`` — no post-processing needed.
"""

from __future__ import annotations

import math
from typing import Sequence, Set

from ..algorithms.quasicliques import enumerate_quasi_cliques
from ..core.api import Comper, SumAggregator, Task, VertexView

__all__ = ["QuasiCliqueComper"]


class QuasiCliqueComper(Comper):
    """Enumerates maximal γ-quasi-cliques with at least ``min_size`` members.

    Each found quasi-clique is emitted via ``output()``; the aggregate
    is their total count.
    """

    def __init__(self, gamma: float = 0.6, min_size: int = 4) -> None:
        super().__init__()
        if gamma < 0.5:
            raise ValueError(
                "the 2-hop materialization bound requires gamma >= 0.5 "
                f"(got {gamma}); see [17]"
            )
        if not gamma <= 1.0:
            raise ValueError(f"gamma must be <= 1, got {gamma}")
        self.gamma = gamma
        self.min_size = min_size

    def make_aggregator(self) -> SumAggregator:
        return SumAggregator()

    # -- UDFs -------------------------------------------------------------

    def task_spawn(self, v: VertexView) -> None:
        # A member of a qualifying set needs degree >= ceil(γ(min_size-1)).
        if len(v.adj) < math.ceil(self.gamma * (self.min_size - 1)):
            return
        task = Task(context={"root": v.id, "iteration": 0})
        task.g.add_vertex(v.id, v.adj, label=v.label)
        for u in v.adj:
            task.pull(u)
        self.add_task(task)

    def compute(self, task: Task, frontier: Sequence[VertexView]) -> bool:
        ctx = task.context
        ctx["iteration"] += 1
        for view in frontier:
            if view.id not in task.g:
                task.g.add_vertex(view.id, view.adj, label=view.label)
        if ctx["iteration"] == 1:
            # Iteration 2 of the paper's description: pull the 2nd hop.
            seen: Set[int] = set(task.g.vertices())
            for view in frontier:
                for u in view.adj:
                    if u not in seen:
                        seen.add(u)
                        task.pull(u)
            if task.pending_pulls():
                return True
        self._mine(task)
        return False

    # -- serial mining -----------------------------------------------------------

    def _mine(self, task: Task) -> None:
        root = task.context["root"]
        ego = set(task.g.vertices())
        adjacency = {
            v: [u for u in task.g.neighbors(v) if u in ego] for v in ego
        }
        count = 0
        for qc in enumerate_quasi_cliques(
            adjacency, self.gamma, min_size=self.min_size, restrict_min_vertex=root
        ):
            self.output(qc)
            count += 1
        self.aggregate(count)
