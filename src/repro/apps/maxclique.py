"""Maximum clique finding (MCF) — the paper's Fig. 5 application, verbatim.

A task is ``<S, ext(S)>``: ``S`` is the vertex set already assumed in
the clique, and the task's subgraph ``t.g`` is induced by
``ext(S) = Γ_>(S)`` (common larger-id neighbors of ``S``).

* ``task_spawn(v)`` prunes against the aggregator's current best
  (``|S_max| >= 1 + |Γ_>(v)|``), then creates the top-level task
  ``<{v}, Γ_>(v)>`` and pulls every candidate.
* ``compute`` first materializes ``t.g`` (top-level tasks only), then
  either *decomposes* — when ``|V(t.g)| > τ`` it creates one child task
  ``<S ∪ u, Γ_>(S ∪ u)>`` per candidate ``u``, pruning children that
  cannot beat ``S_max`` — or *mines serially* with branch-and-bound
  seeded at ``Δ = |S_max| - |t.S|``.

The aggregator tracks the largest clique found anywhere; workers see it
after each periodic sync, so pruning tightens globally as the job runs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..algorithms.cliques import max_clique
from ..core.api import Comper, MaxAggregator, Task, VertexView
from .common import GtTrimmer

__all__ = ["MaxCliqueComper"]


def _best_size(view) -> int:
    return len(view) if view else 0


class MaxCliqueComper(Comper):
    """Finds one maximum clique; the job aggregate is its vertex tuple.

    Parameters
    ----------
    tau:
        Decomposition threshold τ: tasks whose subgraph has more
        vertices are split instead of mined serially (paper default
        40,000; pass something graph-appropriate).  ``None`` uses the
        job config's ``decompose_threshold``.
    """

    def __init__(
        self,
        tau: Optional[int] = None,
        core_numbers: Optional[dict] = None,
        initial_clique: Optional[Tuple[int, ...]] = None,
    ) -> None:
        """Optional accelerations beyond Fig. 5 (both off by default):

        core_numbers:
            Precomputed core numbers (:func:`repro.graph.core_numbers`):
            a vertex with ``core(v) + 1 <= |S_max|`` cannot start a
            bigger clique, so its task is never spawned.
        initial_clique:
            A known clique (e.g. :func:`repro.graph.greedy_clique_seed`)
            folded into the aggregator before any task runs, so
            branch-and-bound pruning starts tight instead of warming up.
        """
        super().__init__()
        self._tau = tau
        self._cores = core_numbers
        self._seed = tuple(initial_clique) if initial_clique else None
        self._seeded = False

    def make_aggregator(self) -> MaxAggregator:
        return MaxAggregator(key=len)

    def make_trimmer(self) -> GtTrimmer:
        return GtTrimmer()

    @property
    def tau(self) -> int:
        return self._tau if self._tau is not None else self.config.decompose_threshold

    # -- UDFs ----------------------------------------------------------

    def task_spawn(self, v: VertexView) -> None:
        if self._seed is not None and not self._seeded:
            self._seeded = True
            self.aggregate(self._seed)
        best = _best_size(self.aggregator_value)
        if best >= 1 + len(v.adj):  # Fig. 5, task_spawn line 1
            return
        if self._cores is not None and self._cores.get(v.id, 0) + 1 <= best:
            return  # v's densest surrounding subgraph is already beaten
        task = Task(context=(v.id,))  # t.S = {v}
        for u in v.adj:  # v.adj is Γ_>(v)
            task.pull(u)
        self.add_task(task)

    def compute(self, task: Task, frontier: Sequence[VertexView]) -> bool:
        s: Tuple[int, ...] = task.context
        if len(s) == 1 and task.g.num_vertices == 0 and frontier:
            self._build_top_level_subgraph(task, frontier)
        if task.g.num_vertices > self.tau:
            self._decompose(task, s)
        else:
            self._mine_serially(task, s)
        return False  # MCF tasks finish in one compute round (Fig. 5)

    # -- helpers ------------------------------------------------------------

    def _build_top_level_subgraph(self, task: Task, frontier: Sequence[VertexView]) -> None:
        """Fig. 5 line 2: t.g := subgraph induced by Γ_>(v).

        Adjacency items outside Γ_>(v) are 2 hops from v and filtered.
        """
        candidates = frozenset(view.id for view in frontier)
        for view in frontier:
            task.g.add_vertex(view.id, view.adj, label=view.label, keep_only=candidates)
        # Pulled rows are Γ_>-trimmed (upward edges only); the serial
        # miner and the decomposition need undirected adjacency.
        task.g.symmetrize()

    def _decompose(self, task: Task, s: Tuple[int, ...]) -> None:
        """Fig. 5 lines 4-9: one child <S ∪ u, Γ_>(S ∪ u)> per candidate."""
        best = _best_size(self.aggregator_value)
        g = task.g
        for u in sorted(g.vertices()):
            # Candidates of the child: u's neighbors in t.g with larger
            # ids (t.g's vertices are already common neighbors of S).
            child_vertices = [w for w in g.neighbors(u) if w > u]
            if len(s) + 1 + len(child_vertices) <= best:
                continue  # Fig. 5 line 9: child cannot beat S_max
            child = Task(context=tuple(sorted(s + (u,))))
            keep = frozenset(child_vertices)
            for w in child_vertices:
                child.g.add_vertex(w, g.neighbors(w), keep_only=keep)
            self.add_task(child)

    def _mine_serially(self, task: Task, s: Tuple[int, ...]) -> None:
        """Fig. 5 lines 10-14: branch-and-bound on the small subgraph."""
        best = _best_size(self.aggregator_value)
        if len(s) + task.g.num_vertices <= best:
            return  # line 11
        delta = max(0, best - len(s))
        found = max_clique(task.g.adjacency(), lower_bound=delta)
        candidate = tuple(sorted(set(s) | set(found)))
        if len(candidate) > best:
            self.aggregate(candidate)  # line 13: S_max := t.S ∪ S'_max
