"""Distributed enumeration of *all* maximal cliques.

Beyond the paper's MCF (which only reports the largest clique), clique
*listing* is the workload Arabesque/RStream expose in their artifacts
(§VI: "We also ran RStream whose code for TC and clique listing are
provided").  The G-thinker formulation:

* the task spawned from ``v`` materializes ``v``'s full 1-hop ego
  network (one pull round — every neighbor, not just ``Γ_>``, because
  *maximality* must be judged against smaller neighbors too);
* it runs Bron–Kerbosch restricted to cliques containing ``v`` whose
  **minimum member is v** — the ownership rule that makes the union over
  tasks exactly the set of maximal cliques, each reported once.

The restriction is the textbook one: seed BK with ``R = {v}``,
``P = {u in Γ(v) : u > v}``, ``X = {u in Γ(v) : u < v}`` — candidates
are larger neighbors, while smaller neighbors sit in the exclusion set
so any clique extensible by one of them is correctly rejected as
non-maximal.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Set, Tuple

import numpy as np

from ..core.api import Comper, SumAggregator, Task, VertexView

__all__ = ["MaximalCliqueComper", "maximal_cliques_containing_min"]


def maximal_cliques_containing_min(
    adjacency: Dict[int, Set[int]], v: int
) -> Iterator[Tuple[int, ...]]:
    """Maximal cliques of the given graph whose smallest member is ``v``.

    ``adjacency`` must cover ``v``'s closed neighborhood (rows for ``v``
    and every neighbor, each row filtered to that neighborhood).
    """
    nbrs = adjacency[v]

    def bk(r: Set[int], p: Set[int], x: Set[int]) -> Iterator[Tuple[int, ...]]:
        if not p and not x:
            yield tuple(sorted(r))
            return
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda u: len(adjacency[u] & p))
        for u in list(p - adjacency[pivot]):
            yield from bk(r | {u}, p & adjacency[u], x & adjacency[u])
            p.remove(u)
            x.add(u)

    p = {u for u in nbrs if u > v}
    x = {u for u in nbrs if u < v}
    yield from bk({v}, p, x)


class MaximalCliqueComper(Comper):
    """Enumerates every maximal clique (of at least ``min_size`` vertices).

    Cliques are emitted via ``output()``; the aggregate is their count.
    """

    def __init__(self, min_size: int = 1) -> None:
        super().__init__()
        if min_size < 1:
            raise ValueError("min_size must be >= 1")
        self.min_size = min_size

    def make_aggregator(self) -> SumAggregator:
        return SumAggregator()

    # No trimmer: maximality checks need full adjacency.

    def task_spawn(self, v: VertexView) -> None:
        task = Task(context=v.id)
        task.g.add_vertex(v.id, v.adj, label=v.label)
        for u in v.adj:
            task.pull(u)
        self.add_task(task)

    def compute(self, task: Task, frontier: Sequence[VertexView]) -> bool:
        v = task.context
        hood = {v, *task.g.neighbors(v)}
        adjacency: Dict[int, Set[int]] = {
            v: set(task.g.neighbors(v))
        }
        for view in frontier:
            # .tolist() boxes np.int64 back to python ints so emitted
            # cliques stay plain-int tuples.
            row = view.adj.tolist() if isinstance(view.adj, np.ndarray) else view.adj
            adjacency[view.id] = {u for u in row if u in hood}
        count = 0
        for clique in maximal_cliques_containing_min(adjacency, v):
            if len(clique) >= self.min_size:
                self.output(clique)
                count += 1
        self.aggregate(count)
        return False
