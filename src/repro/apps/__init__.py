"""G-thinker applications (the paper's evaluated workloads)."""

from .bundled_triangle import BundledTriangleCountComper
from .common import GtTrimmer, LabelTrimmer
from .maxclique import MaxCliqueComper
from .maximalcliques import MaximalCliqueComper, maximal_cliques_containing_min
from .match import SubgraphMatchComper, query_radius
from .quasiclique import QuasiCliqueComper
from .triangle import TriangleCountComper

__all__ = [
    "BundledTriangleCountComper",
    "GtTrimmer",
    "LabelTrimmer",
    "MaxCliqueComper",
    "MaximalCliqueComper",
    "maximal_cliques_containing_min",
    "SubgraphMatchComper",
    "query_radius",
    "QuasiCliqueComper",
    "TriangleCountComper",
]
