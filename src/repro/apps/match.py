"""Subgraph matching (GM) — the paper's third evaluation application.

The search space is partitioned without isomorphism checks (the paper's
point against Arabesque-style systems): the query's first matching-order
vertex ``q0`` is *anchored* at each data vertex with a compatible label,
and the task spawned there owns exactly the embeddings mapping ``q0`` to
its anchor.  Query automorphisms are killed by the symmetry-breaking
order constraints inside :mod:`repro.algorithms.matching`, so the union
over tasks counts every embedding exactly once.

A task materializes the anchor's ``r``-hop neighborhood (``r`` = the
eccentricity of ``q0`` in the query) by iterative pulling — one pull
round per hop, the multi-iteration pattern the paper illustrates with
quasi-cliques — and then runs the serial backtracking matcher locally.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Sequence, Set

from ..algorithms.matching import QueryGraph, match_subgraph
from ..core.api import Comper, SumAggregator, Task, VertexView
from ..graph.graph import Graph
from .common import LabelTrimmer

__all__ = ["SubgraphMatchComper", "query_radius"]


def query_radius(query: QueryGraph) -> int:
    """BFS eccentricity of the anchor vertex ``query.order[0]``."""
    g = query.graph
    start = query.order[0]
    dist = {start: 0}
    frontier = deque([start])
    while frontier:
        v = frontier.popleft()
        for u in g.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                frontier.append(u)
    if len(dist) != g.num_vertices:
        raise ValueError("query graph must be connected")
    return max(dist.values())


class SubgraphMatchComper(Comper):
    """Counts (and optionally emits) embeddings of a labeled query.

    Parameters
    ----------
    query:
        The pattern to match.
    data_labels:
        The data graph's label mapping, needed by the label trimmer
        (the trimmer sees one vertex at a time but must judge its
        neighbors' labels).  Pass ``None`` to skip trimming.
    collect_embeddings:
        Emit each embedding dict via ``output()`` (small graphs only).
    """

    def __init__(
        self,
        query: QueryGraph,
        data_labels: Optional[Dict[int, int]] = None,
        collect_embeddings: bool = False,
    ) -> None:
        super().__init__()
        self.query = query
        self.radius = query_radius(query)
        self._labels = data_labels
        self._collect = collect_embeddings
        self._query_labels = set(query.labels.values())

    def make_aggregator(self) -> SumAggregator:
        return SumAggregator()

    def make_trimmer(self) -> Optional[LabelTrimmer]:
        if self._labels is None:
            return None
        labels = self._labels
        return LabelTrimmer(self._query_labels, lambda u: labels.get(u, 0))

    # -- UDFs ----------------------------------------------------------------

    def task_spawn(self, v: VertexView) -> None:
        q0 = self.query.order[0]
        if self.query.labels[q0] != v.label:
            return
        if len(v.adj) < self.query.graph.degree(q0):
            return  # cannot host the anchor's degree
        task = Task(context={"anchor": v.id, "depth": 0})
        task.g.add_vertex(v.id, v.adj, label=v.label)
        if self.radius >= 1:
            for u in v.adj:
                task.pull(u)
        self.add_task(task)

    def compute(self, task: Task, frontier: Sequence[VertexView]) -> bool:
        ctx = task.context
        ctx["depth"] += 1
        for view in frontier:
            if view.id not in task.g:
                task.g.add_vertex(view.id, view.adj, label=view.label)
        if ctx["depth"] < self.radius:
            # Pull the next hop: neighbors of the just-arrived frontier
            # that are not yet materialized.
            seen: Set[int] = set(task.g.vertices())
            for view in frontier:
                for u in view.adj:
                    if u not in seen:
                        seen.add(u)
                        task.pull(u)
            if task.pending_pulls():
                return True
        self._match(task)
        return False

    # -- local matching -------------------------------------------------------

    def _match(self, task: Task) -> None:
        materialized = set(task.g.vertices())
        data = Graph(
            {v: [u for u in task.g.neighbors(v) if u in materialized]
             for v in materialized},
            labels={v: task.g.label(v) for v in materialized if task.g.label(v)},
        )
        anchor = (self.query.order[0], task.context["anchor"])
        count = 0
        for embedding in match_subgraph(data, self.query, anchor=anchor):
            count += 1
            if self._collect:
                self.output(dict(embedding))
        self.aggregate(count)
