"""Trimmers and helpers shared by the applications."""

from __future__ import annotations

from typing import Iterable, Sequence, Set

import numpy as np

from ..core.api import Trimmer
from ..graph import kernels
from ..graph.graph import adjacency_suffix_gt

__all__ = ["GtTrimmer", "LabelTrimmer"]


class GtTrimmer(Trimmer):
    """Keep only larger-id neighbors: ``Γ(v) -> Γ_>(v)``.

    The paper's set-enumeration trimming: "when following a search tree
    as in Fig. 1, we can trim each vertex v's adjacency list Γ(v) into
    Γ_>(v)".  Applied at load time it also halves response sizes.

    For ndarray adjacency (the hot path) the trim is a *slice view* —
    trimming a ``SharedCSR`` row stays zero-copy.
    """

    def trim(self, v: int, label: int, adj: Sequence[int]) -> Sequence[int]:
        if isinstance(adj, np.ndarray):
            return kernels.suffix_gt(adj, v)
        return adjacency_suffix_gt(adj, v)


class LabelTrimmer(Trimmer):
    """Drop neighbors whose label cannot occur in the query graph.

    The paper's subgraph-matching trimming: "vertices and edges in the
    data graph whose labels do not appear in the query graph can be
    safely pruned".  Needs the data graph's labels, which a trimmer does
    not see per-neighbor; the caller provides a ``label_of`` lookup.
    """

    def __init__(self, allowed_labels: Iterable[int], label_of) -> None:
        self._allowed: Set[int] = set(allowed_labels)
        self._label_of = label_of

    def trim(self, v: int, label: int, adj: Sequence[int]) -> Sequence[int]:
        if isinstance(adj, np.ndarray):
            if label not in self._allowed:
                return adj[:0]
            # label_of is an arbitrary python callable, so this filter
            # can't vectorize; it runs once per vertex at load time.
            keep = np.fromiter(
                (self._label_of(int(u)) in self._allowed for u in adj),
                dtype=bool, count=adj.size,
            )
            return adj[keep]
        if label not in self._allowed:
            return ()
        return tuple(u for u in adj if self._label_of(u) in self._allowed)
