"""Trimmers and helpers shared by the applications."""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from ..core.api import Trimmer
from ..graph.graph import adjacency_suffix_gt

__all__ = ["GtTrimmer", "LabelTrimmer"]


class GtTrimmer(Trimmer):
    """Keep only larger-id neighbors: ``Γ(v) -> Γ_>(v)``.

    The paper's set-enumeration trimming: "when following a search tree
    as in Fig. 1, we can trim each vertex v's adjacency list Γ(v) into
    Γ_>(v)".  Applied at load time it also halves response sizes.
    """

    def trim(self, v: int, label: int, adj: Tuple[int, ...]) -> Tuple[int, ...]:
        return adjacency_suffix_gt(adj, v)


class LabelTrimmer(Trimmer):
    """Drop neighbors whose label cannot occur in the query graph.

    The paper's subgraph-matching trimming: "vertices and edges in the
    data graph whose labels do not appear in the query graph can be
    safely pruned".  Needs the data graph's labels, which a trimmer does
    not see per-neighbor; the caller provides a ``label_of`` lookup.
    """

    def __init__(self, allowed_labels: Iterable[int], label_of) -> None:
        self._allowed: Set[int] = set(allowed_labels)
        self._label_of = label_of

    def trim(self, v: int, label: int, adj: Tuple[int, ...]) -> Tuple[int, ...]:
        if label not in self._allowed:
            return ()
        return tuple(u for u in adj if self._label_of(u) in self._allowed)
