"""Triangle counting with low-degree task bundling.

The paper's §VI observes that "tasks spawned from many low-degree
vertices do not generate large enough subgraphs to hide IO cost in the
computation" and points to bundling them into bigger tasks ([38]) as
future work.  This app implements that idea on top of the unchanged
engine:

* vertices with ``|Γ_>(v)| >= heavy_threshold`` spawn their own task,
  exactly like :class:`~repro.apps.triangle.TriangleCountComper`;
* low-degree vertices accumulate into a *bundle*; once the bundle holds
  ``bundle_size`` vertices (or the spawn cursor exhausts —
  ``spawn_flush``), one task is created that pulls the union of their
  candidate sets and counts all their triangles in a single iteration.

Bundling amortizes the per-task costs the paper worries about — the
request round-trip, the parking/wake cycle, and the scheduling step —
across many small vertices; the ablation bench
``benchmarks/bench_ablation_bundling.py`` measures the effect.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.api import Comper, SumAggregator, Task, VertexView
from ..graph import kernels
from .common import GtTrimmer

__all__ = ["BundledTriangleCountComper"]


class BundledTriangleCountComper(Comper):
    """TC with low-degree vertices bundled into shared tasks."""

    def __init__(self, bundle_size: int = 32, heavy_threshold: int = 16) -> None:
        super().__init__()
        if bundle_size < 1:
            raise ValueError("bundle_size must be >= 1")
        if heavy_threshold < 2:
            raise ValueError("heavy_threshold must be >= 2")
        self.bundle_size = bundle_size
        self.heavy_threshold = heavy_threshold
        self._bundle: List[Tuple[int, Tuple[int, ...]]] = []

    def make_aggregator(self) -> SumAggregator:
        return SumAggregator()

    def make_trimmer(self) -> GtTrimmer:
        return GtTrimmer()

    # -- spawning ----------------------------------------------------------

    def task_spawn(self, v: VertexView) -> None:
        if len(v.adj) < 2:
            return  # no triangle has v as its smallest vertex
        if len(v.adj) >= self.heavy_threshold:
            self._emit([(v.id, v.adj)])
            return
        self._bundle.append((v.id, v.adj))
        if len(self._bundle) >= self.bundle_size:
            bundle, self._bundle = self._bundle, []
            self._emit(bundle)

    def spawn_flush(self) -> None:
        if self._bundle:
            bundle, self._bundle = self._bundle, []
            self._emit(bundle)

    def _emit(self, members: List[Tuple[int, Tuple[int, ...]]]) -> None:
        task = Task(context=members)
        for _v, gt in members:
            for u in gt:
                task.pull(u)  # Task.pull dedupes across bundle members
        self.add_task(task)

    # -- computing ------------------------------------------------------------

    def compute(self, task: Task, frontier: Sequence[VertexView]) -> bool:
        adj_of: Dict[int, Sequence[int]] = {view.id: view.adj for view in frontier}
        count = 0
        for v, gt_v in task.context:
            for u in gt_v:
                count += kernels.intersect_count(gt_v, adj_of[int(u)])
        self.aggregate(count)
        return False
