"""Triangle counting (TC) — one of the paper's three evaluation apps.

With every adjacency list trimmed to ``Γ_>``, the task spawned from
vertex ``u`` pulls ``Γ_>(v)`` for each ``v ∈ Γ_>(u)`` and counts
``|Γ_>(u) ∩ Γ_>(v)|`` — each triangle ``u < v < w`` is counted exactly
once, at its smallest vertex.  Counts flow into a sum aggregator that
the master folds periodically (the paper: "each task can sum the number
of triangles currently found to a local aggregator in its machine").

Tasks are single-iteration after the pull round, so TC stresses exactly
what the paper says it stresses: vertex-pull throughput and cache
concurrency, not deep task recursion.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.api import Comper, SumAggregator, Task, VertexView
from ..graph import kernels
from .common import GtTrimmer

__all__ = ["TriangleCountComper"]


class TriangleCountComper(Comper):
    """Counts all triangles; the job aggregate is the global count."""

    def __init__(self, list_triangles: bool = False) -> None:
        super().__init__()
        self._list = list_triangles

    def make_aggregator(self) -> SumAggregator:
        return SumAggregator()

    def make_trimmer(self) -> GtTrimmer:
        return GtTrimmer()

    def task_spawn(self, v: VertexView) -> None:
        # adj is already Γ_>(v); fewer than 2 larger neighbors -> no
        # triangle has v as its smallest vertex.
        if len(v.adj) < 2:
            return
        task = Task(context=(v.id, v.adj))
        for u in v.adj:
            task.pull(u)
        self.add_task(task)

    def compute(self, task: Task, frontier: Sequence[VertexView]) -> bool:
        u, gt_u = task.context
        count = 0
        if self._list:
            for view in frontier:
                # view.adj is Γ_>(view.id) thanks to the trimmer.
                for w in kernels.intersect(gt_u, view.adj).tolist():
                    self.output((u, int(view.id), w))
                    count += 1
        else:
            # Whole frontier in one fused kernel call (view.adj is
            # Γ_>(view.id) thanks to the trimmer).
            count = kernels.intersect_count_many(
                gt_u, [view.adj for view in frontier]
            )
        self.aggregate(count)
        return False
