"""Command-line interface: run G-thinker jobs from the shell.

Examples::

    # triangle counting on an edge-list file, 4 workers x 2 compers
    python -m repro tc --graph edges.txt --workers 4 --compers 2

    # maximum clique on a built-in dataset stand-in
    python -m repro mcf --dataset friendster --scale 0.5

    # quasi-cliques, emitting results to a file
    python -m repro qc --dataset youtube --scale 0.2 --gamma 0.8 \
        --min-size 4 --output qcs.txt

    # simulate a 16x16 cluster instead of running in-process
    python -m repro mcf --dataset friendster --simulate \
        --workers 16 --compers 16

    # shard a graph into a local "HDFS" directory
    python -m repro shard --graph edges.txt --out shards/ --num-shards 8
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import Optional

from .apps import (
    BundledTriangleCountComper,
    MaxCliqueComper,
    MaximalCliqueComper,
    QuasiCliqueComper,
    TriangleCountComper,
)
from .core.config import GThinkerConfig
from .core.job import resume_job, run_job
from .core.runtime import available_runtimes
from .graph import (
    DATASETS,
    ShardedGraphStore,
    dataset_stats,
    make_dataset,
    read_adjacency,
    read_edge_list,
)
from .sim import run_simulated_job

__all__ = ["main", "build_parser"]


def _add_graph_source(p: argparse.ArgumentParser) -> None:
    src = p.add_argument_group("graph source (pick one)")
    src.add_argument("--graph", help="edge-list or adjacency file")
    src.add_argument("--format", choices=["edges", "adjacency"], default="edges",
                     help="file format of --graph (default: edges)")
    src.add_argument("--shards", help="ShardedGraphStore directory")
    src.add_argument("--dataset", choices=sorted(DATASETS),
                     help="built-in synthetic stand-in")
    src.add_argument("--scale", type=float, default=0.5,
                     help="dataset scale factor (default 0.5)")
    src.add_argument("--seed", type=int, default=7)


def _add_common(p: argparse.ArgumentParser) -> None:
    _add_graph_source(p)

    run = p.add_argument_group("execution")
    run.add_argument("--workers", type=int, default=2)
    run.add_argument("--compers", type=int, default=2)
    run.add_argument("--runtime", choices=list(available_runtimes()),
                     default="serial")
    run.add_argument("--simulate", action="store_true",
                     help="run on the discrete-event simulated cluster")
    run.add_argument("--hosts",
                     help="comma-separated host:port data addresses, one per "
                          "worker, for runtime=cluster attach mode (nodes "
                          "started with 'repro node'); omit to spawn all "
                          "nodes locally")
    run.add_argument("--cluster-bind", default="127.0.0.1:0",
                     help="host:port the cluster master's control listener "
                          "binds (default 127.0.0.1:0 — loopback, ephemeral "
                          "port; use 0.0.0.0:PORT for attach mode)")
    run.add_argument("--cache-capacity", type=int, default=50_000)
    run.add_argument("--batch-size", type=int, default=32)
    run.add_argument("--kernel-backend", choices=["auto", "numpy", "numba"],
                     default="auto",
                     help="array-kernel backend: 'numba' demands the "
                          "compiled kernels, 'numpy' forbids them, 'auto' "
                          "compiles when numba is importable (default)")
    run.add_argument("--tau", type=int, default=None,
                     help="decomposition threshold (MCF)")
    run.add_argument("--output", help="write result records to this file")
    run.add_argument("--profile", action="store_true",
                     help="run under cProfile and print the top 20 "
                          "functions by cumulative time")

    ft = p.add_argument_group("fault tolerance")
    ft.add_argument("--checkpoint-dir",
                    help="write periodic checkpoints under this directory "
                         "(serial and process runtimes)")
    ft.add_argument("--checkpoint-every", type=int, default=4,
                    help="checkpoint every N syncs when --checkpoint-dir "
                         "is set (default 4)")
    ft.add_argument("--resume", action="store_true",
                    help="resume from the checkpoint in --checkpoint-dir "
                         "instead of starting fresh")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="G-thinker (ICDE 2020) reproduction - distributed subgraph mining",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, blurb in [
        ("tc", "triangle counting"),
        ("mcf", "maximum clique finding"),
        ("cliques", "maximal clique enumeration"),
        ("qc", "maximal quasi-clique enumeration"),
    ]:
        p = sub.add_parser(name, help=blurb)
        _add_common(p)
        if name == "tc":
            p.add_argument("--list", action="store_true", help="emit each triangle")
            p.add_argument("--bundle", type=int, default=0,
                           help="bundle low-degree vertices (bundle size; 0 = off)")
        if name == "qc":
            p.add_argument("--gamma", type=float, default=0.8)
            p.add_argument("--min-size", type=int, default=4)
        if name == "cliques":
            p.add_argument("--min-size", type=int, default=3)

    shard = sub.add_parser("shard", help="partition a graph into shard files")
    shard.add_argument("--graph", required=True)
    shard.add_argument("--format", choices=["edges", "adjacency"], default="edges")
    shard.add_argument("--out", required=True)
    shard.add_argument("--num-shards", type=int, required=True)

    node = sub.add_parser(
        "node",
        help="run one runtime=cluster worker node and attach to a master",
    )
    node.add_argument("--master", required=True,
                      help="host:port of the driver's --cluster-bind listener")
    node.add_argument("--bind", default="127.0.0.1",
                      help="host/interface this node's data listener binds "
                           "and advertises to its peers (default 127.0.0.1)")
    node.add_argument("--node-id", type=int, default=-1,
                      help="worker slot to claim (default: master assigns)")
    node.add_argument("--connect-timeout", type=float, default=30.0,
                      help="seconds to keep retrying the master connection")

    serve = sub.add_parser(
        "serve",
        help="run the resident-graph job service (load once, serve many jobs)",
    )
    _add_graph_source(serve)
    serve.add_argument("--bind", default="127.0.0.1:0",
                       help="host:port for the job listener (default "
                            "127.0.0.1:0 — loopback, ephemeral port)")
    serve.add_argument("--runtime", choices=list(available_runtimes()),
                       default="serial",
                       help="runtime submitted jobs execute on")
    serve.add_argument("--workers", type=int, default=2,
                       help="default worker quota per job")
    serve.add_argument("--compers", type=int, default=2)
    serve.add_argument("--kernel-backend",
                       choices=["auto", "numpy", "numba"], default="auto",
                       help="array-kernel backend for served jobs")
    serve.add_argument("--worker-budget", type=int, default=None,
                       help="total worker quota running at once "
                            "(default: CPU count)")
    serve.add_argument("--max-workers-per-job", type=int, default=None,
                       help="per-job quota cap (default: --workers)")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="queued jobs beyond this are rejected (default 64)")
    serve.add_argument("--tenant-weight", action="append", default=[],
                       metavar="TENANT=WEIGHT",
                       help="fair-share weight for a tenant (repeatable; "
                            "unlisted tenants weigh 1)")
    serve.add_argument("--cache-size", type=int, default=128,
                       help="result-cache entries (default 128; 0 disables)")
    serve.add_argument("--cache-dir", default=None,
                       help="persist finished results under this directory "
                            "so a restarted server serves warm repeats "
                            "with zero mining rounds")

    submit = sub.add_parser(
        "submit",
        help="submit a job to a running 'repro serve' and print the answer",
    )
    submit.add_argument("--server", required=True,
                        help="host:port printed by 'repro serve'")
    submit.add_argument("--app", required=True,
                        help="app name (tc, mcf, cliques, qc, gm, ...)")
    submit.add_argument("--params", default=None,
                        help='params as JSON, e.g. \'{"min_size": 3}\'')
    submit.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="single param (repeatable; VALUE parsed as "
                             "JSON, falling back to string)")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--num-workers", type=int, default=None,
                        help="requested worker quota (server caps it)")
    submit.add_argument("--timeout", type=float, default=None,
                        help="seconds to wait for the answer")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id and return without waiting")
    submit.add_argument("--output", help="write result records to this file")

    cancel = sub.add_parser(
        "cancel",
        help="cancel a queued or running job on a 'repro serve' server",
    )
    cancel.add_argument("--server", required=True,
                        help="host:port printed by 'repro serve'")
    cancel.add_argument("job_id", help="job id printed by 'repro submit'")

    jobs = sub.add_parser(
        "jobs",
        help="list jobs (and admission stats) on a running 'repro serve'",
    )
    jobs.add_argument("--server", required=True,
                      help="host:port printed by 'repro serve'")
    jobs.add_argument("--stats", action="store_true",
                      help="also print admission/cache statistics")
    jobs.add_argument("--shutdown", action="store_true",
                      help="ask the server to stop instead of listing")

    info = sub.add_parser("datasets", help="list built-in dataset stand-ins")
    info.add_argument("--scale", type=float, default=0.5)

    check = sub.add_parser(
        "check",
        help="fuzz the concurrency protocols (seeded interleavings + checkers)",
    )
    check.add_argument("--seeds", type=int, default=20,
                       help="number of interleaving seeds per app (default 20)")
    check.add_argument("--vertices", type=int, default=80,
                       help="Erdos-Renyi graph size (default 80)")
    check.add_argument("--edge-prob", type=float, default=0.1)
    check.add_argument("--workers", type=int, default=2)
    check.add_argument("--compers", type=int, default=2)
    check.add_argument("--graph-seed", type=int, default=7)
    check.add_argument("--quiet", action="store_true",
                       help="only print the final summary")
    return parser


def _load_graph(args):
    sources = [bool(args.graph), bool(args.shards), bool(args.dataset)]
    if sum(sources) != 1:
        raise SystemExit("exactly one of --graph, --shards, --dataset is required")
    if args.graph:
        if args.format == "edges":
            return read_edge_list(args.graph)
        return read_adjacency(args.graph)
    if args.shards:
        return ShardedGraphStore(args.shards)
    return make_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _make_config(args) -> GThinkerConfig:
    kwargs = dict(
        num_workers=args.workers,
        compers_per_worker=args.compers,
        cache_capacity=args.cache_capacity,
        task_batch_size=args.batch_size,
        kernel_backend=getattr(args, "kernel_backend", "auto"),
    )
    if args.tau is not None:
        kwargs["decompose_threshold"] = args.tau
    if getattr(args, "checkpoint_dir", None):
        kwargs["checkpoint_dir"] = args.checkpoint_dir
        kwargs["checkpoint_every_syncs"] = args.checkpoint_every
    if getattr(args, "hosts", None):
        kwargs["cluster_hosts"] = tuple(
            h.strip() for h in args.hosts.split(",") if h.strip()
        )
    if getattr(args, "cluster_bind", None):
        kwargs["cluster_bind"] = args.cluster_bind
    return GThinkerConfig(**kwargs)


def _checkpoint_file(args) -> str:
    import os.path

    return os.path.join(args.checkpoint_dir, f"{args.command}.ckpt")


def _app_factory(args):
    # functools.partial, not lambdas: runtime="process" pickles the
    # factory into every worker process.
    if args.command == "tc":
        if args.bundle:
            return functools.partial(BundledTriangleCountComper,
                                     bundle_size=args.bundle)
        return functools.partial(TriangleCountComper, list_triangles=args.list)
    if args.command == "mcf":
        return MaxCliqueComper
    if args.command == "cliques":
        return functools.partial(MaximalCliqueComper, min_size=args.min_size)
    if args.command == "qc":
        return functools.partial(QuasiCliqueComper, gamma=args.gamma,
                                 min_size=args.min_size)
    raise SystemExit(f"unknown command {args.command}")


def _emit_outputs(outputs, path: Optional[str]) -> None:
    if not path:
        return
    with open(path, "w", encoding="ascii") as f:
        for rec in outputs:
            f.write(f"{rec}\n")
    print(f"wrote {len(outputs)} records to {path}")


def _cmd_serve(args) -> int:
    from .service import GraphService

    weights = {}
    for spec in args.tenant_weight:
        tenant, sep, weight = spec.partition("=")
        if not sep:
            raise SystemExit(f"--tenant-weight wants TENANT=WEIGHT, got {spec!r}")
        weights[tenant] = float(weight)

    graph = _load_graph(args)
    config = GThinkerConfig(num_workers=args.workers,
                            compers_per_worker=args.compers,
                            kernel_backend=args.kernel_backend)
    service = GraphService(
        graph,
        config=config,
        runtime=args.runtime,
        bind=args.bind,
        worker_budget=args.worker_budget,
        max_workers_per_job=args.max_workers_per_job,
        max_queue_depth=args.max_queue_depth,
        tenant_weights=weights or None,
        result_cache_size=args.cache_size,
        cache_dir=args.cache_dir,
    )
    service.start()
    host, port = service.address
    info = service.server_info()
    size = (f"{info['num_vertices']} vertices / {info['num_edges']} edges"
            if "num_vertices" in info else "sharded store")
    print(f"serving {size} on {host}:{port} "
          f"(runtime={args.runtime}, budget={info['worker_budget']} workers)",
          flush=True)
    print(f"submit with: repro submit --server {host}:{port} --app tc",
          flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        service.close()
    return 0


def _parse_submit_params(args) -> dict:
    import json

    params = {}
    if args.params:
        try:
            params.update(json.loads(args.params))
        except ValueError as exc:
            raise SystemExit(f"--params is not valid JSON: {exc}")
    for spec in args.param:
        key, sep, value = spec.partition("=")
        if not sep:
            raise SystemExit(f"--param wants KEY=VALUE, got {spec!r}")
        try:
            params[key] = json.loads(value)
        except ValueError:
            params[key] = value
    return params


def _cmd_submit(args) -> int:
    from .core.errors import JobRejectedError, ServiceError
    from .service import ServiceClient

    params = _parse_submit_params(args)
    with ServiceClient(args.server) as client:
        try:
            handle = client.submit(args.app, params, tenant=args.tenant,
                                   num_workers=args.num_workers)
        except JobRejectedError as exc:
            print(f"rejected: {exc}", file=sys.stderr)
            return 1
        record = handle.record
        print(f"{record['job_id']}  app={record['app']}  "
              f"tenant={record['tenant']}  status={record['status']}"
              f"{'  (cached)' if record['cached'] else ''}")
        if args.no_wait:
            return 0
        try:
            result = handle.result(timeout=args.timeout)
        except TimeoutError:
            print(f"still running after {args.timeout}s; fetch later with "
                  f"repro jobs --server {args.server}", file=sys.stderr)
            return 1
        except ServiceError as exc:
            print(f"failed: {exc}", file=sys.stderr)
            return 1
        record = handle.record
        print(f"wall time    : {result.elapsed_s:.4f} s"
              f"{'  (served from cache)' if record['cached'] else ''}")
        if args.app == "mcf":
            clique = result.aggregate or ()
            print(f"max clique   : size {len(clique)}  {clique}")
        else:
            print(f"aggregate    : {result.aggregate}")
        _emit_outputs(result.outputs, args.output)
    return 0


def _cmd_cancel(args) -> int:
    from .core.errors import ServiceError
    from .service import ServiceClient

    with ServiceClient(args.server) as client:
        try:
            cancelled, record = client.cancel(args.job_id)
        except ServiceError as exc:
            print(f"cancel failed: {exc}", file=sys.stderr)
            return 1
        if cancelled:
            # A queued job is already settled; a running one aborts at
            # its next sync boundary and the record catches up then.
            print(f"{record['job_id']}  cancel accepted  "
                  f"status={record['status']}")
            return 0
        print(f"{record['job_id']}  not cancellable  "
              f"status={record['status']}", file=sys.stderr)
        return 1


def _cmd_jobs(args) -> int:
    from .service import ServiceClient

    with ServiceClient(args.server) as client:
        if args.shutdown:
            client.shutdown()
            print("shutdown requested")
            return 0
        records = client.jobs()
        if not records:
            print("no jobs submitted yet")
        for rec in records:
            rounds = rec["mining_rounds"]
            print(f"{rec['job_id']:10s} {rec['app']:8s} "
                  f"tenant={rec['tenant']:10s} quota={rec['quota']} "
                  f"status={rec['status']:9s} "
                  f"{'cached' if rec['cached'] else f'rounds={rounds}'}")
        if args.stats:
            for key, value in sorted(client.stats().items()):
                print(f"{key:20s} {value}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "datasets":
        for name in sorted(DATASETS):
            stats = dataset_stats(make_dataset(name, scale=args.scale))
            print(f"{name:12s} {stats}")
        return 0

    if args.command == "check":
        from .check import run_fuzz_suite

        report = run_fuzz_suite(
            seeds=range(args.seeds),
            num_vertices=args.vertices,
            edge_prob=args.edge_prob,
            num_workers=args.workers,
            compers_per_worker=args.compers,
            graph_seed=args.graph_seed,
            verbose=not args.quiet,
        )
        print(report.summary())
        return 0 if report.ok else 1

    if args.command == "node":
        from .core.clusterruntime import serve_node

        serve_node(
            args.master,
            bind_host=args.bind,
            node_id=args.node_id,
            connect_timeout_s=args.connect_timeout,
        )
        return 0

    if args.command == "shard":
        g = read_edge_list(args.graph) if args.format == "edges" else read_adjacency(args.graph)
        ShardedGraphStore.create(args.out, g, num_shards=args.num_shards)
        print(f"sharded {g.num_vertices} vertices / {g.num_edges} edges "
              f"into {args.num_shards} shards under {args.out}")
        return 0

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "submit":
        return _cmd_submit(args)

    if args.command == "cancel":
        return _cmd_cancel(args)

    if args.command == "jobs":
        return _cmd_jobs(args)

    if getattr(args, "resume", False):
        if not getattr(args, "checkpoint_dir", None):
            raise SystemExit("--resume requires --checkpoint-dir")
        if args.simulate:
            raise SystemExit("--resume is not supported with --simulate")

    graph = _load_graph(args)
    config = _make_config(args)
    factory = _app_factory(args)

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    if args.simulate:
        result = run_simulated_job(factory, graph, config)
    elif getattr(args, "resume", False):
        result = resume_job(factory, graph, _checkpoint_file(args),
                            config=config, runtime=args.runtime)
    elif getattr(args, "checkpoint_dir", None):
        result = run_job(factory, graph, config, runtime=args.runtime,
                         checkpoint_path=_checkpoint_file(args))
    else:
        result = run_job(factory, graph, config, runtime=args.runtime)
    if profiler is not None:
        import pstats

        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)

    if args.simulate:
        print(f"virtual time : {result.virtual_time_s:.4f} s "
              f"({config.num_workers} machines x {config.compers_per_worker} compers)")
        print(f"peak memory  : {result.peak_memory_bytes / (1 << 20):.2f} MB/machine")
    else:
        print(f"wall time    : {result.elapsed_s:.4f} s")

    if args.command == "mcf":
        clique = result.aggregate or ()
        print(f"max clique   : size {len(clique)}  {clique}")
    else:
        print(f"aggregate    : {result.aggregate}")
    _emit_outputs(result.outputs, args.output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
