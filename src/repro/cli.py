"""Command-line interface: run G-thinker jobs from the shell.

Examples::

    # triangle counting on an edge-list file, 4 workers x 2 compers
    python -m repro tc --graph edges.txt --workers 4 --compers 2

    # maximum clique on a built-in dataset stand-in
    python -m repro mcf --dataset friendster --scale 0.5

    # quasi-cliques, emitting results to a file
    python -m repro qc --dataset youtube --scale 0.2 --gamma 0.8 \
        --min-size 4 --output qcs.txt

    # simulate a 16x16 cluster instead of running in-process
    python -m repro mcf --dataset friendster --simulate \
        --workers 16 --compers 16

    # shard a graph into a local "HDFS" directory
    python -m repro shard --graph edges.txt --out shards/ --num-shards 8
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import Optional

from .apps import (
    BundledTriangleCountComper,
    MaxCliqueComper,
    MaximalCliqueComper,
    QuasiCliqueComper,
    TriangleCountComper,
)
from .core.config import GThinkerConfig
from .core.job import resume_job, run_job
from .core.runtime import available_runtimes
from .graph import (
    DATASETS,
    ShardedGraphStore,
    dataset_stats,
    make_dataset,
    read_adjacency,
    read_edge_list,
)
from .sim import run_simulated_job

__all__ = ["main", "build_parser"]


def _add_common(p: argparse.ArgumentParser) -> None:
    src = p.add_argument_group("graph source (pick one)")
    src.add_argument("--graph", help="edge-list or adjacency file")
    src.add_argument("--format", choices=["edges", "adjacency"], default="edges",
                     help="file format of --graph (default: edges)")
    src.add_argument("--shards", help="ShardedGraphStore directory")
    src.add_argument("--dataset", choices=sorted(DATASETS),
                     help="built-in synthetic stand-in")
    src.add_argument("--scale", type=float, default=0.5,
                     help="dataset scale factor (default 0.5)")
    src.add_argument("--seed", type=int, default=7)

    run = p.add_argument_group("execution")
    run.add_argument("--workers", type=int, default=2)
    run.add_argument("--compers", type=int, default=2)
    run.add_argument("--runtime", choices=list(available_runtimes()),
                     default="serial")
    run.add_argument("--simulate", action="store_true",
                     help="run on the discrete-event simulated cluster")
    run.add_argument("--hosts",
                     help="comma-separated host:port data addresses, one per "
                          "worker, for runtime=cluster attach mode (nodes "
                          "started with 'repro node'); omit to spawn all "
                          "nodes locally")
    run.add_argument("--cluster-bind", default="127.0.0.1:0",
                     help="host:port the cluster master's control listener "
                          "binds (default 127.0.0.1:0 — loopback, ephemeral "
                          "port; use 0.0.0.0:PORT for attach mode)")
    run.add_argument("--cache-capacity", type=int, default=50_000)
    run.add_argument("--batch-size", type=int, default=32)
    run.add_argument("--tau", type=int, default=None,
                     help="decomposition threshold (MCF)")
    run.add_argument("--output", help="write result records to this file")
    run.add_argument("--profile", action="store_true",
                     help="run under cProfile and print the top 20 "
                          "functions by cumulative time")

    ft = p.add_argument_group("fault tolerance")
    ft.add_argument("--checkpoint-dir",
                    help="write periodic checkpoints under this directory "
                         "(serial and process runtimes)")
    ft.add_argument("--checkpoint-every", type=int, default=4,
                    help="checkpoint every N syncs when --checkpoint-dir "
                         "is set (default 4)")
    ft.add_argument("--resume", action="store_true",
                    help="resume from the checkpoint in --checkpoint-dir "
                         "instead of starting fresh")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="G-thinker (ICDE 2020) reproduction - distributed subgraph mining",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, blurb in [
        ("tc", "triangle counting"),
        ("mcf", "maximum clique finding"),
        ("cliques", "maximal clique enumeration"),
        ("qc", "maximal quasi-clique enumeration"),
    ]:
        p = sub.add_parser(name, help=blurb)
        _add_common(p)
        if name == "tc":
            p.add_argument("--list", action="store_true", help="emit each triangle")
            p.add_argument("--bundle", type=int, default=0,
                           help="bundle low-degree vertices (bundle size; 0 = off)")
        if name == "qc":
            p.add_argument("--gamma", type=float, default=0.8)
            p.add_argument("--min-size", type=int, default=4)
        if name == "cliques":
            p.add_argument("--min-size", type=int, default=3)

    shard = sub.add_parser("shard", help="partition a graph into shard files")
    shard.add_argument("--graph", required=True)
    shard.add_argument("--format", choices=["edges", "adjacency"], default="edges")
    shard.add_argument("--out", required=True)
    shard.add_argument("--num-shards", type=int, required=True)

    node = sub.add_parser(
        "node",
        help="run one runtime=cluster worker node and attach to a master",
    )
    node.add_argument("--master", required=True,
                      help="host:port of the driver's --cluster-bind listener")
    node.add_argument("--bind", default="127.0.0.1",
                      help="host/interface this node's data listener binds "
                           "and advertises to its peers (default 127.0.0.1)")
    node.add_argument("--node-id", type=int, default=-1,
                      help="worker slot to claim (default: master assigns)")
    node.add_argument("--connect-timeout", type=float, default=30.0,
                      help="seconds to keep retrying the master connection")

    info = sub.add_parser("datasets", help="list built-in dataset stand-ins")
    info.add_argument("--scale", type=float, default=0.5)

    check = sub.add_parser(
        "check",
        help="fuzz the concurrency protocols (seeded interleavings + checkers)",
    )
    check.add_argument("--seeds", type=int, default=20,
                       help="number of interleaving seeds per app (default 20)")
    check.add_argument("--vertices", type=int, default=80,
                       help="Erdos-Renyi graph size (default 80)")
    check.add_argument("--edge-prob", type=float, default=0.1)
    check.add_argument("--workers", type=int, default=2)
    check.add_argument("--compers", type=int, default=2)
    check.add_argument("--graph-seed", type=int, default=7)
    check.add_argument("--quiet", action="store_true",
                       help="only print the final summary")
    return parser


def _load_graph(args):
    sources = [bool(args.graph), bool(args.shards), bool(args.dataset)]
    if sum(sources) != 1:
        raise SystemExit("exactly one of --graph, --shards, --dataset is required")
    if args.graph:
        if args.format == "edges":
            return read_edge_list(args.graph)
        return read_adjacency(args.graph)
    if args.shards:
        return ShardedGraphStore(args.shards)
    return make_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _make_config(args) -> GThinkerConfig:
    kwargs = dict(
        num_workers=args.workers,
        compers_per_worker=args.compers,
        cache_capacity=args.cache_capacity,
        task_batch_size=args.batch_size,
    )
    if args.tau is not None:
        kwargs["decompose_threshold"] = args.tau
    if getattr(args, "checkpoint_dir", None):
        kwargs["checkpoint_dir"] = args.checkpoint_dir
        kwargs["checkpoint_every_syncs"] = args.checkpoint_every
    if getattr(args, "hosts", None):
        kwargs["cluster_hosts"] = tuple(
            h.strip() for h in args.hosts.split(",") if h.strip()
        )
    if getattr(args, "cluster_bind", None):
        kwargs["cluster_bind"] = args.cluster_bind
    return GThinkerConfig(**kwargs)


def _checkpoint_file(args) -> str:
    import os.path

    return os.path.join(args.checkpoint_dir, f"{args.command}.ckpt")


def _app_factory(args):
    # functools.partial, not lambdas: runtime="process" pickles the
    # factory into every worker process.
    if args.command == "tc":
        if args.bundle:
            return functools.partial(BundledTriangleCountComper,
                                     bundle_size=args.bundle)
        return functools.partial(TriangleCountComper, list_triangles=args.list)
    if args.command == "mcf":
        return MaxCliqueComper
    if args.command == "cliques":
        return functools.partial(MaximalCliqueComper, min_size=args.min_size)
    if args.command == "qc":
        return functools.partial(QuasiCliqueComper, gamma=args.gamma,
                                 min_size=args.min_size)
    raise SystemExit(f"unknown command {args.command}")


def _emit_outputs(outputs, path: Optional[str]) -> None:
    if not path:
        return
    with open(path, "w", encoding="ascii") as f:
        for rec in outputs:
            f.write(f"{rec}\n")
    print(f"wrote {len(outputs)} records to {path}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "datasets":
        for name in sorted(DATASETS):
            stats = dataset_stats(make_dataset(name, scale=args.scale))
            print(f"{name:12s} {stats}")
        return 0

    if args.command == "check":
        from .check import run_fuzz_suite

        report = run_fuzz_suite(
            seeds=range(args.seeds),
            num_vertices=args.vertices,
            edge_prob=args.edge_prob,
            num_workers=args.workers,
            compers_per_worker=args.compers,
            graph_seed=args.graph_seed,
            verbose=not args.quiet,
        )
        print(report.summary())
        return 0 if report.ok else 1

    if args.command == "node":
        from .core.clusterruntime import serve_node

        serve_node(
            args.master,
            bind_host=args.bind,
            node_id=args.node_id,
            connect_timeout_s=args.connect_timeout,
        )
        return 0

    if args.command == "shard":
        g = read_edge_list(args.graph) if args.format == "edges" else read_adjacency(args.graph)
        ShardedGraphStore.create(args.out, g, num_shards=args.num_shards)
        print(f"sharded {g.num_vertices} vertices / {g.num_edges} edges "
              f"into {args.num_shards} shards under {args.out}")
        return 0

    if getattr(args, "resume", False):
        if not getattr(args, "checkpoint_dir", None):
            raise SystemExit("--resume requires --checkpoint-dir")
        if args.simulate:
            raise SystemExit("--resume is not supported with --simulate")

    graph = _load_graph(args)
    config = _make_config(args)
    factory = _app_factory(args)

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    if args.simulate:
        result = run_simulated_job(factory, graph, config)
    elif getattr(args, "resume", False):
        result = resume_job(factory, graph, _checkpoint_file(args),
                            config=config, runtime=args.runtime)
    elif getattr(args, "checkpoint_dir", None):
        result = run_job(factory, graph, config, runtime=args.runtime,
                         checkpoint_path=_checkpoint_file(args))
    else:
        result = run_job(factory, graph, config, runtime=args.runtime)
    if profiler is not None:
        import pstats

        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)

    if args.simulate:
        print(f"virtual time : {result.virtual_time_s:.4f} s "
              f"({config.num_workers} machines x {config.compers_per_worker} compers)")
        print(f"peak memory  : {result.peak_memory_bytes / (1 << 20):.2f} MB/machine")
    else:
        print(f"wall time    : {result.elapsed_s:.4f} s")

    if args.command == "mcf":
        clique = result.aggregate or ()
        print(f"max clique   : size {len(clique)}  {clique}")
    else:
        print(f"aggregate    : {result.aggregate}")
    _emit_outputs(result.outputs, args.output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
