"""Single-writer / lock-order assertion layer.

The paper's argument for leaving ``Q_task`` and the GC cursor unlocked
is *single-writer discipline*: exactly one thread may ever mutate them.
These guards turn that argument into a checked invariant — a second
thread caught inside a guarded section while another is still there is a
concrete race witness, not a heuristic.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from ..core.containers import TaskQueue
from ..core.errors import ProtocolViolation

__all__ = ["SingleWriterGuard", "CheckedTaskQueue"]


class SingleWriterGuard:
    """Detects overlapping entries into a nominally single-writer section.

    Re-entrant for the owning thread (a comper's ``append`` during a
    spill re-enters through no guard, but apps may nest add_task calls).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._owner: int = 0  # thread ident currently inside, 0 = none
        self._depth = 0

    @contextmanager
    def entered(self):
        me = threading.get_ident()
        with self._lock:
            if self._owner not in (0, me):
                raise ProtocolViolation(
                    "single-writer",
                    f"concurrent mutation of {self.name}: thread {me} "
                    f"entered while thread {self._owner} is still inside",
                )
            self._owner = me
            self._depth += 1
        try:
            yield
        finally:
            with self._lock:
                self._depth -= 1
                if self._depth == 0:
                    self._owner = 0


class CheckedTaskQueue(TaskQueue):
    """``Q_task`` with every mutation wrapped in a single-writer guard.

    Reads (``__len__``, ``memory_estimate``) stay unguarded: the memory
    gauge and the master legitimately sample them cross-thread.
    """

    def __init__(self, batch_size: int, name: str = "Q_task") -> None:
        super().__init__(batch_size)
        self.guard = SingleWriterGuard(name)

    def append(self, task):
        with self.guard.entered():
            return super().append(task)

    def prepend(self, tasks):
        with self.guard.entered():
            return super().prepend(tasks)

    def pop(self):
        with self.guard.entered():
            return super().pop()

    def drain(self):
        with self.guard.entered():
            return super().drain()
