"""The task-lifecycle state machine.

Every task on a worker moves through::

    spawned ──► queued ──► computing ──► finished
                  ▲          │   ▲ │
     (refill/    │           │   │ └──► parked ──► ready ─┐
      adopt)     │           ▼   └────────────────────────┘
    spilled ◄────┴──────── yielded

The checker validates every transition and every ownership handoff:

* a task is owned by exactly one comper at a time; only the owner may
  start, park or finish it;
* a task id is minted by the *parking* comper (so arrivals route back to
  the engine holding the pending entry) and must be invalidated (-1)
  at yield and before any serialization — a task entering ``Q_task``,
  a spill batch, or an adopted (refilled/stolen) batch with a live id
  is exactly the misrouting bug class this checker exists to catch;
* spill and adoption are the only ownership handoffs, and they only
  happen from/into the ``queued`` state.

Violations raise :class:`~repro.core.errors.ProtocolViolation`
immediately, aborting the job with the offending task attached.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence

from ..core.api import Task
from ..core.containers import comper_of_task_id
from ..core.errors import ProtocolViolation

__all__ = ["TaskState", "TaskLifecycleChecker"]


class TaskState:
    """Lifecycle states (spawned/finished/spilled are untracked ends)."""

    QUEUED = "queued"
    COMPUTING = "computing"
    PARKED = "parked"
    READY = "ready"
    YIELDED = "yielded"


class _Entry:
    __slots__ = ("task", "state", "owner")

    def __init__(self, task: Task, state: str, owner: int) -> None:
        self.task = task  # strong ref: keeps id(task) stable while tracked
        self.state = state
        self.owner = owner


class TaskLifecycleChecker:
    """Validates task transitions and ownership on one worker.

    Thread-safe: hooks are called from comper threads and from the
    comm/GC service thread (``on_ready`` via the arrival path).
    """

    def __init__(self, worker_id: int, compers_per_worker: int) -> None:
        self.worker_id = worker_id
        self._comper_lo = worker_id * compers_per_worker
        self._comper_hi = self._comper_lo + compers_per_worker
        self._lock = threading.Lock()
        self._entries: Dict[int, _Entry] = {}
        self._transitions = 0

    # -- internals ---------------------------------------------------------

    def _fail(self, message: str, task: Optional[Task] = None) -> None:
        task_id = task.task_id if task is not None else -1
        raise ProtocolViolation("task-lifecycle", message, task_id=task_id)

    def _expect(self, task: Task, hook: str, allowed: Sequence[str]) -> _Entry:
        """Fetch the entry for ``task`` and assert its current state."""
        entry = self._entries.get(id(task))
        state = entry.state if entry is not None else None
        if state not in allowed:
            self._fail(
                f"{hook}: task in state {state!r}, expected one of {list(allowed)}",
                task,
            )
        return entry

    def _own_comper(self, comper_id: int, hook: str) -> None:
        if not self._comper_lo <= comper_id < self._comper_hi:
            self._fail(
                f"{hook}: comper {comper_id} does not belong to "
                f"worker {self.worker_id}"
            )

    # -- hooks (called by ComperEngine) -------------------------------------

    def on_queued(self, task: Task, comper_id: int) -> None:
        """A task enters ``Q_task``: a fresh spawn or a yielded re-queue."""
        self._own_comper(comper_id, "on_queued")
        with self._lock:
            entry = self._entries.get(id(task))
            if entry is not None and entry.state != TaskState.YIELDED:
                self._fail(
                    f"on_queued: task re-queued from state {entry.state!r} "
                    f"(only yielded tasks may re-enter Q_task)",
                    task,
                )
            if entry is not None and entry.owner != comper_id:
                self._fail(
                    f"on_queued: yielded task owned by comper {entry.owner} "
                    f"re-queued by comper {comper_id}",
                    task,
                )
            if task.task_id != -1:
                self._fail(
                    "on_queued: task entered Q_task with a live task id — "
                    "ids must be invalidated at yield so a spill/steal "
                    "cannot carry them to a different owner",
                    task,
                )
            self._entries[id(task)] = _Entry(task, TaskState.QUEUED, comper_id)
            self._transitions += 1

    def on_spilled(self, batch: Sequence[Task], comper_id: int) -> None:
        """A ``Q_task`` overflow batch leaves memory for ``L_file``."""
        with self._lock:
            for task in batch:
                entry = self._expect(task, "on_spilled", (TaskState.QUEUED,))
                if entry.owner != comper_id:
                    self._fail(
                        f"on_spilled: comper {comper_id} spilled a task "
                        f"owned by comper {entry.owner}",
                        task,
                    )
                if task.task_id != -1:
                    self._fail(
                        "on_spilled: task spilled with a live task id — the "
                        "refilling comper (possibly on another worker) would "
                        "park it under an id that routes to this comper",
                        task,
                    )
                del self._entries[id(task)]
                self._transitions += 1

    def on_adopted(self, tasks: Sequence[Task], comper_id: int) -> None:
        """A batch from ``L_file`` (spilled or stolen) enters a queue."""
        self._own_comper(comper_id, "on_adopted")
        with self._lock:
            for task in tasks:
                if id(task) in self._entries:
                    self._fail(
                        "on_adopted: refilled task is already tracked "
                        "(same object adopted twice?)",
                        task,
                    )
                if task.task_id != -1:
                    self._fail(
                        "on_adopted: task arrived from L_file with a live "
                        "task id — serialize_tasks must strip ids so the "
                        "new owner mints a fresh one",
                        task,
                    )
                self._entries[id(task)] = _Entry(task, TaskState.QUEUED, comper_id)
                self._transitions += 1

    def on_started(self, task: Task, comper_id: int) -> None:
        """The owning comper popped the task from ``Q_task``."""
        with self._lock:
            entry = self._expect(task, "on_started", (TaskState.QUEUED,))
            if entry.owner != comper_id:
                self._fail(
                    f"on_started: comper {comper_id} popped a task owned "
                    f"by comper {entry.owner}",
                    task,
                )
            entry.state = TaskState.COMPUTING
            self._transitions += 1

    def on_parked(self, task: Task, comper_id: int) -> None:
        """The task enters ``T_task`` to wait for remote vertices."""
        with self._lock:
            entry = self._expect(task, "on_parked", (TaskState.COMPUTING,))
            if entry.owner != comper_id:
                self._fail(
                    f"on_parked: comper {comper_id} parked a task owned "
                    f"by comper {entry.owner}",
                    task,
                )
            if task.task_id == -1:
                self._fail("on_parked: task parked without a task id", task)
            minted_by = comper_of_task_id(task.task_id)
            if minted_by != comper_id:
                self._fail(
                    f"on_parked: task id minted by comper {minted_by} but "
                    f"parked on comper {comper_id} — arrivals will be "
                    f"routed to the wrong engine",
                    task,
                )
            entry.state = TaskState.PARKED
            self._transitions += 1

    def on_ready(self, task: Task) -> None:
        """All requested vertices arrived; the task moves to ``B_task``."""
        with self._lock:
            entry = self._expect(task, "on_ready", (TaskState.PARKED,))
            entry.state = TaskState.READY
            self._transitions += 1

    def on_resumed(self, task: Task, comper_id: int) -> None:
        """The owner took the ready task out of ``B_task`` to compute."""
        with self._lock:
            entry = self._expect(task, "on_resumed", (TaskState.READY,))
            if entry.owner != comper_id:
                self._fail(
                    f"on_resumed: comper {comper_id} resumed a task owned "
                    f"by comper {entry.owner}",
                    task,
                )
            entry.state = TaskState.COMPUTING
            self._transitions += 1

    def on_yielded(self, task: Task, comper_id: int) -> None:
        """The task hit the inline-iteration limit and leaves the comper."""
        with self._lock:
            entry = self._expect(task, "on_yielded", (TaskState.COMPUTING,))
            if entry.owner != comper_id:
                self._fail(
                    f"on_yielded: comper {comper_id} yielded a task owned "
                    f"by comper {entry.owner}",
                    task,
                )
            if task.task_id != -1:
                self._fail(
                    "on_yielded: task id not invalidated at yield — a stale "
                    "id survives re-queue/spill/steal and misroutes the "
                    "next arrival",
                    task,
                )
            if task.pulls_in_flight:
                self._fail(
                    "on_yielded: task yielded with pulls still in flight "
                    "(cache locks would leak)",
                    task,
                )
            entry.state = TaskState.YIELDED
            self._transitions += 1

    def on_finished(self, task: Task, comper_id: int) -> None:
        with self._lock:
            entry = self._expect(task, "on_finished", (TaskState.COMPUTING,))
            if entry.owner != comper_id:
                self._fail(
                    f"on_finished: comper {comper_id} finished a task owned "
                    f"by comper {entry.owner}",
                    task,
                )
            del self._entries[id(task)]
            self._transitions += 1

    # -- end-of-job ---------------------------------------------------------

    @property
    def transitions(self) -> int:
        with self._lock:
            return self._transitions

    def live_tasks(self) -> int:
        with self._lock:
            return len(self._entries)

    def assert_quiescent(self) -> None:
        """At job termination no task may remain in any tracked state."""
        with self._lock:
            if self._entries:
                states = sorted(
                    f"{e.state}@comper{e.owner}" for e in self._entries.values()
                )
                raise ProtocolViolation(
                    "task-lifecycle",
                    f"worker {self.worker_id} terminated with "
                    f"{len(self._entries)} unfinished tracked tasks: {states}",
                )
