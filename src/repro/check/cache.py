"""OP1–OP4 cache-protocol checker.

:class:`CheckedVertexCache` is a drop-in :class:`VertexCache` that keeps
a *per-task lock ledger* — which task holds how many locks on which
vertex — beside the cache's own ``lock_count``s, and cross-checks the
two on every operation:

* **lock-count balance**: for every touched vertex, the Γ-table (or
  R-table) lock count equals the sum of ledger holds across tasks;
* **no release-without-request** (and no unattributed release): OP3 must
  name a task that holds a ledger lock on the vertex;
* **Γ/Z/R disjointness** and Z-table consistency on the touched bucket.

Operations are serialized by one checker lock so the assertions are
exact (the base class' finer-grained bucket locking is still exercised
underneath).  GC additionally runs inside a
:class:`~repro.check.guards.SingleWriterGuard`, asserting the
single-caller discipline the round-robin cursor relies on.
"""

from __future__ import annotations

import threading
from typing import Dict

from ..core.errors import ProtocolViolation
from ..core.vertex_cache import (
    BatchRequestOutcome,
    RequestOutcome,
    VertexCache,
)
from .guards import SingleWriterGuard

__all__ = ["CheckedVertexCache"]


class CheckedVertexCache(VertexCache):
    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._check_lock = threading.RLock()
        # task_id -> {vertex -> holds}; _holds_by_vertex is the column sum.
        self._ledger: Dict[int, Dict[int, int]] = {}
        self._holds_by_vertex: Dict[int, int] = {}
        self._gc_guard = SingleWriterGuard("T_cache GC cursor")

    # -- ledger ------------------------------------------------------------

    def _fail(self, message: str, task_id: int = -1, vertex: int = -1) -> None:
        raise ProtocolViolation("cache-protocol", message, task_id=task_id, vertex=vertex)

    def _ledger_add(self, task_id: int, v: int) -> None:
        self._ledger.setdefault(task_id, {})[v] = (
            self._ledger.get(task_id, {}).get(v, 0) + 1
        )
        self._holds_by_vertex[v] = self._holds_by_vertex.get(v, 0) + 1

    def _ledger_remove(self, task_id: int, v: int) -> None:
        per_task = self._ledger.get(task_id)
        if not per_task or per_task.get(v, 0) <= 0:
            self._fail(
                "OP3 release of a vertex the task holds no lock on "
                "(release-without-request)",
                task_id=task_id,
                vertex=v,
            )
        per_task[v] -= 1
        if per_task[v] == 0:
            del per_task[v]
            if not per_task:
                del self._ledger[task_id]
        self._holds_by_vertex[v] -= 1
        if self._holds_by_vertex[v] == 0:
            del self._holds_by_vertex[v]

    def _check_balance(self, v: int) -> None:
        """Γ/R lock count of ``v`` must equal the ledger column sum."""
        b = self._bucket(v)
        with b.lock:
            entry = b.gamma.get(v)
            pending = b.requests.get(v)
            if entry is not None and pending is not None:
                self._fail("vertex in both Γ-table and R-table", vertex=v)
            if entry is not None:
                have = entry.lock_count
            elif pending is not None:
                have = pending.lock_count
            else:
                have = 0
            want = self._holds_by_vertex.get(v, 0)
            if have != want:
                self._fail(
                    f"lock-count imbalance: cache says {have}, "
                    f"task ledger says {want}",
                    vertex=v,
                )

    def _check_bucket(self, v: int) -> None:
        """Structural Γ/Z/R invariants of the bucket holding ``v``."""
        b = self._bucket(v)
        with b.lock:
            for u in b.zero:
                if u not in b.gamma:
                    self._fail("Z-table entry not in Γ-table", vertex=u)
                if b.gamma[u].lock_count != 0:
                    self._fail(
                        f"Z-table entry has lock_count {b.gamma[u].lock_count}",
                        vertex=u,
                    )
            for u, entry in b.gamma.items():
                if entry.lock_count < 0:
                    self._fail("negative lock count", vertex=u)
                if entry.lock_count == 0 and u not in b.zero:
                    self._fail("zero-lock Γ-table entry missing from Z-table", vertex=u)
                if u in b.requests:
                    self._fail("vertex in both Γ-table and R-table", vertex=u)

    # -- checked OP1-OP4 ---------------------------------------------------

    def request(self, v: int, task_id: int) -> RequestOutcome:
        with self._check_lock:
            if task_id == -1:
                self._fail("OP1 request without a task id", vertex=v)
            outcome = super().request(v, task_id)
            self._ledger_add(task_id, v)
            self._check_balance(v)
            self._check_bucket(v)
            return outcome

    def insert_response(self, v, label, adj):
        with self._check_lock:
            waiting = super().insert_response(v, label, adj)
            # OP2 transfers the R-table lock count; every waiter must
            # hold exactly the ledger locks taken at OP1 time.
            for task_id in waiting:
                holds = self._ledger.get(task_id, {}).get(v, 0)
                if holds < 1:
                    self._fail(
                        "OP2 delivered a response to a task with no "
                        "ledger lock on the vertex",
                        task_id=task_id,
                        vertex=v,
                    )
            self._check_balance(v)
            self._check_bucket(v)
            return waiting

    def release(self, v: int, task_id: int = -1) -> None:
        with self._check_lock:
            self._ledger_remove(task_id, v)
            super().release(v, task_id)
            self._check_balance(v)
            self._check_bucket(v)

    # Bulk ops decompose into the checked per-vertex operations so every
    # batch element passes through the ledger and invariant checks.  The
    # one-lock-per-bucket optimization is deliberately *not* taken here:
    # the checker's job is semantics, and the decomposition is exactly
    # the observational-equivalence contract the property tests assert.

    def request_batch(self, vertices, task_id: int) -> BatchRequestOutcome:
        with self._check_lock:
            hits = 0
            duplicates = 0
            to_send = []
            for v in vertices:
                outcome = self.request(v, task_id)
                if outcome.status == RequestOutcome.HIT:
                    hits += 1
                elif outcome.status == RequestOutcome.MISS_SEND:
                    to_send.append(v)
                else:
                    duplicates += 1
            return BatchRequestOutcome(hits, to_send, duplicates)

    def insert_responses(self, rows):
        with self._check_lock:
            return [
                (int(v), self.insert_response(v, label, adj))
                for v, label, adj in rows
            ]

    def release_batch(self, vertices, task_id: int = -1) -> None:
        with self._check_lock:
            for v in vertices:
                self.release(v, task_id)

    def get_locked(self, v: int, task_id: int = -1):
        with self._check_lock:
            if self._ledger.get(task_id, {}).get(v, 0) < 1:
                self._fail(
                    "get_locked by a task holding no ledger lock on the vertex",
                    task_id=task_id,
                    vertex=v,
                )
            return super().get_locked(v, task_id)

    def evict(self, max_evictions=None) -> int:
        # Guard entered before the serializing lock so a second
        # concurrent GC caller is detected as overlap, not silently
        # serialized away.
        with self._gc_guard.entered():
            with self._check_lock:
                evicted = super().evict(max_evictions)
                if evicted:
                    for v, holds in self._holds_by_vertex.items():
                        if holds > 0:
                            b = self._bucket(v)
                            with b.lock:
                                present = v in b.gamma or v in b.requests
                            if not present:
                                self._fail(
                                    "OP4 evicted a vertex with live task locks",
                                    vertex=v,
                                )
                return evicted

    # -- end-of-job ---------------------------------------------------------

    def assert_quiescent(self) -> None:
        """At job termination: no pending requests, no locks, no ledger."""
        with self._check_lock:
            if self._ledger:
                leaks = {
                    hex(tid): dict(held) for tid, held in self._ledger.items()
                }
                self._fail(f"task lock ledger not empty at termination: {leaks}")
            self.check_invariants()
            for b in self._buckets:
                with b.lock:
                    if b.requests:
                        self._fail(
                            f"R-table not empty at termination: "
                            f"{sorted(b.requests)}"
                        )
                    for v, entry in b.gamma.items():
                        if entry.lock_count != 0:
                            self._fail(
                                f"vertex still locked at termination "
                                f"(lock_count={entry.lock_count})",
                                vertex=v,
                            )
