"""Seeded interleaving fuzzing: :class:`CheckedRuntime`.

The serial runtime steps every component in one fixed round-robin order,
so whole families of interleavings (a comm response landing between two
comper rounds, GC starving a comper, one comper racing far ahead) are
never exercised — and the threaded runtime exercises them *randomly*,
so a protocol bug surfaces as a flake.  ``CheckedRuntime`` sits in
between: a single-threaded scheduler that perturbs the comper/comm/GC
step order **deterministically from a seed**.  A seed that trips a
protocol violation trips it on every run.

Perturbations per round, all drawn from the seeded RNG:

* the step order of all components (compers, comm services, GC) is
  reshuffled;
* each component is randomly *starved* for the round with probability
  ``starve_prob``, letting queues/caches build pressure;
* unless the config pins ``inline_iteration_limit``, every comper gets
  a random inline-yield limit, forcing the yield → re-queue →
  spill/steal identity handoffs that only long tasks normally take.

After termination the runtime asserts end-of-job quiescence on every
enabled checker (empty lock ledger, no pending R-table entries, no
tracked tasks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.api import Comper, SumAggregator, Task
from ..core.errors import GThinkerError

__all__ = ["CheckedRuntime", "FuzzReport", "run_fuzz_suite"]


class HopSumComper(Comper):
    """Fuzz workload: greedy max-neighbor walks, one per edge endpoint.

    Unlike the mining apps (whose compute() usually finishes in one
    iteration), every walk pulls exactly one vertex per iteration for
    ``HOPS`` iterations, so under small inline limits tasks constantly
    park, resume, *yield*, re-queue, spill and get stolen — the identity
    handoffs the lifecycle checker exists to validate.  The endpoint sum
    has a trivial serial oracle.
    """

    HOPS = 3

    def make_aggregator(self):
        return SumAggregator()

    def task_spawn(self, v):
        for n in v.adj:
            task = Task(context=self.HOPS)
            task.pull(n)
            self.add_task(task)

    def compute(self, task, frontier):
        view = frontier[0]
        task.context -= 1
        if task.context == 0:
            self.aggregate(view.id)
            return False
        task.pull(max(view.adj))
        return True


def hop_sum_oracle(graph, hops=HopSumComper.HOPS):
    total = 0
    for v in graph.vertices():
        for cur in graph.neighbors(v):
            for _ in range(hops - 1):
                cur = max(graph.neighbors(cur))
            total += cur
    return total


class CheckedRuntime:
    """Deterministic interleaving fuzzer (single thread, seeded order)."""

    #: Per-round probability that a component is skipped (starved).
    STARVE_PROB = 0.25

    #: Inline-yield limits sampled per comper when the config leaves
    #: ``inline_iteration_limit`` unset: mostly aggressive (forcing the
    #: yield path) with the engine default mixed in.
    INLINE_LIMIT_CHOICES = (1, 1, 2, 3, 5, 8, 64)

    def __init__(
        self,
        seed: int = 0,
        max_rounds: int = 5_000_000,
        starve_prob: Optional[float] = None,
        perturb_inline_limit: bool = True,
    ) -> None:
        self.seed = seed
        self.max_rounds = max_rounds
        self.starve_prob = self.STARVE_PROB if starve_prob is None else starve_prob
        self.perturb_inline_limit = perturb_inline_limit

    def run(self, cluster) -> None:
        cfg = cluster.config
        rng = random.Random(self.seed)

        steps = []
        for w in cluster.workers:
            steps.append(w.comm.step)
            steps.append(w.gc_step)
            for engine in w.engines:
                if self.perturb_inline_limit and cfg.inline_iteration_limit is None:
                    engine.inline_limit = rng.choice(self.INLINE_LIMIT_CHOICES)
                steps.append(engine.step)

        order = list(range(len(steps)))
        rounds = 0
        while True:
            rounds += 1
            rng.shuffle(order)
            worked = False
            for i in order:
                if rng.random() < self.starve_prob:
                    continue
                worked = steps[i]() or worked
            if rounds % cfg.sync_every_rounds == 0 or not worked:
                if cluster.master.sync():
                    break
            if rounds > self.max_rounds:
                raise GThinkerError(
                    f"checked job did not terminate within "
                    f"{self.max_rounds} rounds (seed {self.seed})"
                )
        self._assert_quiescent(cluster)

    def _assert_quiescent(self, cluster) -> None:
        """End-of-job protocol state: everything released and finished."""
        for w in cluster.workers:
            w.cache.check_invariants()
            if hasattr(w.cache, "assert_quiescent"):
                w.cache.assert_quiescent()
            if w.checker is not None:
                w.checker.assert_quiescent()


@dataclass
class FuzzRun:
    app: str
    seed: int
    ok: bool
    detail: str = ""


@dataclass
class FuzzReport:
    runs: List[FuzzRun] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.runs)

    @property
    def failures(self) -> List[FuzzRun]:
        return [r for r in self.runs if not r.ok]

    def summary(self) -> str:
        n_fail = len(self.failures)
        lines = [
            f"{len(self.runs)} fuzz runs, {len(self.runs) - n_fail} passed, "
            f"{n_fail} failed"
        ]
        for r in self.failures:
            lines.append(f"  FAIL {r.app} seed={r.seed}: {r.detail}")
        return "\n".join(lines)


def run_fuzz_suite(
    seeds=range(20),
    num_vertices: int = 80,
    edge_prob: float = 0.1,
    num_workers: int = 2,
    compers_per_worker: int = 2,
    graph_seed: int = 7,
    verbose: bool = False,
) -> FuzzReport:
    """Fuzz the example apps (TC + MCF) under the protocol checkers.

    Every (app, seed) pair runs a full job on :class:`CheckedRuntime`
    with checkers enabled and validates the answer against the serial
    oracle.  Used by ``python -m repro check`` and the test suite.
    """
    from ..algorithms import count_triangles, max_clique_reference
    from ..apps import MaxCliqueComper, TriangleCountComper
    from ..core.config import GThinkerConfig
    from ..core.job import run_job
    from ..graph import erdos_renyi

    graph = erdos_renyi(num_vertices, edge_prob, seed=graph_seed)
    expected_triangles = count_triangles(graph)
    expected_clique = len(max_clique_reference(graph))
    expected_hops = hop_sum_oracle(graph)

    def check_tc(result):
        if result.aggregate != expected_triangles:
            return f"triangle count {result.aggregate} != {expected_triangles}"
        return ""

    def check_mcf(result):
        got = len(result.aggregate or ())
        if got != expected_clique:
            return f"max clique size {got} != {expected_clique}"
        return ""

    def check_hop(result):
        if result.aggregate != expected_hops:
            return f"hop sum {result.aggregate} != {expected_hops}"
        return ""

    apps = [
        ("tc", TriangleCountComper, check_tc),
        ("mcf", MaxCliqueComper, check_mcf),
        ("hop", HopSumComper, check_hop),
    ]

    report = FuzzReport()
    for app_name, factory, validate in apps:
        for seed in seeds:
            cfg = GThinkerConfig(
                num_workers=num_workers,
                compers_per_worker=compers_per_worker,
                task_batch_size=2,
                cache_capacity=64,
                cache_buckets=16,
                decompose_threshold=16,
                check_protocols=True,
                seed=seed,
            )
            try:
                result = run_job(factory, graph, cfg, runtime="checked")
                detail = validate(result)
            except GThinkerError as exc:
                detail = f"{type(exc).__name__}: {exc}"
            run = FuzzRun(app=app_name, seed=seed, ok=not detail, detail=detail)
            report.runs.append(run)
            if verbose:
                status = "ok  " if run.ok else "FAIL"
                print(f"  {status} {app_name} seed={seed} {detail}")
    return report
