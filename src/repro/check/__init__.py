"""Concurrency protocol checkers (opt-in; see DESIGN.md §8).

The ThreadedRuntime claims to exercise the paper's lock protocols — the
bucketed vertex cache ``T_cache`` (Fig. 6, OP1–OP4) and the task
containers ``Q_task``/``B_task``/``T_task`` (Fig. 7) — but nothing in
the hot path *verifies* them.  This package adds three layers of
verification, all off by default and enabled together via
``GThinkerConfig.check_protocols`` or the ``REPRO_CHECK=1`` environment
variable:

* :class:`TaskLifecycleChecker` — a state machine over every task's life
  (spawned → queued → parked → ready → computing → yielded/finished)
  that validates each transition and each ownership handoff across
  spill, refill and steal.  In particular it enforces the task-identity
  protocol: ids are minted by the parking comper and invalidated at
  yield and at serialization, so an arrival is always routed to the
  engine that actually holds the pending entry.
* :class:`CheckedVertexCache` — a :class:`~repro.core.vertex_cache.VertexCache`
  subclass that keeps a per-task lock ledger and asserts OP1–OP4
  invariants (lock-count balance, Γ/Z/R disjointness, no
  release-without-request) on every operation.
* :class:`CheckedTaskQueue` / :class:`SingleWriterGuard` — overlap
  detectors for the single-writer structures (``Q_task``, the GC
  cursor): a second thread caught inside a guarded section is a race
  witness, reported as :class:`~repro.core.errors.ProtocolViolation`.

:class:`CheckedRuntime` is a seeded interleaving fuzzer: it perturbs the
comper/comm/GC step order deterministically from a seed so that protocol
races *reproduce* instead of flaking.  ``python -m repro check`` runs it
over the example apps.
"""

from .cache import CheckedVertexCache
from .fuzz import CheckedRuntime, FuzzReport, run_fuzz_suite
from .guards import CheckedTaskQueue, SingleWriterGuard
from .lifecycle import TaskLifecycleChecker, TaskState

__all__ = [
    "CheckedRuntime",
    "CheckedTaskQueue",
    "CheckedVertexCache",
    "FuzzReport",
    "SingleWriterGuard",
    "TaskLifecycleChecker",
    "TaskState",
    "run_fuzz_suite",
]
