"""Shared result type and cost-model helpers for the baseline systems.

Each baseline *really computes* its answer (validated against the same
oracles as G-thinker) while accumulating modeled time the way its
execution model spends it: measured CPU seconds divided by the cores its
design can actually use, network bytes over the
:class:`~repro.core.config.NetworkModel`, and disk bytes over the
:class:`~repro.core.config.DiskModel`.  A baseline that exceeds its
memory budget reports a failure instead of an answer — that is how the
paper's Table III dashes ("out of memory", "> 24 hr") arise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.config import DiskModel, MachineModel, NetworkModel

__all__ = ["BaselineResult", "CostModel"]


@dataclass
class BaselineResult:
    """Outcome of one baseline run."""

    system: str
    app: str
    answer: Any = None
    virtual_time_s: float = 0.0
    peak_memory_bytes: float = 0.0
    failed: Optional[str] = None  # e.g. "out of memory", "exceeded time budget"
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failed is None


class CostModel:
    """Accumulates the three cost components of a baseline run."""

    def __init__(
        self,
        machines: int = 1,
        threads: int = 1,
        network: Optional[NetworkModel] = None,
        disk: Optional[DiskModel] = None,
        machine: Optional[MachineModel] = None,
        memory_budget_bytes: Optional[float] = None,
    ) -> None:
        if machines < 1 or threads < 1:
            raise ValueError("machines and threads must be >= 1")
        self.machines = machines
        self.threads = threads
        self.network = network or NetworkModel()
        self.disk = disk or DiskModel()
        self.machine = machine or MachineModel()
        self.memory_budget_bytes = (
            memory_budget_bytes
            if memory_budget_bytes is not None
            else self.machine.memory_bytes
        )
        self.parallel_cpu_s = 0.0   # divided across machines*threads
        self.serial_cpu_s = 0.0     # inherently serial (single-lock paths, 1 thread)
        self.network_bytes = 0.0
        self.network_rounds = 0
        self.disk_bytes = 0.0
        self.disk_ios = 0
        self._peak_memory = 0.0

    # -- charging ------------------------------------------------------

    def charge_parallel_cpu(self, seconds: float) -> None:
        self.parallel_cpu_s += seconds * self.machine.cpu_speed

    def charge_serial_cpu(self, seconds: float) -> None:
        self.serial_cpu_s += seconds * self.machine.cpu_speed

    def charge_network(self, num_bytes: float, rounds: int = 1) -> None:
        self.network_bytes += num_bytes
        self.network_rounds += rounds

    def charge_disk(self, num_bytes: float, ios: int = 1) -> None:
        self.disk_bytes += num_bytes
        self.disk_ios += ios

    def observe_memory(self, per_machine_bytes: float) -> None:
        self._peak_memory = max(self._peak_memory, per_machine_bytes)

    def memory_exceeded(self) -> bool:
        return self._peak_memory > self.memory_budget_bytes

    @property
    def peak_memory_bytes(self) -> float:
        return self._peak_memory

    # -- totals -----------------------------------------------------------

    def total_time_s(self) -> float:
        """The modeled makespan.

        CPU that the design parallelizes is divided by all cores; serial
        CPU is not.  Network bytes cross ``machines`` links concurrently;
        disk bytes hit each machine's one disk (already accounted per
        machine by the callers — they charge only the busiest machine's
        bytes or the aggregate over machines, whichever the model says).
        """
        cpu = self.parallel_cpu_s / (self.machines * self.threads) + self.serial_cpu_s
        net = (
            self.network_bytes / (self.machines * self.network.bandwidth_bytes_per_s)
            + self.network_rounds * self.network.latency_s
        )
        disk = (
            self.disk_bytes / self.disk.bandwidth_bytes_per_s
            + self.disk_ios * self.disk.seek_s
        )
        return cpu + net + disk

    def detail(self) -> Dict[str, float]:
        return {
            "parallel_cpu_s": self.parallel_cpu_s,
            "serial_cpu_s": self.serial_cpu_s,
            "network_bytes": self.network_bytes,
            "disk_bytes": self.disk_bytes,
            "peak_memory_bytes": self._peak_memory,
        }
