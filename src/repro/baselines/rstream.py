"""An RStream-style single-machine out-of-core engine.

RStream [32] expresses mining as *relational joins* over edge tables
streamed from disk (its GRAS model).  This module implements triangle
counting that way, genuinely out of core: the (directed, upward) edge
table is written to a real temporary file, then joined against itself in
streaming passes with a bounded in-memory partition of the adjacency
index.  Every byte that crosses the file boundary is charged to the disk
model — the IO-bound behaviour the paper measures (53 s / 283 s /
3,713 s on Youtube/Skitter/Orkut vs. G-thinker's 4 / 30 / 210 s).

The paper notes RStream's clique code "does not output correct results";
we therefore only implement TC (the comparison the paper quantifies) and
expose :func:`rstream_disk_demand` so the harness can report the
"used up all our disk space" failure mode for the big graphs.
"""

from __future__ import annotations

import os
import struct
import tempfile
import time
from typing import Dict, Optional, Tuple

from ..graph import kernels
from ..graph.graph import Graph
from .base import BaselineResult, CostModel

__all__ = ["rstream_triangle_count", "rstream_disk_demand"]

_EDGE_STRUCT = struct.Struct("<qq")


def _write_edge_table(graph: Graph, path: str) -> int:
    """Stream the upward edge table ``(u, v), u < v`` to disk; returns bytes."""
    written = 0
    with open(path, "wb") as f:
        for u, v in graph.edges():
            f.write(_EDGE_STRUCT.pack(u, v))
            written += _EDGE_STRUCT.size
    return written


def rstream_disk_demand(graph: Graph, passes: int = 3) -> int:
    """Bytes of scratch space the streaming join needs (shuffle tables).

    RStream materializes intermediate join tables; for TC that is the
    wedge table, whose size is sum-of-degree-squared-ish.  The harness
    compares this against a disk budget to reproduce the paper's
    "RStream used up all our disk space" outcome on BTC/Friendster.
    """
    wedges = sum(
        len(graph.neighbors_gt(v)) * len(graph.neighbors(v)) for v in graph.vertices()
    )
    return passes * 16 * wedges


def rstream_triangle_count(
    graph: Graph,
    partitions: int = 8,
    disk_budget_bytes: Optional[int] = None,
    **cost_kwargs,
) -> BaselineResult:
    """Out-of-core TC via a streaming self-join of the edge table.

    The adjacency index is built one *partition* at a time (bounded
    memory); each partition triggers a full scan of the on-disk edge
    table — ``partitions`` passes in total, the access pattern that makes
    out-of-core engines IO-bound.
    """
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    cost = CostModel(machines=1, threads=1, **cost_kwargs)
    if disk_budget_bytes is not None:
        demand = rstream_disk_demand(graph)
        if demand > disk_budget_bytes:
            return BaselineResult(
                system="rstream",
                app="tc",
                failed="used up all disk space",
                detail={"disk_demand_bytes": float(demand)},
            )
    gt = {v: graph.neighbors_gt_array(v) for v in graph.vertices()}
    fd, path = tempfile.mkstemp(prefix="rstream-edges-", suffix=".tbl")
    os.close(fd)
    try:
        table_bytes = _write_edge_table(graph, path)
        cost.charge_disk(table_bytes, ios=1)
        total = 0
        peak_partition_bytes = 0
        for p in range(partitions):
            # Build the in-memory adjacency index for this partition.
            index = {v: adj for v, adj in gt.items() if v % partitions == p}
            peak_partition_bytes = max(
                peak_partition_bytes, sum(16 + 8 * len(a) for a in index.values())
            )
            t0 = time.perf_counter()
            scanned = 0
            with open(path, "rb") as f:
                while True:
                    chunk = f.read(_EDGE_STRUCT.size * 4096)
                    if not chunk:
                        break
                    scanned += len(chunk)
                    for off in range(0, len(chunk), _EDGE_STRUCT.size):
                        u, v = _EDGE_STRUCT.unpack_from(chunk, off)
                        # join: wedge (u -> v) closed by Γ_>(v) ∩ Γ_>(u),
                        # counted when v's index partition is resident.
                        row = index.get(v)
                        if row is not None and row.size:
                            total += kernels.intersect_count(gt[u], row)
            cost.charge_parallel_cpu(time.perf_counter() - t0)
            cost.charge_disk(scanned, ios=1)
        cost.observe_memory(peak_partition_bytes + (8 << 20))
    finally:
        os.unlink(path)
    return BaselineResult(
        system="rstream",
        app="tc",
        answer=total,
        virtual_time_s=cost.total_time_s(),
        peak_memory_bytes=cost.peak_memory_bytes,
        detail=cost.detail(),
    )
