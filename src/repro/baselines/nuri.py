"""A Nuri-style single-threaded prioritized miner.

Nuri [13] finds the most relevant subgraphs by *best-first* expansion:
a priority queue of partial subgraphs ordered by an optimistic score,
expanded one at a time by a single thread.  Two consequences the paper
points at, both reproduced:

* best-first order keeps an enormous frontier of buffered partial
  subgraphs alive (depth-first would keep only one path), so the pool
  overflows memory and pages to disk — charged to the disk model;
* one thread means no parallelism at all: "Nuri is implemented as a
  single-threaded Java program while G-thinker can use all CPU cores".

We instantiate it for maximum-clique search (the paper's comparison
point: Nuri takes >1000 s on Youtube's maximum clique vs. 9.4 s for
8-thread single-machine G-thinker).
"""

from __future__ import annotations

import heapq
import time
from typing import List, Optional, Set, Tuple

from ..graph.graph import Graph
from .base import BaselineResult, CostModel

__all__ = ["nuri_max_clique"]

#: Modeled bytes per buffered search state.
_STATE_BYTES = 96


def nuri_max_clique(
    graph: Graph,
    memory_pool_states: int = 100_000,
    max_states: int = 20_000_000,
    state_overhead_s: float = 50e-6,
    **cost_kwargs,
) -> BaselineResult:
    """Best-first maximum-clique search, single-threaded.

    States are ``(S, candidates)`` scored by the optimistic bound
    ``|S| + |candidates|``; the largest-bound state expands first.
    States beyond ``memory_pool_states`` are modeled as spilled to disk
    (round-trip IO charged).  ``max_states`` is a simulation safety cap.

    ``state_overhead_s`` charges Nuri's per-state *framework* cost: the
    real system materializes a generic subgraph object, scores it with
    its relevance function and round-trips it through the buffered pool
    for every expansion, which is what makes it orders of magnitude
    slower than a dedicated solver (paper: >1000 s on Youtube's maximum
    clique).  Our raw Python loop would otherwise under-represent it.
    """
    cost = CostModel(machines=1, threads=1, **cost_kwargs)
    gt = {v: graph.neighbors_gt(v) for v in graph.vertices()}
    adj = {v: set(graph.neighbors(v)) for v in graph.vertices()}

    heap: List[Tuple[int, int, Tuple[int, ...], Tuple[int, ...]]] = []
    seq = 0
    t0 = time.perf_counter()
    for v in graph.sorted_vertices():
        cands = gt[v]
        heapq.heappush(heap, (-(1 + len(cands)), seq, (v,), cands))
        seq += 1
    best: Tuple[int, ...] = ()
    expanded = 0
    peak_states = len(heap)
    spilled_states = 0
    while heap:
        neg_bound, _s, clique, cands = heapq.heappop(heap)
        if -neg_bound <= len(best):
            # Best-first: the top bound can't beat the incumbent,
            # so nothing else can either.
            break
        for i, u in enumerate(cands):
            nxt = tuple(w for w in cands[i + 1:] if w in adj[u])
            new_clique = clique + (u,)
            if len(new_clique) > len(best):
                best = new_clique
            bound = len(new_clique) + len(nxt)
            if nxt and bound > len(best):
                heapq.heappush(heap, (-bound, seq, new_clique, nxt))
                seq += 1
        expanded += 1
        if len(heap) > peak_states:
            peak_states = len(heap)
        if len(heap) > memory_pool_states:
            # The overflow portion lives on disk; every expansion cycle
            # pages one batch out and back.
            spilled_states += len(heap) - memory_pool_states
        if expanded > max_states:
            cost.charge_parallel_cpu(time.perf_counter() - t0)
            return BaselineResult(
                system="nuri",
                app="mcf",
                failed=f"exceeded {max_states} state expansions",
                virtual_time_s=cost.total_time_s(),
                peak_memory_bytes=_STATE_BYTES * peak_states,
                detail=cost.detail(),
            )
    cost.charge_serial_cpu(time.perf_counter() - t0)
    cost.charge_serial_cpu(state_overhead_s * (expanded + seq))
    cost.charge_disk(2 * _STATE_BYTES * spilled_states, ios=max(1, spilled_states // 4096))
    in_memory = min(peak_states, memory_pool_states)
    cost.observe_memory(
        graph.memory_estimate_bytes() + _STATE_BYTES * in_memory + (8 << 20)
    )
    return BaselineResult(
        system="nuri",
        app="mcf",
        answer=best,
        virtual_time_s=cost.total_time_s(),
        peak_memory_bytes=cost.peak_memory_bytes,
        detail=cost.detail(),
    )
