"""An Arabesque-style filter-process engine.

Arabesque [29] explores embeddings level-synchronously: iteration ``i``
holds *every* subgraph embedding with ``i`` vertices that passed the
filter, extends each by one adjacent vertex, filters, and hands the
survivors to iteration ``i+1``.  Two properties drive the paper's
comparison and are reproduced here:

* **full materialization** — the complete embedding frontier of a level
  is in memory at once (we model the ODAG-compressed footprint with a
  small per-embedding constant, and still: the count grows with the
  level's combinatorics, which is what kills the big datasets);
* **level-synchronous shuffles** — embeddings are redistributed across
  machines between levels, charged to the network.

For clique workloads the canonicality rule (extend only with vertices
larger than the embedding's maximum, adjacent to all members) matches
Arabesque's canonical embedding check without per-embedding isomorphism
tests; the *cost* of its actual isomorphism checking is represented by
the measured per-embedding extension work.
"""

from __future__ import annotations

import time
from typing import List, Optional, Set, Tuple

from ..graph.graph import Graph
from .base import BaselineResult, CostModel

__all__ = ["arabesque_clique_levels", "arabesque_triangle_count", "arabesque_max_clique"]

#: Modeled bytes per materialized embedding (ODAG-compressed).
_EMBEDDING_BYTES = 24


def arabesque_clique_levels(
    graph: Graph,
    cost: CostModel,
    max_level: Optional[int] = None,
    embedding_cap: Optional[int] = None,
):
    """Yield per-level clique-embedding frontiers until exhaustion.

    Raises ``MemoryError`` inside the driver functions when the modeled
    footprint exceeds the budget (converted to a failed result), or
    stops early at ``embedding_cap`` as a hard simulation safety net.
    """
    graph_bytes = graph.memory_estimate_bytes()
    level = [(v,) for v in graph.sorted_vertices()]
    size = 1
    produced = 0
    while level:
        # Every machine holds the whole graph (Arabesque's design) plus
        # its share of the embedding frontier.
        per_machine = graph_bytes + _EMBEDDING_BYTES * len(level) / cost.machines
        cost.observe_memory(per_machine)
        yield size, level
        if cost.memory_exceeded():
            return
        if max_level is not None and size >= max_level:
            return
        t0 = time.perf_counter()
        nxt: List[Tuple[int, ...]] = []
        for emb in level:
            last = emb[-1]
            # candidates: larger-id common neighbors (canonical growth)
            cands = None
            for u in emb:
                nbrs = set(w for w in graph.neighbors(u) if w > last)
                cands = nbrs if cands is None else (cands & nbrs)
                if not cands:
                    break
            if cands:
                for w in sorted(cands):
                    nxt.append(emb + (w,))
            if embedding_cap is not None and produced + len(nxt) > embedding_cap:
                cost.charge_parallel_cpu(time.perf_counter() - t0)
                raise OverflowError(
                    f"embedding count exceeded cap {embedding_cap}"
                )
        cost.charge_parallel_cpu(time.perf_counter() - t0)
        produced += len(nxt)
        # Level-synchronous shuffle of the new frontier across machines.
        if cost.machines > 1:
            cost.charge_network(_EMBEDDING_BYTES * len(nxt), rounds=1)
        level = nxt
        size += 1


def _run(graph: Graph, app: str, machines: int, threads: int, cost_kwargs,
         max_level: Optional[int], embedding_cap: Optional[int]):
    cost = CostModel(machines=machines, threads=threads, **cost_kwargs)
    counts = {}
    largest: Tuple[int, ...] = ()
    failed = None
    try:
        for size, frontier in arabesque_clique_levels(
            graph, cost, max_level=max_level, embedding_cap=embedding_cap
        ):
            counts[size] = len(frontier)
            if frontier and size > len(largest):
                largest = frontier[0]
        if cost.memory_exceeded():
            failed = "out of memory"
    except OverflowError:
        # The materialized-embedding count left any plausible memory
        # budget behind; report it the way the paper's runs ended.
        failed = "out of memory"
    return cost, counts, largest, failed


def arabesque_triangle_count(
    graph: Graph, machines: int = 1, threads: int = 1,
    embedding_cap: Optional[int] = None, **cost_kwargs
) -> BaselineResult:
    """TC by materializing all 3-cliques at level 3 (the filter-process way)."""
    cost, counts, _largest, failed = _run(
        graph, "tc", machines, threads, cost_kwargs, max_level=3, embedding_cap=embedding_cap
    )
    return BaselineResult(
        system="arabesque",
        app="tc",
        answer=None if failed else counts.get(3, 0),
        virtual_time_s=cost.total_time_s(),
        peak_memory_bytes=cost.peak_memory_bytes,
        failed=failed,
        detail=cost.detail(),
    )


def arabesque_max_clique(
    graph: Graph, machines: int = 1, threads: int = 1,
    embedding_cap: Optional[int] = None, **cost_kwargs
) -> BaselineResult:
    """MCF by growing clique embeddings level by level until none extend.

    This materializes *every* clique of *every* size — the set-enumeration
    tree's full node set, as the paper puts it — so memory grows with the
    clique count, not the answer size.
    """
    cost, counts, largest, failed = _run(
        graph, "mcf", machines, threads, cost_kwargs, max_level=None, embedding_cap=embedding_cap
    )
    return BaselineResult(
        system="arabesque",
        app="mcf",
        answer=None if failed else largest,
        virtual_time_s=cost.total_time_s(),
        peak_memory_bytes=cost.peak_memory_bytes,
        failed=failed,
        detail=cost.detail(),
    )
