"""Table I: the feature comparison of subgraph-centric systems.

The paper's Table I scores each system against the seven desirabilities
of §III.  This module encodes that matrix programmatically so the
Table I bench regenerates it, and so tests can assert that *this
codebase's* G-thinker actually exhibits each claimed property (the
integration suite maps every row to an executable check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["DESIRABILITIES", "FEATURE_MATRIX", "feature_rows"]

#: The seven desirabilities of §III, abbreviated.
DESIRABILITIES: Tuple[Tuple[str, str], ...] = (
    ("D1", "bounded memory: only a pool of tasks in memory at a time"),
    ("D2", "batched, sequential disk IO for spilled tasks; spills prioritized on refill"),
    ("D3", "threads share requested vertices via a concurrent cache"),
    ("D4", "tasks are independent and never block each other"),
    ("D5", "vertex requests/responses batched for network throughput"),
    ("D6", "big tasks divisible; work stealing across machines"),
    ("D7", "CPU-bound execution (IO hidden under computation)"),
)

#: True = the system provides the desirability (paper Table I).
FEATURE_MATRIX: Dict[str, Dict[str, bool]] = {
    "gthinker": {"D1": True, "D2": True, "D3": True, "D4": True, "D5": True, "D6": True, "D7": True},
    "nscale": {"D1": False, "D2": True, "D3": False, "D4": True, "D5": False, "D6": False, "D7": False},
    "arabesque": {"D1": False, "D2": False, "D3": False, "D4": True, "D5": True, "D6": False, "D7": False},
    "gminer": {"D1": True, "D2": False, "D3": True, "D4": True, "D5": True, "D6": False, "D7": False},
    "rstream": {"D1": True, "D2": True, "D3": False, "D4": False, "D5": False, "D6": False, "D7": False},
    "nuri": {"D1": False, "D2": True, "D3": False, "D4": False, "D5": False, "D6": False, "D7": False},
}


def feature_rows() -> List[Tuple[str, List[str]]]:
    """Rows of (system, ['yes'/'no' per desirability]) for table printing."""
    out = []
    for system, feats in FEATURE_MATRIX.items():
        out.append((system, ["yes" if feats[d] else "no" for d, _ in DESIRABILITIES]))
    return out
