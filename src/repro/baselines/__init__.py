"""Reimplementations of the compared systems' execution models."""

from .base import BaselineResult, CostModel
from .vertexcentric import PregelEngine, giraph_max_clique, giraph_triangle_count
from .arabesque import (
    arabesque_clique_levels,
    arabesque_max_clique,
    arabesque_triangle_count,
)
from .gminer import (
    gminer_max_clique,
    gminer_subgraph_match,
    gminer_triangle_count,
    lsh_signature,
)
from .rstream import rstream_disk_demand, rstream_triangle_count
from .nscale import nscale_max_clique, nscale_triangle_count
from .nuri import nuri_max_clique
from .features import DESIRABILITIES, FEATURE_MATRIX, feature_rows

__all__ = [
    "BaselineResult",
    "CostModel",
    "PregelEngine",
    "giraph_max_clique",
    "giraph_triangle_count",
    "arabesque_clique_levels",
    "arabesque_max_clique",
    "arabesque_triangle_count",
    "gminer_max_clique",
    "gminer_subgraph_match",
    "gminer_triangle_count",
    "lsh_signature",
    "rstream_disk_demand",
    "rstream_triangle_count",
    "nscale_max_clique",
    "nscale_triangle_count",
    "nuri_max_clique",
    "DESIRABILITIES",
    "FEATURE_MATRIX",
    "feature_rows",
]
