"""A Pregel-style vertex-centric engine (the Giraph baseline).

The paper compares against Giraph on MCF and TC "to verify that the
vertex-centric model does not scale for subgraph mining".  This module
is a faithful miniature of that model: think-like-a-vertex programs run
in synchronized supersteps, communicate *only* by messages along edges,
and every superstep's messages are fully materialized at the receivers
before the next superstep starts.

That last property is the one the experiments expose: both vertex-centric
subgraph algorithms ship adjacency lists to neighbors, so message volume
is :math:`\\sum_v deg(v)^2` — quadratic in the skewed degrees — which is
simultaneously the network cost (IO-bound time) and the receiver-side
memory blowup (Table III's huge Giraph memory column).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..algorithms.cliques import max_clique
from ..graph import kernels
from ..graph.graph import Graph
from ..graph.partition import hash_partition
from .base import BaselineResult, CostModel

__all__ = ["PregelEngine", "giraph_triangle_count", "giraph_max_clique"]

_MSG_OVERHEAD_BYTES = 16


class PregelContext:
    """Passed to vertex programs each superstep."""

    def __init__(self, engine: "PregelEngine", superstep: int) -> None:
        self._engine = engine
        self.superstep = superstep

    def send(self, dst: int, payload: Any, size_bytes: int) -> None:
        self._engine._send(dst, payload, size_bytes)

    def aggregate(self, value: Any) -> None:
        self._engine._aggregate(value)

    @property
    def aggregated(self) -> Any:
        return self._engine._aggregated


class PregelEngine:
    """Superstep-synchronous message passing over hash-partitioned vertices."""

    def __init__(
        self,
        graph: Graph,
        cost: CostModel,
        combine: Optional[Callable[[Any, Any], Any]] = None,
    ) -> None:
        self.graph = graph
        self.cost = cost
        self._combine = combine
        self._aggregated: Any = None
        self._inbox: Dict[int, List[Any]] = {}
        self._outbox: Dict[int, List[Any]] = {}
        self._outbox_bytes = 0.0
        self._remote_bytes = 0.0
        self._current_vertex: Optional[int] = None
        self.supersteps_run = 0

    # -- program-facing ----------------------------------------------------

    def _send(self, dst: int, payload: Any, size_bytes: int) -> None:
        self._outbox.setdefault(dst, []).append(payload)
        total = size_bytes + _MSG_OVERHEAD_BYTES
        self._outbox_bytes += total
        src_m = hash_partition(self._current_vertex, self.cost.machines)
        dst_m = hash_partition(dst, self.cost.machines)
        if src_m != dst_m:
            self._remote_bytes += total

    def _aggregate(self, value: Any) -> None:
        if self._combine is None:
            raise RuntimeError("no combiner configured")
        self._aggregated = (
            value if self._aggregated is None else self._combine(self._aggregated, value)
        )

    # -- driver --------------------------------------------------------------

    def run(self, program, max_supersteps: int) -> Any:
        """``program(vertex_id, adj, messages, ctx)``; halts when no vertex
        sends a message (or after ``max_supersteps``)."""
        graph_bytes = self.graph.memory_estimate_bytes()
        for step in range(max_supersteps):
            ctx = PregelContext(self, step)
            self._outbox = {}
            self._outbox_bytes = 0.0
            self._remote_bytes = 0.0
            t0 = time.perf_counter()
            for v in self.graph.sorted_vertices():
                self._current_vertex = v
                program(v, self.graph.neighbors(v), self._inbox.get(v, ()), ctx)
            self.cost.charge_parallel_cpu(time.perf_counter() - t0)
            # Barrier: every superstep is one network round; messages
            # crossing machines pay bandwidth.
            self.cost.charge_network(self._remote_bytes, rounds=1)
            # Receiver-side materialization: the whole superstep's
            # message volume is resident at once, spread over machines.
            per_machine = (graph_bytes + self._outbox_bytes) / self.cost.machines
            self.cost.observe_memory(per_machine)
            self._inbox = self._outbox
            self.supersteps_run = step + 1
            if not self._inbox:
                break
        return self._aggregated


def giraph_triangle_count(
    graph: Graph, machines: int = 1, threads: int = 1, **cost_kwargs
) -> BaselineResult:
    """TC the vertex-centric way [5]: each vertex ships ``Γ_>(v)`` to every
    larger neighbor, which intersects it with its own ``Γ_>``."""
    cost = CostModel(machines=machines, threads=threads, **cost_kwargs)
    gt = {v: graph.neighbors_gt_array(v) for v in graph.vertices()}
    engine = PregelEngine(graph, cost, combine=lambda a, b: a + b)

    def program(v, adj, messages, ctx):
        if ctx.superstep == 0:
            mine = gt[v]
            if len(mine) >= 2:
                for u in mine.tolist():
                    ctx.send(u, mine, size_bytes=8 * len(mine))
        else:
            total = 0
            mine = gt[v]
            for payload in messages:
                total += kernels.intersect_count(mine, payload)
            if total:
                ctx.aggregate(total)

    answer = engine.run(program, max_supersteps=2)
    result = BaselineResult(
        system="giraph",
        app="tc",
        answer=answer or 0,
        virtual_time_s=cost.total_time_s(),
        peak_memory_bytes=cost.peak_memory_bytes,
        detail=cost.detail(),
    )
    if cost.memory_exceeded():
        result.failed = "out of memory"
        result.answer = None
    return result


def giraph_max_clique(
    graph: Graph, machines: int = 1, threads: int = 1, **cost_kwargs
) -> BaselineResult:
    """MCF the vertex-centric way [24]: each vertex assembles the subgraph
    induced by ``Γ_>(v)`` from neighbor messages, then mines it locally.

    The assembly superstep materializes every vertex's candidate
    subgraph simultaneously — the memory behaviour the paper's Table III
    shows for Giraph.
    """
    cost = CostModel(machines=machines, threads=threads, **cost_kwargs)
    gt = {v: graph.neighbors_gt(v) for v in graph.vertices()}
    best: List[Tuple[int, ...]] = [()]

    def combine(a, b):
        return a if len(a) >= len(b) else b

    engine = PregelEngine(graph, cost, combine=combine)

    def program(v, adj, messages, ctx):
        if ctx.superstep == 0:
            mine = gt[v]
            # Send my upward adjacency to every *smaller* neighbor, so
            # each vertex can induce the subgraph on its Γ_>.
            for u in adj:
                if u < v:
                    ctx.send(u, (v, mine), size_bytes=8 * (1 + len(mine)))
        else:
            cands = set(gt[v])
            if 1 + len(cands) <= len(best[0]):
                return
            sub = {}
            for (u, u_gt) in messages:
                if u in cands:
                    sub[u] = [w for w in u_gt if w in cands]
            # Symmetrize the upward rows for the serial miner.
            full = {u: set() for u in sub}
            for u, row in sub.items():
                for w in row:
                    if w in full:
                        full[u].add(w)
                        full[w].add(u)
            clique = max_clique(
                {u: tuple(sorted(r)) for u, r in full.items()},
                lower_bound=max(0, len(best[0]) - 1),
            )
            found = tuple(sorted({v} | set(clique)))
            if len(found) > len(best[0]):
                best[0] = found
                ctx.aggregate(found)

    answer = engine.run(program, max_supersteps=2)
    result = BaselineResult(
        system="giraph",
        app="mcf",
        answer=answer if answer else best[0],
        virtual_time_s=cost.total_time_s(),
        peak_memory_bytes=cost.peak_memory_bytes,
        detail=cost.detail(),
    )
    if cost.memory_exceeded():
        result.failed = "out of memory"
        result.answer = None
    return result
