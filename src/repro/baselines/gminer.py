"""A G-Miner-style engine: the paper's closest competitor, with the two
design decisions the paper blames reproduced faithfully.

G-Miner [6] adopted the task model of the old G-thinker prototype and
added multithreading, but:

* **All tasks are generated up front** into a *disk-resident priority
  queue* keyed by locality-sensitive hashing (LSH) over each task's
  requested vertex set ``P(t)``, to maximize cache reuse between nearby
  tasks.  Because tasks run in LSH order rather than generation order,
  a partially-computed task that must wait for data is *reinserted* into
  the disk queue — and reinsertion IO becomes the dominant cost on big
  graphs (paper §II).  We implement the queue with real pickling and
  modeled disk charges, reinsert once per pull round, and process tasks
  in signature order.
* **The shared RCV cache is one list under one lock**, so cache probes
  from all threads of a machine serialize; we charge that component as
  serial CPU (it does not shrink with more threads).
* **No task decomposition**: a dense hub's task is mined whole by one
  thread — the reason "G-Miner failed to finish any application on BTC
  within 24 hours".  The makespan is therefore lower-bounded by the
  single largest task, which we account explicitly.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.cliques import max_clique
from ..algorithms.matching import QueryGraph, match_subgraph
from ..graph import kernels
from ..graph.graph import Graph
from ..graph.partition import hash_partition
from .base import BaselineResult, CostModel

__all__ = [
    "gminer_triangle_count",
    "gminer_max_clique",
    "gminer_subgraph_match",
    "lsh_signature",
]

#: Modeled cost of one RCV-cache probe under the global lock (seconds).
_CACHE_PROBE_S = 0.15e-6
_TIME_BUDGET_S = 24 * 3600.0


def lsh_signature(pulled: Sequence[int], bands: int = 4) -> Tuple[int, ...]:
    """A min-hash-flavored signature of a task's requested vertex set.

    Tasks with overlapping pulls get nearby signatures, so sorting by
    signature clusters them — G-Miner's data-reuse ordering.  The hash
    is evaluated vectorized over the whole id array per band (uint64
    multiplies wrap mod 2^64, matching the python-int `& mask` version).
    """
    arr = kernels.as_ids_array(pulled)
    if arr.size == 0:
        return (0,) * bands
    unsigned = arr.astype(np.uint64)
    sig = []
    for b in range(bands):
        mult = np.uint64(
            (0x9E3779B97F4A7C15 + b * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        )
        sig.append(int(((unsigned * mult) >> np.uint64(40)).min()))
    return tuple(sig)


class _DiskQueue:
    """The disk-resident task priority queue (modeled IO, real ordering)."""

    def __init__(self, cost: CostModel) -> None:
        self.cost = cost
        self._items: List[Tuple[Tuple[int, ...], int, object]] = []
        self._seq = 0
        self.inserts = 0
        self.bytes_written = 0.0

    #: Inserts are buffered and flushed in groups (the real system uses
    #: a B-tree-ish on-disk structure); one seek per this many tasks.
    INSERTS_PER_SEEK = 64

    def insert(self, signature: Tuple[int, ...], task) -> None:
        payload_bytes = len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
        # Priority-queue maintenance on disk: write the task once, and
        # read it back when dequeued (charged at pop).
        ios = 1 if self.inserts % self.INSERTS_PER_SEEK == 0 else 0
        self.cost.charge_disk(payload_bytes, ios=ios)
        self.bytes_written += payload_bytes
        self._items.append((signature, self._seq, task))
        self._seq += 1
        self.inserts += 1

    def pop_all_in_order(self):
        self._items.sort()
        for _sig, _seq, task in self._items:
            yield task
        self._items = []


def _distribute(vertices, machines: int) -> Dict[int, List[int]]:
    per: Dict[int, List[int]] = {m: [] for m in range(machines)}
    for v in vertices:
        per[hash_partition(v, machines)].append(v)
    return per


def gminer_triangle_count(
    graph: Graph, machines: int = 1, threads: int = 1, **cost_kwargs
) -> BaselineResult:
    """TC on the G-Miner engine: one task per vertex, generated up front."""
    cost = CostModel(machines=machines, threads=threads, **cost_kwargs)
    gt = {v: graph.neighbors_gt_array(v) for v in graph.vertices()}
    total = 0
    longest_task_s = 0.0
    busiest_machine_s = 0.0
    per_machine = _distribute(graph.vertices(), machines)
    for m, vertices in per_machine.items():
        queue = _DiskQueue(cost)
        for v in vertices:
            mine = gt[v]
            if len(mine) >= 2:
                queue.insert(lsh_signature(mine), (v, mine))
        # Every task waits for its pulled vertices once => one reinsert
        # (write + later read of the partially-computed task).
        reinserted_bytes = 2 * queue.bytes_written
        cost.charge_disk(
            reinserted_bytes, ios=max(1, queue.inserts // _DiskQueue.INSERTS_PER_SEEK)
        )
        machine_s = 0.0
        for (v, mine) in queue.pop_all_in_order():
            t0 = time.perf_counter()
            count = 0
            for u in mine:
                count += kernels.intersect_count(mine, gt[int(u)])
                cost.charge_serial_cpu(_CACHE_PROBE_S)  # RCV-cache probe
            total += count
            dt = time.perf_counter() - t0
            cost.charge_parallel_cpu(dt)
            machine_s += dt
            longest_task_s = max(longest_task_s, dt)
        busiest_machine_s = max(busiest_machine_s, machine_s)
    # The makespan cannot beat the busiest machine's own task stream
    # spread over its threads (hash placement is not perfectly even).
    longest_task_s = max(longest_task_s, busiest_machine_s / threads)
    cost.observe_memory(graph.memory_estimate_bytes() / machines + (4 << 20))
    elapsed = max(cost.total_time_s(), longest_task_s * cost.machine.cpu_speed)
    failed = "exceeded 24 hr" if elapsed > _TIME_BUDGET_S else None
    return BaselineResult(
        system="gminer",
        app="tc",
        answer=None if failed else total,
        virtual_time_s=elapsed,
        peak_memory_bytes=cost.peak_memory_bytes,
        failed=failed,
        detail=cost.detail(),
    )


def gminer_max_clique(
    graph: Graph, machines: int = 1, threads: int = 1, **cost_kwargs
) -> BaselineResult:
    """MCF on the G-Miner engine.

    Each vertex's task mines the whole subgraph induced by ``Γ_>(v)`` —
    no decomposition — and the incumbent bound is shared only within a
    machine (G-Miner has no global aggregator), so pruning is weaker
    than G-thinker's.
    """
    cost = CostModel(machines=machines, threads=threads, **cost_kwargs)
    gt = {v: graph.neighbors_gt_array(v) for v in graph.vertices()}
    adj = {v: graph.neighbors(v) for v in graph.vertices()}
    best: Tuple[int, ...] = ()
    longest_task_s = 0.0
    per_machine = _distribute(graph.vertices(), machines)
    for m, vertices in per_machine.items():
        queue = _DiskQueue(cost)
        for v in vertices:
            if gt[v].size:
                queue.insert(lsh_signature(gt[v]), v)
        reinserted_bytes = 2 * queue.bytes_written
        cost.charge_disk(
            reinserted_bytes, ios=max(1, queue.inserts // _DiskQueue.INSERTS_PER_SEEK)
        )
        machine_best: Tuple[int, ...] = ()
        machine_s = 0.0
        for v in queue.pop_all_in_order():
            t0 = time.perf_counter()
            cands = set(gt[v].tolist())
            cost.charge_serial_cpu(_CACHE_PROBE_S * max(1, len(cands)))
            if 1 + len(cands) > len(machine_best):
                sub = {
                    u: tuple(w for w in adj[u] if w in cands)
                    for u in cands
                }
                clique = max_clique(sub, lower_bound=max(0, len(machine_best) - 1))
                found = tuple(sorted({v} | set(clique)))
                if len(found) > len(machine_best):
                    machine_best = found
            dt = time.perf_counter() - t0
            cost.charge_parallel_cpu(dt)
            machine_s += dt
            longest_task_s = max(longest_task_s, dt)
        if len(machine_best) > len(best):
            best = machine_best
        longest_task_s = max(longest_task_s, machine_s / threads)
    cost.observe_memory(graph.memory_estimate_bytes() / machines + (4 << 20))
    elapsed = max(cost.total_time_s(), longest_task_s * cost.machine.cpu_speed)
    failed = "exceeded 24 hr" if elapsed > _TIME_BUDGET_S else None
    return BaselineResult(
        system="gminer",
        app="mcf",
        answer=None if failed else best,
        virtual_time_s=elapsed,
        peak_memory_bytes=cost.peak_memory_bytes,
        failed=failed,
        detail=cost.detail(),
    )


def gminer_subgraph_match(
    graph: Graph,
    query: QueryGraph,
    machines: int = 1,
    threads: int = 1,
    **cost_kwargs,
) -> BaselineResult:
    """GM on the G-Miner engine: one anchored task per candidate vertex.

    Each task materializes its anchor's r-hop neighborhood; every hop is
    one more pull round, hence one more disk-queue reinsertion of the
    task (with its partially built subgraph serialized each time — the
    reinsertion blow-up the paper identifies as G-Miner's dominant cost).
    """
    from ..apps.match import query_radius

    cost = CostModel(machines=machines, threads=threads, **cost_kwargs)
    radius = query_radius(query)
    q0 = query.order[0]
    q0_label = query.labels[q0]
    total = 0
    longest_task_s = 0.0
    per_machine = _distribute(graph.vertices(), machines)
    for m, vertices in per_machine.items():
        queue = _DiskQueue(cost)
        anchors = [v for v in vertices if graph.label(v) == q0_label]
        for v in anchors:
            queue.insert(lsh_signature(graph.neighbors(v)), v)
        machine_s = 0.0
        for v in queue.pop_all_in_order():
            t0 = time.perf_counter()
            # Materialize the r-hop ego network hop by hop; each hop is
            # one wait -> one reinsertion of the (growing) task.
            ego = {v}
            frontier = [v]
            sub_bytes = 64
            for _hop in range(radius):
                nxt = []
                for u in frontier:
                    cost.charge_serial_cpu(_CACHE_PROBE_S)
                    for w in graph.neighbors(u):
                        if w not in ego:
                            ego.add(w)
                            nxt.append(w)
                            sub_bytes += 16 + 8 * len(graph.neighbors(w))
                frontier = nxt
                cost.charge_disk(sub_bytes, ios=1)  # reinsertion round-trip
                if not frontier:
                    break
            data = Graph(
                {u: [w for w in graph.neighbors(u) if w in ego] for u in ego},
                labels={u: graph.label(u) for u in ego if graph.label(u)},
            )
            total += sum(1 for _ in match_subgraph(data, query, anchor=(q0, v)))
            dt = time.perf_counter() - t0
            cost.charge_parallel_cpu(dt)
            machine_s += dt
            longest_task_s = max(longest_task_s, dt)
        longest_task_s = max(longest_task_s, machine_s / threads)
    cost.observe_memory(graph.memory_estimate_bytes() / machines + (4 << 20))
    elapsed = max(cost.total_time_s(), longest_task_s * cost.machine.cpu_speed)
    failed = "exceeded 24 hr" if elapsed > _TIME_BUDGET_S else None
    return BaselineResult(
        system="gminer",
        app="gm",
        answer=None if failed else total,
        virtual_time_s=elapsed,
        peak_memory_bytes=cost.peak_memory_bytes,
        failed=failed,
        detail=cost.detail(),
    )
