"""An NScale-style two-phase engine.

NScale [23] (closed-source; Table I row only) mines k-hop neighborhood
subgraphs in two strictly separated phases:

1. **materialize** — construct the subgraph around every vertex via k
   rounds of MapReduce-style BFS ("this design requires that all
   subgraphs be constructed before any of them can begin its mining");
2. **mine** — process the materialized subgraphs in parallel.

The phase barrier is the paper's critique: during phase 1 the CPUs do
IO-shaped shuffling while the mining cores idle, and the *slowest*
subgraph construction delays every mining task (the straggler problem).
We reproduce both: phase 1 is charged as shuffle IO plus linear CPU,
phase 2 as parallel mining, and they never overlap.
"""

from __future__ import annotations

import time
from typing import Dict, List, Set, Tuple

from ..algorithms.cliques import max_clique
from ..graph import kernels
from ..graph.graph import Graph
from .base import BaselineResult, CostModel

__all__ = ["nscale_triangle_count", "nscale_max_clique"]

_ROW_BYTES = 16  # shuffle record overhead per adjacency row


def _materialize_egos(
    graph: Graph, cost: CostModel, hops: int, upward_only: bool,
    phase_seconds: Dict[str, float] = None,
) -> Dict[int, Dict[int, Tuple[int, ...]]]:
    """Phase 1: build every vertex's ``hops``-hop subgraph via BFS rounds.

    Every round re-shuffles each frontier row to the subgraph owners —
    the k rounds of MapReduce the paper describes — so the same
    adjacency row crosses the network once per subgraph that wants it.
    """
    t0 = time.perf_counter()
    shuffle_bytes = 0.0
    egos: Dict[int, Set[int]] = {}
    for v in graph.vertices():
        seed = graph.neighbors_gt(v) if upward_only else graph.neighbors(v)
        egos[v] = {v, *seed}
        shuffle_bytes += _ROW_BYTES + 8 * len(seed)
    for _round in range(1, hops):
        for v, members in egos.items():
            frontier = [u for u in list(members) if u != v]
            for u in frontier:
                row = graph.neighbors_gt(u) if upward_only else graph.neighbors(u)
                before = len(members)
                members.update(row)
                shuffle_bytes += _ROW_BYTES + 8 * (len(members) - before)
    materialized = {
        v: {
            u: tuple(w for w in (
                graph.neighbors_gt(u) if upward_only else graph.neighbors(u)
            ) if w in members)
            for u in members
        }
        for v, members in egos.items()
    }
    elapsed = time.perf_counter() - t0
    cost.charge_parallel_cpu(elapsed)
    cost.charge_network(shuffle_bytes, rounds=hops)
    if phase_seconds is not None:
        phase_seconds["materialize_cpu_s"] = elapsed
        phase_seconds["materialize_net_bytes"] = shuffle_bytes
    # The whole materialized set exists before mining starts.
    total_bytes = sum(
        _ROW_BYTES + 8 * sum(len(r) for r in sub.values())
        for sub in materialized.values()
    )
    cost.observe_memory(total_bytes / cost.machines)
    return materialized


def nscale_triangle_count(
    graph: Graph, machines: int = 1, threads: int = 1, **cost_kwargs
) -> BaselineResult:
    """TC on the NScale model: materialize 1-hop Γ_> subgraphs, then count."""
    cost = CostModel(machines=machines, threads=threads, **cost_kwargs)
    phases: Dict[str, float] = {}
    subs = _materialize_egos(graph, cost, hops=1, upward_only=True,
                             phase_seconds=phases)
    failed = "out of memory" if cost.memory_exceeded() else None
    total = 0
    if not failed:
        t0 = time.perf_counter()
        for v, sub in subs.items():
            gt_v = graph.neighbors_gt_array(v)
            for u in gt_v:
                total += kernels.intersect_count(gt_v, sub.get(int(u), ()))
        phases["mine_cpu_s"] = time.perf_counter() - t0
        cost.charge_parallel_cpu(phases["mine_cpu_s"])
    detail = cost.detail()
    detail.update(phases)
    return BaselineResult(
        system="nscale",
        app="tc",
        answer=None if failed else total,
        virtual_time_s=cost.total_time_s(),
        peak_memory_bytes=cost.peak_memory_bytes,
        failed=failed,
        detail=detail,
    )


def nscale_max_clique(
    graph: Graph, machines: int = 1, threads: int = 1, **cost_kwargs
) -> BaselineResult:
    """MCF on the NScale model: all Γ_> subgraphs first, then mine each.

    No shared incumbent bound exists across the phase barrier (pruning
    cannot start until materialization finished everywhere), which is
    part of why the two-phase model wastes work.
    """
    cost = CostModel(machines=machines, threads=threads, **cost_kwargs)
    phases: Dict[str, float] = {}
    subs = _materialize_egos(graph, cost, hops=1, upward_only=True,
                             phase_seconds=phases)
    failed = "out of memory" if cost.memory_exceeded() else None
    best: Tuple[int, ...] = ()
    if not failed:
        t0 = time.perf_counter()
        for v, sub in subs.items():
            cands = set(sub) - {v}
            if 1 + len(cands) <= len(best):
                continue
            undirected: Dict[int, Set[int]] = {u: set() for u in cands}
            for u in cands:
                for w in sub.get(u, ()):
                    if w in undirected:
                        undirected[u].add(w)
                        undirected[w].add(u)
            clique = max_clique(
                {u: tuple(sorted(r)) for u, r in undirected.items()},
                lower_bound=max(0, len(best) - 1),
            )
            found = tuple(sorted({v} | set(clique)))
            if len(found) > len(best):
                best = found
        phases["mine_cpu_s"] = time.perf_counter() - t0
        cost.charge_parallel_cpu(phases["mine_cpu_s"])
    detail = cost.detail()
    detail.update(phases)
    return BaselineResult(
        system="nscale",
        app="mcf",
        answer=None if failed else best,
        virtual_time_s=cost.total_time_s(),
        peak_memory_bytes=cost.peak_memory_bytes,
        failed=failed,
        detail=detail,
    )
