"""The resident graph service: load once, serve many tenants.

A :class:`GraphService` keeps one graph resident for its whole life and
runs submitted jobs against it through a multi-tenant admission
scheduler (bounded queue, per-job worker quotas, stride-scheduled
weighted fairness) with a ``(graph_digest, app, params)`` result cache.
:class:`ServiceClient` talks to it over a localhost socket with the
``net/`` control-plane framing; its :class:`RemoteJobHandle` implements
the same protocol as :class:`repro.core.session.LocalJobHandle`.

CLI front ends: ``repro serve``, ``repro submit``, ``repro jobs``.
"""

from .cache import ResultCache
from .client import RemoteJobHandle, ServiceClient
from .jobs import (
    JobSpec,
    available_apps,
    build_app_factory,
    cache_key,
    canonical_params,
    register_service_app,
)
from .server import GraphService

__all__ = [
    "GraphService",
    "JobSpec",
    "RemoteJobHandle",
    "ResultCache",
    "ServiceClient",
    "available_apps",
    "build_app_factory",
    "cache_key",
    "canonical_params",
    "register_service_app",
]
