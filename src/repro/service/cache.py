"""The service result cache: in-memory LRU over an optional disk store.

:class:`ResultCache` memoizes finished :class:`~repro.core.job.JobResult`
objects under the :func:`~repro.service.jobs.cache_key` identity
``(graph_digest, app, canonical params)``.  Two layers:

* a capacity-bounded **memory LRU** — the hot path, same semantics the
  service's original ``OrderedDict`` cache had;
* an optional **disk store** (``cache_dir``) — one pickle file per key,
  written atomically (tmp + ``os.replace``), so a *restarted* service
  answers warm repeats with zero mining rounds.  Files are validated on
  read: a payload whose recorded graph digest (or key) disagrees with
  the running service — a different graph re-using an old cache dir, a
  truncated write, a corrupt pickle — is deleted and treated as a miss,
  never served.

Disk entries survive memory eviction (the LRU bounds RAM, not the
store) and disk I/O failures are non-fatal: a read error is a miss, a
write error keeps the memory entry and moves on.  ``capacity == 0``
disables the cache entirely, disk included — the contract
``result_cache_size=0`` has always had.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Optional

__all__ = ["ResultCache"]

#: Bump when the on-disk payload layout changes; mismatched files are
#: discarded as stale rather than mis-read.
_DISK_FORMAT = 1


class ResultCache:
    """LRU result cache with an optional persistent pickle-per-key store.

    Not thread-safe by itself; the service calls it under its scheduler
    lock.
    """

    def __init__(self, capacity: int, digest: str,
                 cache_dir: Optional[str] = None) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self.digest = digest
        self._mem: "OrderedDict[str, Any]" = OrderedDict()
        self._dir: Optional[Path] = None
        if cache_dir is not None and capacity > 0:
            self._dir = Path(cache_dir)
            self._dir.mkdir(parents=True, exist_ok=True)

    # -- the service-facing surface ------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The cached result for ``key``, or None.

        Memory first; on a miss, the disk store (when configured) is
        consulted and a valid file promotes its result into the LRU.
        """
        if self.capacity == 0:
            return None
        hit = self._mem.get(key)
        if hit is not None:
            self._mem.move_to_end(key)
            return hit
        result = self._disk_get(key)
        if result is not None:
            self._insert_mem(key, result)
        return result

    def put(self, key: str, result: Any) -> None:
        if self.capacity == 0:
            return
        self._insert_mem(key, result)
        self._disk_put(key, result)

    def __len__(self) -> int:
        """Memory-resident entries (the LRU occupancy)."""
        return len(self._mem)

    def disk_entries(self) -> int:
        """Entries in the persistent store (0 when persistence is off)."""
        if self._dir is None:
            return 0
        try:
            return sum(1 for _ in self._dir.glob("*.pkl"))
        except OSError:
            return 0

    # -- memory layer --------------------------------------------------

    def _insert_mem(self, key: str, result: Any) -> None:
        self._mem[key] = result
        self._mem.move_to_end(key)
        while len(self._mem) > self.capacity:
            self._mem.popitem(last=False)

    # -- disk layer ----------------------------------------------------

    def _path(self, key: str) -> Path:
        # Keys are sha256 hex digests — already safe path components.
        return self._dir / f"{key}.pkl"

    def _disk_get(self, key: str) -> Optional[Any]:
        if self._dir is None:
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                payload = pickle.load(f)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated/corrupt file: never serve it, never trip on it.
            self._discard(path)
            return None
        if (not isinstance(payload, dict)
                or payload.get("format") != _DISK_FORMAT
                or payload.get("digest") != self.digest
                or payload.get("key") != key):
            # Digest validation: a cache dir re-used for a different
            # graph must miss (and self-clean), not serve stale answers.
            self._discard(path)
            return None
        return payload.get("result")

    def _disk_put(self, key: str, result: Any) -> None:
        if self._dir is None:
            return
        payload = {
            "format": _DISK_FORMAT,
            "digest": self.digest,
            "key": key,
            "result": result,
        }
        try:
            fd, tmp = tempfile.mkstemp(dir=str(self._dir), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
                # Atomic publish: a reader sees the old file or the new
                # one, never a half-written pickle.
                os.replace(tmp, self._path(key))
            except BaseException:
                self._discard(Path(tmp))
                raise
        except Exception:
            pass  # persistence is best-effort; the memory entry stands

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
