"""The service client: Session-shaped access to a served resident graph.

:class:`ServiceClient` speaks the :class:`~repro.net.tcp.ControlChannel`
request/reply protocol to a :class:`~repro.service.server.GraphService`.
Its :meth:`~ServiceClient.submit` returns a :class:`RemoteJobHandle`
implementing the same :class:`~repro.core.session.JobHandle` protocol as
the in-process :class:`~repro.core.session.LocalJobHandle` — code
written against a handle does not care whether the graph lives in its
own process or behind a socket.

Server-side errors come back as ``("error", {"kind", "message"})``
frames and are re-raised here as the matching exception types
(:class:`JobRejectedError`, :class:`JobCancelledError`,
:class:`TimeoutError`, :class:`ServiceError`), so remote admission
behaves exactly like local admission to calling code.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.config import parse_host_port
from ..core.errors import JobCancelledError, JobRejectedError, ServiceError
from ..core.session import JOB_CANCELLED, JOB_FAILED, TERMINAL_STATES, JobHandle
from ..net.tcp import ChannelClosed, ControlChannel, connect_with_retry

__all__ = ["RemoteJobHandle", "ServiceClient"]

#: How server error kinds map back onto client-side exception types.
#: Unlisted kinds (including ``internal``, the server's "a handler bug
#: cost this one request, the connection survived" reply) fall back to
#: plain :class:`ServiceError`.
_ERROR_KINDS = {
    "rejected": JobRejectedError,
    "cancelled": JobCancelledError,
    "timeout": TimeoutError,
}


class RemoteJobHandle(JobHandle):
    """Handle to a job running on a served resident graph.

    Same protocol as :class:`~repro.core.session.LocalJobHandle`:
    ``status() / done() / result(timeout=) / cancel()``.  ``result``
    blocks *server-side* (one request, one reply), so polling loops are
    unnecessary; on timeout the job keeps running and ``result`` can be
    called again.
    """

    def __init__(self, client: "ServiceClient", record: Dict[str, Any]) -> None:
        self._client = client
        self._record = record
        self.job_id = record["job_id"]

    @property
    def record(self) -> Dict[str, Any]:
        """The latest job record seen from the server (no extra RPC)."""
        return dict(self._record)

    def _refresh(self) -> Dict[str, Any]:
        self._record = self._client.status(self.job_id)
        return self._record

    def status(self) -> str:
        if self._record["status"] in TERMINAL_STATES:
            return self._record["status"]
        return self._refresh()["status"]

    def done(self) -> bool:
        return self.status() in TERMINAL_STATES

    def result(self, timeout: Optional[float] = None):
        if self._record["status"] == JOB_CANCELLED:
            raise JobCancelledError(f"job {self.job_id} was cancelled")
        record, result = self._client.result(self.job_id, timeout=timeout)
        self._record = record
        return result

    def cancel(self) -> bool:
        """Ask the server to cancel this job.

        True means the cancel was *accepted*: a queued job is already
        ``cancelled`` in the returned record; a running one aborts at
        its next sync boundary and settles asynchronously.  False means
        the job already finished, or it is running on a runtime that
        declines mid-run cancellation (``cluster``).
        """
        cancelled, record = self._client.cancel(self.job_id)
        self._record = record
        return cancelled


class ServiceClient:
    """One connection to a :class:`~repro.service.server.GraphService`.

    Thread-safe: a lock serializes request/reply pairs, so one client
    may be shared by concurrent submitter threads (each ``result`` call
    holds the connection while it blocks — use one client per thread
    when jobs are long and overlap matters).

    Usable as a context manager::

        with ServiceClient("127.0.0.1:7777") as client:
            handle = client.submit("tc")
            print(handle.result().aggregate)
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        connect_timeout_s: float = 10.0,
        request_timeout_s: float = 300.0,
    ) -> None:
        if isinstance(address, str):
            address = parse_host_port(address)
        self.address = address
        self._request_timeout_s = request_timeout_s
        sock = connect_with_retry(
            address[0], address[1], connect_timeout_s, what="job service"
        )
        self._chan = ControlChannel(sock)
        self._lock = threading.Lock()

    # -- plumbing -------------------------------------------------------

    def _request(self, op: str, payload: Dict[str, Any],
                 timeout: Optional[float] = None) -> Dict[str, Any]:
        """One request/reply round trip; server errors re-raise typed."""
        wait = self._request_timeout_s if timeout is None else timeout + 5.0
        with self._lock:
            try:
                self._chan.send_obj((op, payload))
                status, body = self._chan.recv_obj(timeout=wait)
            except ChannelClosed as exc:
                raise ServiceError(
                    f"job service at {self.address[0]}:{self.address[1]} "
                    f"closed the connection: {exc}"
                ) from exc
        if status == "ok":
            return body
        kind = body.get("kind", "error")
        message = body.get("message", repr(body))
        raise _ERROR_KINDS.get(kind, ServiceError)(message)

    def close(self) -> None:
        self._chan.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the protocol ---------------------------------------------------

    def server_info(self) -> Dict[str, Any]:
        """Graph digest, available apps, and the server's admission limits."""
        return self._request("hello", {})

    def submit(
        self,
        app: str,
        params: Optional[Dict[str, Any]] = None,
        tenant: str = "default",
        num_workers: Optional[int] = None,
    ) -> RemoteJobHandle:
        """Submit a named app; returns a :class:`RemoteJobHandle`.

        Raises :class:`JobRejectedError` when the app/params are invalid
        or the server's admission queue is full.  A result-cache hit
        returns an already-``done`` handle (``record["cached"]`` true).
        """
        body = self._request("submit", {
            "app": app,
            "params": dict(params or {}),
            "tenant": tenant,
            "num_workers": num_workers,
        })
        return RemoteJobHandle(self, body["record"])

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("status", {"job_id": job_id})["record"]

    def result(self, job_id: str,
               timeout: Optional[float] = None) -> Tuple[Dict[str, Any], Any]:
        """Block for a job's answer; returns ``(record, JobResult)``."""
        body = self._request(
            "result", {"job_id": job_id, "timeout": timeout}, timeout=timeout
        )
        record = body["record"]
        if record["status"] == JOB_FAILED:  # defensive; server raises first
            raise ServiceError(f"job {job_id} failed: {record['error']}")
        return record, body["result"]

    def cancel(self, job_id: str) -> Tuple[bool, Dict[str, Any]]:
        body = self._request("cancel", {"job_id": job_id})
        return body["cancelled"], body["record"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("jobs", {})["jobs"]

    def stats(self) -> Dict[str, Any]:
        return self._request("stats", {})["stats"]

    def shutdown(self) -> None:
        """Ask the server to stop serving (running jobs drain first)."""
        self._request("shutdown", {})
