"""Job specs, the named-app registry, and result-cache keys.

A job crosses the service wire as a :class:`JobSpec`: an *app name*
plus a flat ``params`` dict — never a pickled callable, so the server
alone decides what code runs (and a CLI submitter can spell any job).
The registry maps each name to a builder that validates the params and
returns the picklable factory ``run_job`` expects; the same builders
back ``repro submit``'s flags.

Cache identity: :func:`cache_key` canonicalizes ``(graph_digest, app,
params)`` — params are JSON-serialized with sorted keys and defaults
filled in, so ``{"gamma": 0.8}`` and ``{"gamma": 0.8, "min_size": 4}``
name the same computation and hit the same cache entry.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..algorithms.matching import QueryGraph
from ..apps import (
    BundledTriangleCountComper,
    MaxCliqueComper,
    MaximalCliqueComper,
    QuasiCliqueComper,
    SubgraphMatchComper,
    TriangleCountComper,
)
from ..core.errors import JobRejectedError

__all__ = [
    "JobSpec",
    "available_apps",
    "build_app_factory",
    "cache_key",
    "canonical_params",
    "register_service_app",
]


@dataclass(frozen=True)
class JobSpec:
    """One unit of admission: what to run, for whom, with which quota."""

    app: str
    params: Dict[str, Any] = field(default_factory=dict)
    tenant: str = "default"
    #: Requested worker quota; ``None`` takes the server's default.  The
    #: scheduler caps it at ``max_workers_per_job`` either way.
    num_workers: Optional[int] = None


def _reject(app: str, message: str) -> JobRejectedError:
    return JobRejectedError(f"app {app!r}: {message}")


def _take(app: str, params: Dict[str, Any], known: Dict[str, Any]) -> Dict[str, Any]:
    """Merge ``params`` over ``known`` defaults; unknown keys reject."""
    unknown = sorted(set(params) - set(known))
    if unknown:
        raise _reject(app, f"unknown parameter(s) {unknown}; "
                           f"accepted: {sorted(known)}")
    merged = dict(known)
    merged.update(params)
    return merged


def _build_tc(params: Dict[str, Any]):
    p = _take("tc", params, {"list_triangles": False, "bundle": 0})
    if p["bundle"]:
        return functools.partial(BundledTriangleCountComper,
                                 bundle_size=int(p["bundle"]))
    return functools.partial(TriangleCountComper,
                             list_triangles=bool(p["list_triangles"]))


def _build_mcf(params: Dict[str, Any]):
    _take("mcf", params, {})
    return MaxCliqueComper


def _build_cliques(params: Dict[str, Any]):
    p = _take("cliques", params, {"min_size": 3})
    return functools.partial(MaximalCliqueComper, min_size=int(p["min_size"]))


def _build_qc(params: Dict[str, Any]):
    p = _take("qc", params, {"gamma": 0.8, "min_size": 4})
    gamma = float(p["gamma"])
    if not 0.0 < gamma <= 1.0:
        raise _reject("qc", f"gamma must be in (0, 1], got {gamma}")
    return functools.partial(QuasiCliqueComper, gamma=gamma,
                             min_size=int(p["min_size"]))


def _build_gm(params: Dict[str, Any]):
    p = _take("gm", params, {"query_edges": None, "query_labels": None})
    edges = p["query_edges"]
    if not edges:
        raise _reject("gm", "query_edges is required, e.g. [[0,1],[1,2],[0,2]]")
    try:
        edge_list = [(int(u), int(v)) for u, v in edges]
    except (TypeError, ValueError):
        raise _reject("gm", f"query_edges must be [u,v] pairs, got {edges!r}") from None
    labels = None
    if p["query_labels"]:
        # JSON object keys arrive as strings; normalize to int vertex ids.
        labels = {int(k): int(v) for k, v in dict(p["query_labels"]).items()}
    query = QueryGraph(edge_list, labels=labels)
    return functools.partial(SubgraphMatchComper, query)


#: app name -> (builder, one-line description, param defaults).  Builders
#: validate the params dict and return a picklable zero-arg Comper
#: factory; the defaults are what :func:`canonical_params` fills in so
#: omitting a default and spelling it out name the same computation.
_APP_BUILDERS: Dict[
    str, Tuple[Callable[[Dict[str, Any]], Any], str, Dict[str, Any]]
] = {
    "tc": (_build_tc, "triangle counting (params: list_triangles, bundle)",
           {"list_triangles": False, "bundle": 0}),
    "mcf": (_build_mcf, "maximum clique finding", {}),
    "cliques": (_build_cliques, "maximal clique enumeration (params: min_size)",
                {"min_size": 3}),
    "qc": (_build_qc, "quasi-clique enumeration (params: gamma, min_size)",
           {"gamma": 0.8, "min_size": 4}),
    "gm": (_build_gm, "subgraph matching (params: query_edges, query_labels)",
           {"query_edges": None, "query_labels": None}),
}


def register_service_app(
    name: str,
    builder: Callable[[Dict[str, Any]], Any],
    description: str = "",
    defaults: Optional[Dict[str, Any]] = None,
    replace: bool = False,
) -> None:
    """Register a custom named app with the service registry.

    ``builder(params)`` must validate its params (raise
    :class:`~repro.core.errors.JobRejectedError` on bad input) and
    return a picklable zero-arg Comper factory.  ``defaults`` are the
    param values :func:`cache_key` fills in for omitted keys.  Mirrors
    :func:`repro.core.runtime.register_runtime`'s contract.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"app name must be a non-empty string, got {name!r}")
    if name in _APP_BUILDERS and not replace:
        raise ValueError(
            f"app {name!r} is already registered; pass replace=True to override"
        )
    _APP_BUILDERS[name] = (builder, description, dict(defaults or {}))


def available_apps() -> Dict[str, str]:
    """``{name: description}`` of every submittable app."""
    return {name: desc for name, (_b, desc, _d) in sorted(_APP_BUILDERS.items())}


def _entry(app: str):
    entry = _APP_BUILDERS.get(app)
    if entry is None:
        raise JobRejectedError(
            f"unknown app {app!r}; available: {sorted(_APP_BUILDERS)}"
        )
    return entry


def build_app_factory(app: str, params: Optional[Dict[str, Any]] = None):
    """Resolve a named app + params into a run_job factory.

    Raises :class:`~repro.core.errors.JobRejectedError` for unknown
    names or invalid params — admission errors, not crashes.
    """
    builder, _desc, _defaults = _entry(app)
    return builder(dict(params or {}))


def canonical_params(app: str, params: Optional[Dict[str, Any]] = None) -> str:
    """The params dict as canonical JSON (defaults filled, keys sorted).

    Validates via the app's builder first, so only well-formed specs get
    a canonical form; defaults are merged in so ``{"gamma": 0.8}`` and
    an explicit ``{"gamma": 0.8, "min_size": 4}`` canonicalize alike.
    """
    builder, _desc, defaults = _entry(app)
    builder(dict(params or {}))  # validate / reject early
    merged = dict(defaults)
    merged.update(params or {})
    return json.dumps(merged, sort_keys=True, default=str)


def cache_key(graph_digest: str, app: str,
              params: Optional[Dict[str, Any]] = None) -> str:
    """The result-cache key for ``(graph, app, params)``."""
    blob = f"{graph_digest}|{app}|{canonical_params(app, params)}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
