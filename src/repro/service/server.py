"""The resident-graph job server: multi-tenant admission over one graph.

One :class:`GraphService` owns one graph for its whole life.  The graph
is loaded (and its CSR flattened) exactly once; every admitted job runs
against it through a long-lived :class:`~repro.core.session.Session`,
so the per-job cost is mining, not setup — the NScale "resident
neighborhood service" economics applied to the G-thinker runtime stack.

Admission control (the HUGE lesson: throughput is a *scheduling*
property):

* **Bounded queue** — at most ``max_queue_depth`` jobs may wait;
  admission past that raises
  :class:`~repro.core.errors.JobRejectedError` so backpressure is
  explicit, never an unbounded memory balloon.
* **Worker quotas** — each job asks for ``num_workers`` and is capped
  at ``max_workers_per_job``; jobs start only while the sum of running
  quotas fits ``worker_budget``, so one greedy job cannot occupy the
  machine.
* **Weighted fairness** — queued tenants are drained by stride
  scheduling: each tenant holds a virtual *pass*, the lowest pass runs
  next, and dispatching advances the tenant's pass by
  ``quota / weight``.  A tenant that just went active starts at the
  current virtual time (never in the past), so a backlogged tenant
  cannot starve a light one and an idle tenant cannot hoard credit.
* **Result cache** — finished answers are memoized under
  ``(graph_digest, app, canonical params)`` by a
  :class:`~repro.service.cache.ResultCache`; a repeated submission
  completes at admission time with zero mining rounds.  With a
  ``cache_dir`` the cache persists across service restarts.
* **In-flight dedup** — a submission whose cache key matches a job
  that is already queued or running *attaches* to that execution
  instead of mining twice.  The scheduler's unit is therefore the
  :class:`_Execution` (one factory, one quota, one Session handle);
  each :class:`_JobRecord` is a per-tenant *subscriber* with its own
  id, status, and ``done_seq``.  Cancelling one subscriber never kills
  an execution that other live subscribers still want.
* **Cancellation** — a queued job cancels immediately; a *running*
  job is cancelled cooperatively through the runtime's
  :class:`~repro.core.runtime.AbortToken` (honored at sync-barrier /
  steal-sweep boundaries), releasing its worker quota within one
  scheduler pass.  Runtimes that decline running-job cancellation
  (``cluster``) simply return False for running jobs.

The wire is the ``net/`` control-plane plumbing: one
:class:`~repro.net.tcp.ControlChannel` (length-prefixed pickled frames,
the GTWIRE1 framing discipline) per client connection, one handler
thread per connection, request/reply tuples ``(op, payload)`` ->
``("ok"| "error", payload)``.  :class:`repro.service.client.ServiceClient`
is the matching caller.
"""

from __future__ import annotations

import functools
import itertools
import os
import selectors
import socket
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import GThinkerConfig, parse_host_port
from ..core.errors import (
    JobCancelledError,
    JobRejectedError,
    ServiceError,
    WireDecodeError,
)
from ..core.runtime import get_runtime
from ..core.session import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    Session,
)
from ..graph.digest import graph_digest
from ..net.tcp import ChannelClosed, ControlChannel, listen_socket
from .cache import ResultCache
from .jobs import JobSpec, available_apps, build_app_factory, cache_key

__all__ = ["GraphService"]

#: Ops a connection may invoke; anything else is a bad request.
_OPS = ("hello", "submit", "status", "result", "cancel", "jobs", "stats",
        "shutdown")

#: Record states with nothing left to settle.
_TERMINAL = (JOB_DONE, JOB_FAILED, JOB_CANCELLED)
#: Record states a cancel can still act on.
_LIVE = (JOB_QUEUED, JOB_RUNNING)


class _Execution:
    """One actual mining run: the unit the scheduler queues and funds.

    Holds the app factory, the worker quota it charges, and — once
    dispatched — the Session handle.  ``records`` is every subscriber
    (the original submission plus any deduplicated attachments); the
    execution is killed only when its *last* live subscriber cancels.
    """

    __slots__ = ("key", "factory", "quota", "tenant", "records", "handle",
                 "status", "abort_requested")

    def __init__(self, key: str, factory, quota: int, tenant: str,
                 record: "_JobRecord") -> None:
        self.key = key
        self.factory = factory
        self.quota = quota
        self.tenant = tenant
        self.records: List[_JobRecord] = [record]
        self.handle = None
        self.status = JOB_QUEUED
        self.abort_requested = False

    def live_records(self, but: "_JobRecord" = None) -> List["_JobRecord"]:
        return [r for r in self.records if r is not but and r.status in _LIVE]


class _JobRecord:
    """Server-side state of one submitted job (one execution subscriber)."""

    __slots__ = (
        "job_id", "spec", "quota", "key", "status", "cached", "deduped",
        "submitted_at", "started_at", "finished_at", "done_seq",
        "error", "result", "event", "execution",
    )

    def __init__(self, job_id: str, spec: JobSpec, quota: int,
                 key: str) -> None:
        self.job_id = job_id
        self.spec = spec
        self.quota = quota
        self.key = key
        self.status = JOB_QUEUED
        self.cached = False
        self.deduped = False
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.done_seq: Optional[int] = None
        self.error: Optional[str] = None
        self.result = None
        self.event = threading.Event()
        self.execution: Optional[_Execution] = None

    def to_wire(self) -> Dict[str, Any]:
        """The public, picklable view (no handles, no factories)."""
        return {
            "job_id": self.job_id,
            "app": self.spec.app,
            "params": dict(self.spec.params),
            "tenant": self.spec.tenant,
            "quota": self.quota,
            "status": self.status,
            "cached": self.cached,
            "deduped": self.deduped,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "done_seq": self.done_seq,
            "error": self.error,
            # Mining evidence for the cache-hit proof: a served-from-
            # cache job never touched a worker, so its round count is
            # identically zero; an executed job reports the engine's
            # task-iteration counter from its worker metrics.
            "mining_rounds": (
                0.0 if self.cached else
                (self.result.metrics.get("tasks:iterations", 0.0)
                 if self.result is not None else None)
            ),
        }


class GraphService:
    """A long-lived, multi-tenant job server over one resident graph.

    Parameters
    ----------
    graph:
        The resident :class:`~repro.graph.Graph` (or
        ``ShardedGraphStore``).  Loaded once; digested once for cache
        keys.
    config:
        Base :class:`GThinkerConfig` for executed jobs; each job's
        ``num_workers`` is overridden by its admitted quota.
    runtime:
        Runtime every job runs on (``serial`` / ``threaded`` /
        ``process`` / ``checked``).
    bind:
        ``"host:port"`` for the request listener (port 0 = ephemeral;
        read the bound port from :attr:`address`).
    worker_budget:
        Total worker quota that may run concurrently (default: CPU
        count, at least the per-job cap).
    max_workers_per_job:
        Per-job quota cap (default: the base config's ``num_workers``).
    max_queue_depth:
        Bounded admission queue; submissions past it are rejected with
        :class:`JobRejectedError`.
    tenant_weights:
        ``{tenant: weight}`` for the stride scheduler; unlisted tenants
        weigh ``1.0``.
    result_cache_size:
        LRU capacity of the ``(graph, app, params)`` result cache.
        0 disables caching (including ``cache_dir`` persistence).
    cache_dir:
        Optional directory for the persistent result store; finished
        answers written here survive a service restart (files carry
        the graph digest and are invalidated on mismatch).
    """

    def __init__(
        self,
        graph,
        config: Optional[GThinkerConfig] = None,
        runtime: str = "serial",
        bind: str = "127.0.0.1:0",
        worker_budget: Optional[int] = None,
        max_workers_per_job: Optional[int] = None,
        max_queue_depth: int = 64,
        tenant_weights: Optional[Dict[str, float]] = None,
        result_cache_size: int = 128,
        cache_dir: Optional[str] = None,
    ) -> None:
        spec = get_runtime(runtime)
        self._base_config = config or GThinkerConfig()
        if max_workers_per_job is None:
            max_workers_per_job = self._base_config.num_workers
        if max_workers_per_job < 1:
            raise ValueError("max_workers_per_job must be >= 1")
        if worker_budget is None:
            worker_budget = max(os.cpu_count() or 2, max_workers_per_job)
        if worker_budget < max_workers_per_job:
            raise ValueError(
                f"worker_budget ({worker_budget}) must be >= "
                f"max_workers_per_job ({max_workers_per_job})"
            )
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if result_cache_size < 0:
            raise ValueError("result_cache_size must be >= 0")
        for tenant, w in (tenant_weights or {}).items():
            if w <= 0:
                raise ValueError(f"tenant weight for {tenant!r} must be > 0")

        self.graph = graph
        self.runtime = runtime
        self.digest = graph_digest(graph)
        self._bind = parse_host_port(bind)
        self._budget_total = worker_budget
        self._max_workers_per_job = max_workers_per_job
        self._max_queue_depth = max_queue_depth
        self._weights = dict(tenant_weights or {})
        self._cancellable = spec.capabilities.cancellation

        # The execution substrate: one Session, graph resident, no
        # second queue below the admission scheduler.
        self._session = Session(graph, config=self._base_config,
                                runtime=runtime, max_concurrent=None)

        self._lock = threading.RLock()
        self._closed = False
        self._records: Dict[str, _JobRecord] = {}
        self._queues: Dict[str, deque] = {}  # tenant -> deque[_Execution]
        self._queued_count = 0
        self._tenant_pass: Dict[str, float] = {}
        self._vtime = 0.0
        self._available = worker_budget
        self._seq = itertools.count(1)
        self._done_seq = itertools.count(1)
        self._inflight: Dict[str, _Execution] = {}
        self._cache = ResultCache(result_cache_size, self.digest,
                                  cache_dir=cache_dir)
        self._stats: Dict[str, int] = {
            "submitted": 0,
            "admitted": 0,
            "rejected": 0,
            "cache_hits": 0,
            "deduped": 0,
            "executed": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
        }

        self._listener: Optional[socket.socket] = None
        self._address: Optional[Tuple[str, int]] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_lock = threading.Lock()
        self._conn_threads: List[threading.Thread] = []
        self._channels: List[ControlChannel] = []
        self._shutdown = threading.Event()
        self._started = False

    # ------------------------------------------------------------------
    # Admission and scheduling
    # ------------------------------------------------------------------

    def _weight(self, tenant: str) -> float:
        return float(self._weights.get(tenant, 1.0))

    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        """Admit one job; returns its wire record immediately.

        Raises :class:`JobRejectedError` when the app/params are
        invalid or the admission queue is full, and
        :class:`ServiceError` after :meth:`close` (checked *before*
        any scheduler state changes, so a late submission can never
        wedge the budget).  A result-cache hit returns an already-
        ``done`` record (``cached: True``) without touching a worker;
        a key already queued or running attaches to that execution
        (``deduped: True``) instead of mining twice.
        """
        try:
            factory = build_app_factory(spec.app, spec.params)
            requested = (spec.num_workers if spec.num_workers is not None
                         else self._base_config.num_workers)
            if requested < 1:
                raise JobRejectedError(
                    f"num_workers must be >= 1, got {requested}")
        except JobRejectedError:
            with self._lock:
                self._stats["rejected"] += 1
            raise
        key = cache_key(self.digest, spec.app, spec.params)
        quota = min(requested, self._max_workers_per_job)
        with self._lock:
            if self._closed:
                raise ServiceError("service is shut down")
            self._stats["submitted"] += 1
            record = _JobRecord(f"job-{next(self._seq)}", spec, quota, key)
            self._records[record.job_id] = record
            cached = self._cache.get(key)
            if cached is not None:
                self._stats["cache_hits"] += 1
                record.cached = True
                record.result = cached
                record.status = JOB_DONE
                record.started_at = record.finished_at = time.time()
                record.done_seq = next(self._done_seq)
                record.event.set()
                return record.to_wire()
            running = self._inflight.get(key)
            if running is not None and not running.abort_requested:
                # In-flight dedup: subscribe to the execution already
                # queued/running for this exact (graph, app, params).
                # The subscriber gets its own record (id, status,
                # done_seq) but charges no additional quota.
                record.deduped = True
                record.execution = running
                record.quota = running.quota
                running.records.append(record)
                record.status = running.status
                if running.status == JOB_RUNNING:
                    record.started_at = time.time()
                self._stats["deduped"] += 1
                self._stats["admitted"] += 1
                return record.to_wire()
            if self._queued_count >= self._max_queue_depth:
                self._stats["rejected"] += 1
                del self._records[record.job_id]
                raise JobRejectedError(
                    f"admission queue is full ({self._max_queue_depth} "
                    f"jobs queued); retry later or raise max_queue_depth"
                )
            self._stats["admitted"] += 1
            execution = _Execution(key, factory, quota, spec.tenant, record)
            record.execution = execution
            self._inflight[key] = execution
            tenant = spec.tenant
            q = self._queues.get(tenant)
            if q is None:
                q = self._queues[tenant] = deque()
            if not q:
                # Tenant (re)activates at the current virtual time: it
                # keeps any pass it already earned but gains no credit
                # for having been idle.
                self._tenant_pass[tenant] = max(
                    self._tenant_pass.get(tenant, 0.0), self._vtime
                )
            q.append(execution)
            self._queued_count += 1
            self._dispatch_locked()
            return record.to_wire()

    def _dispatch_locked(self) -> None:
        """Start queued executions while worker budget allows (lock held)."""
        self._prune_tenants_locked()
        while self._queued_count:
            active = [(p, t) for t, p in self._tenant_pass.items()
                      if self._queues.get(t)]
            if not active:  # defensive: count says queued, queues disagree
                return
            _pass, tenant = min(active)
            q = self._queues[tenant]
            execution = q[0]
            if execution.status == JOB_CANCELLED:
                # cancel() already took it out of the queued count; here
                # we just garbage-collect the deque entry.
                q.popleft()
                continue
            if execution.quota > self._available:
                return  # strict FIFO-within-fairness: no bypass
            q.popleft()
            self._queued_count -= 1
            self._available -= execution.quota
            self._vtime = self._tenant_pass[tenant]
            self._tenant_pass[tenant] += execution.quota / self._weight(tenant)
            now = time.time()
            execution.status = JOB_RUNNING
            for record in execution.records:
                if record.status == JOB_QUEUED:
                    record.status = JOB_RUNNING
                    record.started_at = now
            job_config = self._base_config.with_updates(
                num_workers=execution.quota)
            # All scheduler state is settled before the Session call, so
            # a submit failure (e.g. the session raced shut) can restore
            # the budget and fail the subscribers without leaving the
            # record stuck RUNNING or the quota leaked.
            try:
                handle = self._session.submit(execution.factory,
                                              config=job_config)
            except BaseException as exc:
                self._available += execution.quota
                self._inflight.pop(execution.key, None)
                self._fail_execution_locked(
                    execution, f"dispatch failed: "
                               f"{type(exc).__name__}: {exc}")
                continue
            self._stats["executed"] += 1
            execution.handle = handle
            handle.add_done_callback(
                functools.partial(self._on_job_done, execution))

    def _fail_execution_locked(self, execution: _Execution,
                               error: str) -> None:
        """Settle every live subscriber of a never-ran execution as failed."""
        now = time.time()
        execution.status = JOB_FAILED
        for record in execution.records:
            if record.status in _TERMINAL:
                continue
            record.status = JOB_FAILED
            record.error = error
            record.finished_at = now
            record.done_seq = next(self._done_seq)
            self._stats["failed"] += 1
            record.event.set()

    def _prune_tenants_locked(self) -> None:
        """Drop drained tenants so the maps stay bounded (lock held).

        While anything is queued, a tenant with an empty queue loses its
        deque; its pass entry is kept only while it is *ahead* of
        virtual time (that credit is what stops an idle tenant
        front-running on reactivation) and is dropped once ``_vtime``
        catches up.  When the queue is empty everywhere, credit has no
        competitor to be held against, so the whole scheduler state
        resets — this is what keeps the maps bounded under one-tenant-
        at-a-time traffic, where virtual time never advances.
        """
        if self._queued_count == 0:
            self._queues.clear()
            self._tenant_pass.clear()
            self._vtime = 0.0
            return
        for tenant in [t for t, q in self._queues.items() if not q]:
            del self._queues[tenant]
        for tenant in [t for t, p in self._tenant_pass.items()
                       if p <= self._vtime and not self._queues.get(t)]:
            del self._tenant_pass[tenant]

    def _on_job_done(self, execution: _Execution, handle) -> None:
        """Session runner callback: settle subscribers, refill the budget."""
        events = []
        with self._lock:
            if self._inflight.get(execution.key) is execution:
                del self._inflight[execution.key]
            now = time.time()
            result = None
            error = None
            try:
                result = handle.result(timeout=0)
                status = JOB_DONE
            except JobCancelledError:
                status = JOB_CANCELLED
            except BaseException as exc:
                status = JOB_FAILED
                error = f"{type(exc).__name__}: {exc}"
            execution.status = status
            if status == JOB_DONE:
                self._cache.put(execution.key, result)
            for record in execution.records:
                if record.status in _TERMINAL:
                    continue  # e.g. a subscriber cancelled individually
                record.finished_at = now
                record.done_seq = next(self._done_seq)
                record.status = status
                if status == JOB_DONE:
                    record.result = result
                    self._stats["completed"] += 1
                elif status == JOB_CANCELLED:
                    self._stats["cancelled"] += 1
                else:
                    record.error = error
                    self._stats["failed"] += 1
                events.append(record.event)
            self._available += execution.quota
            self._dispatch_locked()
        for event in events:
            event.set()

    # ------------------------------------------------------------------
    # Job inspection / control (shared by in-process and wire callers)
    # ------------------------------------------------------------------

    def _record(self, job_id: str) -> _JobRecord:
        record = self._records.get(job_id)
        if record is None:
            raise KeyError(job_id)
        return record

    def status(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            return self._record(job_id).to_wire()

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [r.to_wire() for r in self._records.values()]

    def stats(self) -> Dict[str, Any]:
        with self._conn_lock:
            open_connections = sum(
                1 for t in self._conn_threads if t.is_alive())
        with self._lock:
            return {
                **self._stats,
                "queued": self._queued_count,
                "inflight": len(self._inflight),
                "workers_available": self._available,
                "worker_budget": self._budget_total,
                "cache_entries": len(self._cache),
                "cache_disk_entries": self._cache.disk_entries(),
                "tracked_tenants": len(self._tenant_pass),
                "open_connections": open_connections,
            }

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; returns True when the cancel was accepted.

        A queued job cancels immediately.  A *running* job is cancelled
        cooperatively: the underlying execution's abort token is set
        and honored at the next sync boundary, so the record reaches
        ``cancelled`` (and the quota is re-admitted) within one
        scheduler pass rather than instantly.  On a deduplicated key
        only the named subscriber is settled; the shared execution is
        killed only when its last live subscriber cancels.  Returns
        False for finished jobs, and for running jobs when the
        service runtime declines running-job cancellation
        (``cluster``) and no other subscriber keeps the execution
        alive to spare.
        """
        kill_handle = None
        with self._lock:
            record = self._record(job_id)
            if record.status not in _LIVE:
                return False
            execution = record.execution
            others_live = bool(execution.live_records(but=record))
            if (record.status == JOB_RUNNING and not others_live
                    and not self._cancellable):
                # Honoring this cancel means stopping the actual run,
                # and the runtime declines mid-run aborts.
                return False
            record.status = JOB_CANCELLED
            record.finished_at = time.time()
            record.done_seq = next(self._done_seq)
            self._stats["cancelled"] += 1
            if not others_live:
                # Last live subscriber gone: take the execution down.
                if execution.status == JOB_QUEUED:
                    execution.status = JOB_CANCELLED
                    self._inflight.pop(execution.key, None)
                    # Lazy removal: _dispatch_locked skips cancelled
                    # deque entries.
                    self._queued_count -= 1
                elif execution.status == JOB_RUNNING:
                    execution.abort_requested = True
                    self._inflight.pop(execution.key, None)
                    kill_handle = execution.handle
        record.event.set()
        if kill_handle is not None:
            # Outside the lock: the Session-level cancel may run its
            # done-callback inline, which re-acquires our lock.
            kill_handle.cancel()
        return True

    def wait_result(self, job_id: str, timeout: Optional[float] = None):
        """Block for a job's :class:`~repro.core.job.JobResult`.

        Raises :class:`TimeoutError`, :class:`JobCancelledError`, or
        :class:`ServiceError` (carrying the job's error string) when
        the job timed out / was cancelled / failed.
        """
        with self._lock:
            record = self._record(job_id)
        if not record.event.wait(timeout):
            raise TimeoutError(
                f"job {job_id} still {record.status} after {timeout}s"
            )
        if record.status == JOB_CANCELLED:
            raise JobCancelledError(f"job {job_id} was cancelled")
        if record.status == JOB_FAILED:
            raise ServiceError(f"job {job_id} failed: {record.error}")
        return record.result

    def server_info(self) -> Dict[str, Any]:
        info = {
            "graph_digest": self.digest,
            "runtime": self.runtime,
            "apps": available_apps(),
            "worker_budget": self._budget_total,
            "max_workers_per_job": self._max_workers_per_job,
            "max_queue_depth": self._max_queue_depth,
            "tenant_weights": dict(self._weights),
            "cancellation": self._cancellable,
        }
        num_vertices = getattr(self.graph, "num_vertices", None)
        if num_vertices is not None:
            info["num_vertices"] = num_vertices
            info["num_edges"] = self.graph.num_edges
        return info

    # ------------------------------------------------------------------
    # Socket front end
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — valid after :meth:`start`."""
        if self._address is None:
            raise RuntimeError("service is not started")
        return self._address

    def start(self) -> "GraphService":
        """Bind the listener and start serving in background threads."""
        if self._started:
            return self
        host, port = self._bind
        self._listener = listen_socket(host, port)
        self._address = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="service-accept"
        )
        self._started = True
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`shutdown`."""
        self.start()
        try:
            self._shutdown.wait()
        finally:
            self.close()

    def shutdown(self) -> None:
        """Ask the server to stop; ``serve_forever`` returns after this."""
        self._shutdown.set()

    def close(self) -> None:
        """Stop the listener, cancel queued jobs, drain running ones.

        After this returns, :meth:`submit` raises
        :class:`ServiceError` instead of touching the (now closed)
        session.
        """
        with self._lock:
            self._closed = True
        self._shutdown.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._lock:
            queued = [r.job_id for r in self._records.values()
                      if r.status == JOB_QUEUED]
        for job_id in queued:
            self.cancel(job_id)
        with self._conn_lock:
            channels = list(self._channels)
            threads = list(self._conn_threads)
        for chan in channels:
            chan.close()
        for t in threads:
            t.join(timeout=5.0)
        self._session.close(wait=True)

    def __enter__(self) -> "GraphService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _accept_loop(self) -> None:
        with selectors.DefaultSelector() as sel:
            try:
                sel.register(self._listener, selectors.EVENT_READ)
            except (ValueError, OSError):
                return  # close() raced us and already took the listener
            while not self._shutdown.is_set():
                if not sel.select(timeout=0.2):
                    continue
                try:
                    conn, _addr = self._listener.accept()
                except OSError:
                    return
                chan = ControlChannel(conn)
                t = threading.Thread(
                    target=self._serve_connection, args=(chan,),
                    daemon=True, name="service-conn",
                )
                with self._conn_lock:
                    # Reap finished handler threads so a long-lived
                    # service doesn't accumulate one entry per client
                    # that ever connected.
                    self._conn_threads = [x for x in self._conn_threads
                                          if x.is_alive()]
                    self._conn_threads.append(t)
                    self._channels.append(chan)
                t.start()

    def _serve_connection(self, chan: ControlChannel) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    request = chan.recv_obj(timeout=0.25)
                except TimeoutError:
                    continue
                except (ChannelClosed, WireDecodeError, OSError):
                    return
                try:
                    reply = self._handle(request)
                except Exception as exc:
                    # A handler bug must cost one request, not the
                    # connection: report it as a typed internal error
                    # and keep serving.
                    reply = ("error", {
                        "kind": "internal",
                        "message": f"{type(exc).__name__}: {exc}",
                    })
                try:
                    chan.send_obj(reply)
                except (ChannelClosed, OSError):
                    return
                except Exception as exc:
                    # e.g. an unpicklable payload; the frame was never
                    # started (send_obj serializes before writing), so
                    # the channel is still coherent.
                    chan.send_obj(("error", {
                        "kind": "internal",
                        "message": f"reply serialization failed: "
                                   f"{type(exc).__name__}: {exc}",
                    }))
        except (ChannelClosed, WireDecodeError, OSError):
            pass
        finally:
            chan.close()
            with self._conn_lock:
                if chan in self._channels:
                    self._channels.remove(chan)

    def _handle(self, request) -> Tuple[str, Dict[str, Any]]:
        """One request tuple -> one ``("ok" | "error", payload)`` reply."""
        if (not isinstance(request, tuple) or len(request) != 2
                or request[0] not in _OPS
                or not isinstance(request[1], dict)):
            return ("error", {"kind": "bad-request",
                              "message": f"malformed request {request!r}; "
                                         f"expected (op, payload) with op in "
                                         f"{_OPS}"})
        op, payload = request
        try:
            if op == "hello":
                return ("ok", self.server_info())
            if op == "submit":
                spec = JobSpec(
                    app=payload.get("app", ""),
                    params=dict(payload.get("params") or {}),
                    tenant=str(payload.get("tenant") or "default"),
                    num_workers=payload.get("num_workers"),
                )
                return ("ok", {"record": self.submit(spec)})
            if op == "status":
                return ("ok", {"record": self.status(payload["job_id"])})
            if op == "result":
                job_id = payload["job_id"]
                result = self.wait_result(job_id, payload.get("timeout"))
                return ("ok", {"record": self.status(job_id),
                               "result": result})
            if op == "cancel":
                job_id = payload["job_id"]
                cancelled = self.cancel(job_id)
                return ("ok", {"cancelled": cancelled,
                               "record": self.status(job_id)})
            if op == "jobs":
                return ("ok", {"jobs": self.jobs()})
            if op == "stats":
                return ("ok", {"stats": self.stats()})
            if op == "shutdown":
                self.shutdown()
                return ("ok", {})
        except JobRejectedError as exc:
            return ("error", {"kind": "rejected", "message": str(exc)})
        except JobCancelledError as exc:
            return ("error", {"kind": "cancelled", "message": str(exc)})
        except TimeoutError as exc:
            return ("error", {"kind": "timeout", "message": str(exc)})
        except KeyError as exc:
            return ("error", {"kind": "unknown-job",
                              "message": f"no such job: {exc}"})
        except ServiceError as exc:
            return ("error", {"kind": "failed", "message": str(exc)})
        return ("error", {"kind": "bad-request",
                          "message": f"unhandled op {op!r}"})
