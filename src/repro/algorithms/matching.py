"""Serial subgraph matching (the paper's GM application kernel).

Given a small labeled *query* graph and a labeled *data* graph, find all
subgraph isomorphisms (injective vertex mappings preserving labels and
query edges).  This is the pattern-to-instance problem the paper
targets: the pattern is fixed up front, and redundancy is avoided by a
fixed matching order — never by isomorphism checks on generated
subgraphs (the design mistake the paper calls out in Arabesque/RStream).

The kernel is a standard backtracking search with:

* label-based candidate filtering (the Trimmer analogue: "vertices and
  edges in the data graph whose labels do not appear in the query graph
  can be safely pruned"),
* a connectivity-aware matching order (each query vertex after the
  first has a matched neighbor, so candidates come from adjacency
  intersections rather than global scans),
* symmetry breaking for automorphic query vertices via id ordering, so
  each embedding is reported exactly once.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..graph import kernels
from ..graph.graph import Graph

__all__ = [
    "QueryGraph",
    "match_subgraph",
    "count_matches",
    "match_reference",
    "triangle_query",
    "path_query",
    "star_query",
]


class QueryGraph:
    """A small labeled pattern graph with a precomputed matching order."""

    def __init__(
        self,
        edges: Sequence[Tuple[int, int]],
        labels: Optional[Mapping[int, int]] = None,
    ) -> None:
        self.graph = Graph.from_edges(edges)
        if self.graph.num_vertices == 0:
            raise ValueError("query graph must not be empty")
        self.labels = {v: (labels or {}).get(v, 0) for v in self.graph.vertices()}
        self.order = self._matching_order()
        self.symmetry_pairs = self._symmetry_breaking_pairs()

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    def _matching_order(self) -> List[int]:
        """Connectivity-first order: start at the max-degree query vertex,
        then repeatedly add the unmatched vertex with most matched
        neighbors (ties by degree)."""
        g = self.graph
        verts = g.sorted_vertices()
        start = max(verts, key=lambda v: (g.degree(v), -v))
        order = [start]
        remaining = set(verts) - {start}
        while remaining:
            def score(v: int) -> Tuple[int, int, int]:
                matched_nbrs = sum(1 for u in g.neighbors(v) if u in order)
                return (matched_nbrs, g.degree(v), -v)

            nxt = max(remaining, key=score)
            order.append(nxt)
            remaining.remove(nxt)
        return order

    def _automorphisms(self) -> List[Dict[int, int]]:
        """All label- and edge-preserving self-mappings (query graphs are tiny)."""
        g = self.graph
        verts = g.sorted_vertices()
        autos: List[Dict[int, int]] = []
        edge_set = {frozenset(e) for e in g.edges()}
        for perm in permutations(verts):
            mapping = dict(zip(verts, perm))
            if any(self.labels[v] != self.labels[mapping[v]] for v in verts):
                continue
            if all(frozenset((mapping[u], mapping[v])) in edge_set for u, v in g.edges()):
                autos.append(mapping)
        return autos

    def _symmetry_breaking_pairs(self) -> List[Tuple[int, int]]:
        """Pairs ``(a, b)`` of query vertices such that requiring
        ``data[a] < data[b]`` kills every non-identity automorphism,
        so each embedding is enumerated exactly once.

        This is the standard conditional symmetry-breaking construction:
        process automorphisms one at a time, pinning the smallest moved
        vertex with an ordering constraint.
        """
        pairs: List[Tuple[int, int]] = []
        autos = [a for a in self._automorphisms() if any(k != v for k, v in a.items())]
        pinned: Set[int] = set()
        while autos:
            moved = sorted({v for a in autos for v in a if a[v] != v})
            anchor = moved[0]
            partners = sorted({a[anchor] for a in autos if a[anchor] != anchor})
            for p in partners:
                pairs.append((anchor, p))
            pinned.add(anchor)
            autos = [a for a in autos if a[anchor] == anchor]
        return pairs


def triangle_query(labels: Optional[Mapping[int, int]] = None) -> QueryGraph:
    """The 3-clique pattern."""
    return QueryGraph([(0, 1), (1, 2), (0, 2)], labels=labels)


def path_query(length: int, labels: Optional[Mapping[int, int]] = None) -> QueryGraph:
    """A simple path with ``length`` edges."""
    if length < 1:
        raise ValueError("path length must be >= 1")
    return QueryGraph([(i, i + 1) for i in range(length)], labels=labels)


def star_query(arms: int, labels: Optional[Mapping[int, int]] = None) -> QueryGraph:
    """A star: center 0 with ``arms`` leaves."""
    if arms < 1:
        raise ValueError("star must have >= 1 arm")
    return QueryGraph([(0, i) for i in range(1, arms + 1)], labels=labels)


def _candidates_ok(
    query: QueryGraph,
    q: int,
    d: int,
    data: Graph,
    assignment: Dict[int, int],
) -> bool:
    if query.labels[q] != data.label(d):
        return False
    if d in assignment.values():
        return False
    for qn in query.graph.neighbors(q):
        if qn in assignment and not data.has_edge(d, assignment[qn]):
            return False
    for (a, b) in query.symmetry_pairs:
        if a == q and b in assignment and not d < assignment[b]:
            return False
        if b == q and a in assignment and not assignment[a] < d:
            return False
    return True


def match_subgraph(
    data: Graph,
    query: QueryGraph,
    anchor: Optional[Tuple[int, int]] = None,
) -> Iterator[Dict[int, int]]:
    """Yield each embedding of ``query`` in ``data`` exactly once.

    Parameters
    ----------
    anchor:
        Optional ``(query_vertex, data_vertex)`` pin.  G-thinker's GM
        tasks partition the search space by anchoring the first query
        vertex at each data vertex, so the distributed app calls this
        with an anchor per task and the union over anchors is the full
        answer set.
    """
    order = query.order
    assignment: Dict[int, int] = {}

    if anchor is not None:
        qa, da = anchor
        if qa != order[0]:
            raise ValueError(
                f"anchor must pin the first query vertex in matching order "
                f"({order[0]}), got {qa}"
            )
        if not _candidates_ok(query, qa, da, data, assignment):
            return
        assignment[qa] = da
        start_depth = 1
    else:
        start_depth = 0

    def candidates(depth: int) -> Iterator[int]:
        q = order[depth]
        matched_nbrs = [u for u in query.graph.neighbors(q) if u in assignment]
        if matched_nbrs:
            # Candidates must be adjacent to *every* already-matched
            # query neighbor: fold the adjacency arrays in one
            # vectorized pass (smallest-first with early exit) instead
            # of scanning the smallest list and re-checking edges.
            common = kernels.intersect_many(
                data.neighbors_array(assignment[u]) for u in matched_nbrs
            )
            yield from common.tolist()
        else:
            yield from data.vertices()

    def backtrack(depth: int) -> Iterator[Dict[int, int]]:
        if depth == len(order):
            yield dict(assignment)
            return
        q = order[depth]
        for d in candidates(depth):
            if _candidates_ok(query, q, d, data, assignment):
                assignment[q] = d
                yield from backtrack(depth + 1)
                del assignment[q]

    yield from backtrack(start_depth)


def count_matches(
    data: Graph, query: QueryGraph, anchor: Optional[Tuple[int, int]] = None
) -> int:
    """Count embeddings without materializing the mapping dicts."""
    return sum(1 for _ in match_subgraph(data, query, anchor=anchor))


def match_reference(data: Graph, query: QueryGraph) -> int:
    """Brute-force oracle: try every injective vertex combination.

    Exponential — only for tiny test graphs.  Counts *unique embeddings*
    (vertex-set+edge-preserving maps modulo query automorphisms), the
    same unit :func:`match_subgraph` reports.
    """
    qverts = query.graph.sorted_vertices()
    qedges = list(query.graph.edges())
    seen: Set[Tuple[Tuple[int, int], ...]] = set()
    data_vs = data.sorted_vertices()
    count = 0
    for perm in permutations(data_vs, len(qverts)):
        mapping = dict(zip(qverts, perm))
        if any(query.labels[q] != data.label(mapping[q]) for q in qverts):
            continue
        if not all(data.has_edge(mapping[u], mapping[v]) for u, v in qedges):
            continue
        # Canonicalize modulo automorphisms: the sorted image of each
        # query orbit.  Simplest: canonical key = sorted (label, data id)
        # per query vertex grouped by automorphism orbits — but a
        # sufficient canonical form for counting is the multiset of
        # (mapped edge) pairs plus the mapped vertex multiset.
        key = tuple(sorted((min(mapping[u], mapping[v]), max(mapping[u], mapping[v])) for u, v in qedges))
        vkey = tuple(sorted(mapping[q] for q in qverts))
        full_key = (vkey, key)
        if full_key in seen:
            continue
        seen.add(full_key)
        count += 1
    return count
