"""Serial mining kernels run inside tasks, plus independent test oracles."""

from .cliques import (
    enumerate_maximal_cliques,
    greedy_coloring_bound,
    max_clique,
    max_clique_reference,
)
from .triangles import (
    count_triangles,
    count_triangles_from_gt,
    list_triangles,
    local_triangle_counts,
)
from .matching import (
    QueryGraph,
    count_matches,
    match_reference,
    match_subgraph,
    path_query,
    star_query,
    triangle_query,
)
from .quasicliques import (
    enumerate_quasi_cliques,
    is_quasi_clique,
    quasi_cliques_reference,
    two_hop_neighborhood,
)
from .motifs import (
    clustering_coefficient,
    count_diamonds,
    count_four_cliques,
    count_squares,
    count_wedges,
    motif_census,
)
from .setenum import children, clique_children, enumerate_subsets, subtree_size

__all__ = [
    "enumerate_maximal_cliques",
    "greedy_coloring_bound",
    "max_clique",
    "max_clique_reference",
    "count_triangles",
    "count_triangles_from_gt",
    "list_triangles",
    "local_triangle_counts",
    "QueryGraph",
    "count_matches",
    "match_reference",
    "match_subgraph",
    "path_query",
    "star_query",
    "triangle_query",
    "enumerate_quasi_cliques",
    "is_quasi_clique",
    "quasi_cliques_reference",
    "two_hop_neighborhood",
    "clustering_coefficient",
    "count_diamonds",
    "count_four_cliques",
    "count_squares",
    "count_wedges",
    "motif_census",
    "children",
    "clique_children",
    "enumerate_subsets",
    "subtree_size",
]
