"""Serial gamma-quasi-clique mining (Quick-style, after [17]).

A vertex set ``S`` is a *gamma-quasi-clique* if every member is adjacent
to at least ``ceil(gamma * (|S| - 1))`` other members.  The paper uses
quasi-clique mining as its running API example: for ``gamma >= 0.5`` any
two members are within two hops, so a task spawned at vertex ``v`` can
materialize ``v``'s 2-hop ego network and mine it locally.

We implement the set-enumeration search with the two standard prunings
from Liu & Wong's Quick algorithm:

* **degree upper bound**: a candidate whose degree inside
  ``S ∪ cand`` cannot reach the threshold even if everything joins is
  dropped;
* **extensibility**: if some member of ``S`` can never reach its
  required in-set degree even with all candidates added, the whole
  branch dies.

Only *maximal* quasi-cliques of at least ``min_size`` vertices are
reported, mirroring the problem statement of [17].
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterator, List, Mapping, Sequence, Set, Tuple

from ..graph.graph import Graph

__all__ = [
    "is_quasi_clique",
    "enumerate_quasi_cliques",
    "quasi_cliques_reference",
    "two_hop_neighborhood",
]


def _adj_sets(g) -> Dict[int, Set[int]]:
    if isinstance(g, Graph):
        return {v: set(g.neighbors(v)) for v in g.vertices()}
    return {v: set(a) for v, a in g.items()}


def _required_degree(gamma: float, size: int) -> int:
    return math.ceil(gamma * (size - 1))


def is_quasi_clique(g, vertices: Sequence[int], gamma: float) -> bool:
    """Check the gamma-quasi-clique condition on a vertex set."""
    adj = _adj_sets(g)
    vset = set(vertices)
    if not vset:
        return False
    need = _required_degree(gamma, len(vset))
    return all(len(adj[v] & vset) >= need for v in vset)


def two_hop_neighborhood(g, v: int) -> Set[int]:
    """``v`` plus every vertex within two hops of ``v``.

    The materialization target of a quasi-clique task ([17]: any two
    vertices of a gamma >= 0.5 quasi-clique are within 2 hops).
    """
    adj = _adj_sets(g)
    out = {v} | adj[v]
    for u in list(adj[v]):
        out |= adj[u]
    return out


def enumerate_quasi_cliques(
    g,
    gamma: float,
    min_size: int = 3,
    restrict_min_vertex: int = -1,
) -> Iterator[Tuple[int, ...]]:
    """Yield maximal gamma-quasi-cliques with at least ``min_size`` vertices.

    Parameters
    ----------
    restrict_min_vertex:
        When >= 0, only report quasi-cliques whose smallest vertex equals
        this id.  This is the distributed de-duplication rule: the task
        spawned from ``v`` owns exactly the results whose minimum is
        ``v`` (same role as :math:`\\Gamma_>` in clique search).
    """
    if not 0.0 < gamma <= 1.0:
        raise ValueError(f"gamma must be in (0, 1], got {gamma}")
    if min_size < 2:
        raise ValueError("min_size must be >= 2")
    adj = _adj_sets(g)
    qualifying: Set[FrozenSet[int]] = set()

    all_vertices = sorted(adj)

    def in_degree(v: int, members: Set[int]) -> int:
        return len(adj[v] & members)

    def qualifies(members: Set[int]) -> bool:
        need = _required_degree(gamma, len(members))
        return all(in_degree(v, members) >= need for v in members)

    def prune_candidates(members: Set[int], cand: List[int]) -> List[int]:
        # Sound drop rule: any qualifying quasi-clique Q containing a
        # candidate u satisfies Q ⊆ members ∪ cand, |Q| >= max(|members|+1,
        # min_size), and deg_Q(u) <= deg_(members ∪ cand)(u).  Since the
        # required degree ceil(gamma * (|Q| - 1)) is monotone in |Q|, u
        # can be dropped when even its best-case degree misses the
        # *smallest* possible requirement.  Iterate to a fixpoint because
        # dropping one candidate lowers others' best-case degrees.
        current = list(cand)
        while True:
            total = members | set(current)
            floor_size = max(len(members) + 1, min_size)
            need_min = _required_degree(gamma, floor_size)
            kept = [u for u in current if in_degree(u, total) >= need_min]
            if len(kept) == len(current):
                return kept
            current = kept

    def branch_alive(members: Set[int], cand: List[int]) -> bool:
        # Sound branch kill: every qualifying Q in this branch contains
        # all of `members` and at most the candidates, so a member whose
        # best-case degree cannot reach the minimum possible requirement
        # dooms the entire branch.
        if not members:
            return True
        total = members | set(cand)
        floor_size = max(len(members), min_size)
        need_min = _required_degree(gamma, floor_size)
        return all(in_degree(v, total) >= need_min for v in members)

    def expand(members: Set[int], cand: List[int]) -> None:
        cand = prune_candidates(members, cand)
        if not branch_alive(members, cand):
            return
        if len(members) >= min_size and qualifies(members):
            qualifying.add(frozenset(members))
        for i, u in enumerate(cand):
            expand(members | {u}, cand[i + 1:])

    # Quasi-cliques are not hereditary, so maximality must be judged
    # against *all* qualifying sets, including those whose minimum vertex
    # is smaller than a reported set's minimum.  We therefore always
    # enumerate over the whole given graph and apply the min-vertex
    # ownership filter only when reporting.  (For distributed use the
    # given graph must contain the owner's full 2-hop ego network, which
    # is exactly what a quasi-clique task materializes.)
    for v in all_vertices:
        expand({v}, [u for u in all_vertices if u > v])

    by_size: Dict[int, List[FrozenSet[int]]] = {}
    for q in qualifying:
        by_size.setdefault(len(q), []).append(q)
    sizes = sorted(by_size, reverse=True)
    for q in sorted(qualifying, key=lambda s: (len(s), sorted(s))):
        if restrict_min_vertex >= 0 and min(q) != restrict_min_vertex:
            continue
        has_superset = any(
            q < bigger
            for size in sizes
            if size > len(q)
            for bigger in by_size[size]
        )
        if not has_superset:
            yield tuple(sorted(q))


def quasi_cliques_reference(g, gamma: float, min_size: int = 3) -> Set[Tuple[int, ...]]:
    """Brute-force oracle: test every vertex subset (tiny graphs only)."""
    from itertools import combinations

    adj = _adj_sets(g)
    verts = sorted(adj)
    if len(verts) > 16:
        raise ValueError("reference oracle is exponential; use <= 16 vertices")
    qcs: Set[FrozenSet[int]] = set()
    for size in range(min_size, len(verts) + 1):
        for combo in combinations(verts, size):
            if is_quasi_clique(g, combo, gamma):
                qcs.add(frozenset(combo))
    maximal = {
        q for q in qcs
        if not any(q < other for other in qcs)
    }
    return {tuple(sorted(q)) for q in maximal}
