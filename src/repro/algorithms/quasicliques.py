"""Serial gamma-quasi-clique mining (Quick-style, after [17]).

A vertex set ``S`` is a *gamma-quasi-clique* if every member is adjacent
to at least ``ceil(gamma * (|S| - 1))`` other members.  The paper uses
quasi-clique mining as its running API example: for ``gamma >= 0.5`` any
two members are within two hops, so a task spawned at vertex ``v`` can
materialize ``v``'s 2-hop ego network and mine it locally.

We implement the set-enumeration search with the two standard prunings
from Liu & Wong's Quick algorithm:

* **degree upper bound**: a candidate whose degree inside
  ``S ∪ cand`` cannot reach the threshold even if everything joins is
  dropped;
* **extensibility**: if some member of ``S`` can never reach its
  required in-set degree even with all candidates added, the whole
  branch dies.

Only *maximal* quasi-cliques of at least ``min_size`` vertices are
reported, mirroring the problem statement of [17].
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph import kernels
from ..graph.graph import Graph

__all__ = [
    "is_quasi_clique",
    "enumerate_quasi_cliques",
    "quasi_cliques_reference",
    "two_hop_neighborhood",
]


def _adj_sets(g) -> Dict[int, Set[int]]:
    if isinstance(g, Graph):
        return {v: set(g.neighbors(v)) for v in g.vertices()}
    return {v: set(a) for v, a in g.items()}


def _required_degree(gamma: float, size: int) -> int:
    return math.ceil(gamma * (size - 1))


def is_quasi_clique(g, vertices: Sequence[int], gamma: float) -> bool:
    """Check the gamma-quasi-clique condition on a vertex set."""
    adj = _adj_sets(g)
    vset = set(vertices)
    if not vset:
        return False
    need = _required_degree(gamma, len(vset))
    return all(len(adj[v] & vset) >= need for v in vset)


def two_hop_neighborhood(g, v: int) -> Set[int]:
    """``v`` plus every vertex within two hops of ``v``.

    The materialization target of a quasi-clique task ([17]: any two
    vertices of a gamma >= 0.5 quasi-clique are within 2 hops).
    """
    adj = _adj_sets(g)
    out = {v} | adj[v]
    for u in list(adj[v]):
        out |= adj[u]
    return out


#: Bitset-search window: below the minimum, python set probes beat the
#: kernel call overhead; above the maximum, the dense (n x n/64) mask
#: matrix stops paying for itself on sparse ego networks.  The window
#: only auto-engages on a *compiled* kernel backend — interpreted numpy
#: pays a per-branch dispatch cost that python set probes beat (measured
#: ~2.3x slower end-to-end on the youtube stand-in).
_BITSET_MIN = 48
_BITSET_MAX = 4096


def _enumerate_bitset(
    adj: Dict[int, Set[int]],
    all_vertices: List[int],
    gamma: float,
    min_size: int,
) -> Set[FrozenSet[int]]:
    """The same set-enumeration search on packed uint64 bitsets.

    Vertices are mapped to dense positions in id order (so the branch
    order is identical to the set-based search) and every in-set-degree
    bound — candidate pruning, branch extensibility, the qualification
    check — becomes one vectorized/compiled ``kernels.bitset_and_counts``
    call over the packed adjacency rows.  Returns qualifying sets in
    original vertex ids.
    """
    n = len(all_vertices)
    pos = {v: i for i, v in enumerate(all_vertices)}
    rows = kernels.pack_rows(
        [
            np.fromiter((pos[u] for u in adj[v] if u in pos), dtype=np.int64)
            for v in all_vertices
        ],
        n,
    )
    qualifying: Set[FrozenSet[int]] = set()

    def expand(members: List[int], members_mask: np.ndarray,
               cand: np.ndarray) -> None:
        # Candidate pruning to a fixpoint (see prune_candidates in the
        # set-based search for the soundness argument).
        while True:
            total_mask = members_mask | kernels.pack_mask(cand, n)
            floor_size = max(len(members) + 1, min_size)
            need_min = _required_degree(gamma, floor_size)
            counts = kernels.bitset_and_counts(rows[cand], total_mask)
            kept = cand[counts >= need_min]
            if kept.size == cand.size:
                break
            cand = kept
        if members:
            members_arr = np.asarray(members, dtype=np.int64)
            total_mask = members_mask | kernels.pack_mask(cand, n)
            floor_size = max(len(members), min_size)
            need_min = _required_degree(gamma, floor_size)
            mcounts = kernels.bitset_and_counts(rows[members_arr], total_mask)
            if not bool((mcounts >= need_min).all()):
                return
            if len(members) >= min_size:
                need = _required_degree(gamma, len(members))
                in_counts = kernels.bitset_and_counts(rows[members_arr],
                                                      members_mask)
                if bool((in_counts >= need).all()):
                    qualifying.add(
                        frozenset(all_vertices[p] for p in members)
                    )
        for i in range(cand.size):
            u = int(cand[i])
            u_mask = members_mask.copy()
            u_mask[u >> 6] |= np.uint64(1) << np.uint64(u & 63)
            expand(members + [u], u_mask, cand[i + 1:])

    empty_mask = np.zeros(kernels.bitset_words(n), dtype=np.uint64)
    for v_pos in range(n):
        v_mask = empty_mask.copy()
        v_mask[v_pos >> 6] |= np.uint64(1) << np.uint64(v_pos & 63)
        expand([v_pos], v_mask,
               np.arange(v_pos + 1, n, dtype=np.int64))
    return qualifying


def enumerate_quasi_cliques(
    g,
    gamma: float,
    min_size: int = 3,
    restrict_min_vertex: int = -1,
    use_bitset: Optional[bool] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield maximal gamma-quasi-cliques with at least ``min_size`` vertices.

    Parameters
    ----------
    restrict_min_vertex:
        When >= 0, only report quasi-cliques whose smallest vertex equals
        this id.  This is the distributed de-duplication rule: the task
        spawned from ``v`` owns exactly the results whose minimum is
        ``v`` (same role as :math:`\\Gamma_>` in clique search).
    use_bitset:
        Force (True) or forbid (False) the packed-bitset search whose
        degree bounds run on the :mod:`repro.graph.kernels` backend;
        ``None`` picks it automatically for mid-sized ego networks when
        a compiled backend is active (interpreted numpy loses to python
        set probes there).  Both searches visit branches in the same
        order and return identical results — the flag exists for
        cross-checking and benchmarks.
    """
    if not 0.0 < gamma <= 1.0:
        raise ValueError(f"gamma must be in (0, 1], got {gamma}")
    if min_size < 2:
        raise ValueError("min_size must be >= 2")
    adj = _adj_sets(g)
    qualifying: Set[FrozenSet[int]] = set()

    all_vertices = sorted(adj)

    def in_degree(v: int, members: Set[int]) -> int:
        return len(adj[v] & members)

    def qualifies(members: Set[int]) -> bool:
        need = _required_degree(gamma, len(members))
        return all(in_degree(v, members) >= need for v in members)

    def prune_candidates(members: Set[int], cand: List[int]) -> List[int]:
        # Sound drop rule: any qualifying quasi-clique Q containing a
        # candidate u satisfies Q ⊆ members ∪ cand, |Q| >= max(|members|+1,
        # min_size), and deg_Q(u) <= deg_(members ∪ cand)(u).  Since the
        # required degree ceil(gamma * (|Q| - 1)) is monotone in |Q|, u
        # can be dropped when even its best-case degree misses the
        # *smallest* possible requirement.  Iterate to a fixpoint because
        # dropping one candidate lowers others' best-case degrees.
        current = list(cand)
        while True:
            total = members | set(current)
            floor_size = max(len(members) + 1, min_size)
            need_min = _required_degree(gamma, floor_size)
            kept = [u for u in current if in_degree(u, total) >= need_min]
            if len(kept) == len(current):
                return kept
            current = kept

    def branch_alive(members: Set[int], cand: List[int]) -> bool:
        # Sound branch kill: every qualifying Q in this branch contains
        # all of `members` and at most the candidates, so a member whose
        # best-case degree cannot reach the minimum possible requirement
        # dooms the entire branch.
        if not members:
            return True
        total = members | set(cand)
        floor_size = max(len(members), min_size)
        need_min = _required_degree(gamma, floor_size)
        return all(in_degree(v, total) >= need_min for v in members)

    def expand(members: Set[int], cand: List[int]) -> None:
        cand = prune_candidates(members, cand)
        if not branch_alive(members, cand):
            return
        if len(members) >= min_size and qualifies(members):
            qualifying.add(frozenset(members))
        for i, u in enumerate(cand):
            expand(members | {u}, cand[i + 1:])

    # Quasi-cliques are not hereditary, so maximality must be judged
    # against *all* qualifying sets, including those whose minimum vertex
    # is smaller than a reported set's minimum.  We therefore always
    # enumerate over the whole given graph and apply the min-vertex
    # ownership filter only when reporting.  (For distributed use the
    # given graph must contain the owner's full 2-hop ego network, which
    # is exactly what a quasi-clique task materializes.)
    if use_bitset is None:
        use_bitset = (kernels.current_backend() != "numpy"
                      and _BITSET_MIN <= len(all_vertices) <= _BITSET_MAX)
    if use_bitset and all_vertices:
        qualifying = _enumerate_bitset(adj, all_vertices, gamma, min_size)
    else:
        for v in all_vertices:
            expand({v}, [u for u in all_vertices if u > v])

    by_size: Dict[int, List[FrozenSet[int]]] = {}
    for q in qualifying:
        by_size.setdefault(len(q), []).append(q)
    sizes = sorted(by_size, reverse=True)
    for q in sorted(qualifying, key=lambda s: (len(s), sorted(s))):
        if restrict_min_vertex >= 0 and min(q) != restrict_min_vertex:
            continue
        has_superset = any(
            q < bigger
            for size in sizes
            if size > len(q)
            for bigger in by_size[size]
        )
        if not has_superset:
            yield tuple(sorted(q))


def quasi_cliques_reference(g, gamma: float, min_size: int = 3) -> Set[Tuple[int, ...]]:
    """Brute-force oracle: test every vertex subset (tiny graphs only)."""
    from itertools import combinations

    adj = _adj_sets(g)
    verts = sorted(adj)
    if len(verts) > 16:
        raise ValueError("reference oracle is exponential; use <= 16 vertices")
    qcs: Set[FrozenSet[int]] = set()
    for size in range(min_size, len(verts) + 1):
        for combo in combinations(verts, size):
            if is_quasi_clique(g, combo, gamma):
                qcs.add(frozenset(combo))
    maximal = {
        q for q in qcs
        if not any(q < other for other in qcs)
    }
    return {tuple(sorted(q)) for q in maximal}
