"""Serial triangle counting and listing.

Triangle counting (TC) is one of the paper's three evaluation
applications.  The serial kernel here is the standard forward /
edge-iterator algorithm on :math:`\\Gamma_{>}` adjacency: a triangle
``{u, v, w}`` with ``u < v < w`` is counted exactly once, at ``u``, as
``|Gamma_>(u) ∩ Gamma_>(v)|`` for each ``v ∈ Gamma_>(u)``.  Complexity
is the paper's quoted :math:`O(|E|^{1.5})` on bounded-arboricity graphs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from ..graph import kernels
from ..graph.graph import Graph

__all__ = [
    "count_triangles",
    "list_triangles",
    "count_triangles_from_gt",
    "local_triangle_counts",
]


def _gt_adjacency(g) -> Dict[int, np.ndarray]:
    """``Γ_>`` rows as sorted int64 ndarrays (views where possible)."""
    if isinstance(g, Graph):
        return {v: g.neighbors_gt_array(v) for v in g.vertices()}
    return {
        v: kernels.suffix_gt(kernels.as_ids_array(tuple(a)), v)
        for v, a in g.items()
    }


def count_triangles_from_gt(gt_adj: Mapping[int, Sequence[int]]) -> int:
    """Count triangles given pre-trimmed ``Gamma_>`` adjacency.

    This is exactly the per-task work a G-thinker TC task performs after
    the Trimmer has reduced every adjacency list to its larger-id suffix.
    ``gt_adj`` rows may be tuples or ndarrays; counting runs on the
    vectorized kernels either way.
    """
    rows = {v: kernels.as_ids_array(a) for v, a in gt_adj.items()}
    empty = np.empty(0, dtype=np.int64)
    total = 0
    for u, nbrs in rows.items():
        if nbrs.size < 1:
            continue
        # One fused kernel call per vertex: |Γ_>(u) ∩ Γ_>(v)| summed over
        # all v in Γ_>(u), no intermediate intersections materialized.
        total += kernels.intersect_count_many(
            nbrs, [rows.get(int(v), empty) for v in nbrs]
        )
    return total


def count_triangles(g) -> int:
    """Count all triangles of an undirected graph exactly once each."""
    return count_triangles_from_gt(_gt_adjacency(g))


def list_triangles(g) -> Iterator[Tuple[int, int, int]]:
    """Yield every triangle as an ordered tuple ``(u, v, w)``, ``u < v < w``."""
    gt = _gt_adjacency(g)
    for u in sorted(gt):
        nbrs = gt[u]
        for v in nbrs.tolist():
            other = gt.get(v)
            if other is None or not other.size:
                continue
            for w in kernels.intersect(nbrs, other).tolist():
                yield (u, v, w)


def local_triangle_counts(g) -> Dict[int, int]:
    """Per-vertex triangle participation counts (oracle for aggregators)."""
    counts: Dict[int, int] = {}
    if isinstance(g, Graph):
        vertices = list(g.vertices())
    else:
        vertices = list(g)
    for v in vertices:
        counts[v] = 0
    for u, v, w in list_triangles(g):
        counts[u] += 1
        counts[v] += 1
        counts[w] += 1
    return counts
