"""Serial triangle counting and listing.

Triangle counting (TC) is one of the paper's three evaluation
applications.  The serial kernel here is the standard forward /
edge-iterator algorithm on :math:`\\Gamma_{>}` adjacency: a triangle
``{u, v, w}`` with ``u < v < w`` is counted exactly once, at ``u``, as
``|Gamma_>(u) ∩ Gamma_>(v)|`` for each ``v ∈ Gamma_>(u)``.  Complexity
is the paper's quoted :math:`O(|E|^{1.5})` on bounded-arboricity graphs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from ..graph.graph import Graph, adjacency_suffix_gt, intersect_sorted, intersect_sorted_count

__all__ = [
    "count_triangles",
    "list_triangles",
    "count_triangles_from_gt",
    "local_triangle_counts",
]


def _gt_adjacency(g) -> Dict[int, Tuple[int, ...]]:
    if isinstance(g, Graph):
        return {v: g.neighbors_gt(v) for v in g.vertices()}
    return {v: adjacency_suffix_gt(tuple(a), v) for v, a in g.items()}


def count_triangles_from_gt(gt_adj: Mapping[int, Sequence[int]]) -> int:
    """Count triangles given pre-trimmed ``Gamma_>`` adjacency.

    This is exactly the per-task work a G-thinker TC task performs after
    the Trimmer has reduced every adjacency list to its larger-id suffix.
    """
    total = 0
    for u, nbrs in gt_adj.items():
        for v in nbrs:
            other = gt_adj.get(v)
            if other:
                total += intersect_sorted_count(nbrs, other)
    return total


def count_triangles(g) -> int:
    """Count all triangles of an undirected graph exactly once each."""
    return count_triangles_from_gt(_gt_adjacency(g))


def list_triangles(g) -> Iterator[Tuple[int, int, int]]:
    """Yield every triangle as an ordered tuple ``(u, v, w)``, ``u < v < w``."""
    gt = _gt_adjacency(g)
    for u in sorted(gt):
        nbrs = gt[u]
        for v in nbrs:
            other = gt.get(v)
            if not other:
                continue
            for w in intersect_sorted(nbrs, other):
                yield (u, v, w)


def local_triangle_counts(g) -> Dict[int, int]:
    """Per-vertex triangle participation counts (oracle for aggregators)."""
    counts: Dict[int, int] = {}
    if isinstance(g, Graph):
        vertices = list(g.vertices())
    else:
        vertices = list(g)
    for v in vertices:
        counts[v] = 0
    for u, v, w in list_triangles(g):
        counts[u] += 1
        counts[v] += 1
        counts[w] += 1
    return counts
