"""The set-enumeration tree of Fig. 1.

Subgraph mining's search space — the power set of ``V`` — is organized
as a set-enumeration tree: node ``S`` is extended only by vertices
larger than ``max(S)``, so every subset appears exactly once.  G-thinker
tasks correspond to tree nodes; task decomposition walks one level down.

This module is the didactic core used by tests and examples to validate
the divide-and-conquer identities the whole system rests on:

* every subset of ``V`` appears exactly once in the tree;
* the children of ``S`` partition the subsets that strictly extend ``S``
  with larger ids.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

__all__ = ["children", "enumerate_subsets", "subtree_size", "clique_children"]


def children(s: Sequence[int], universe: Sequence[int]) -> List[Tuple[int, ...]]:
    """The child nodes of ``S`` in the set-enumeration tree over ``universe``."""
    last = max(s) if s else None
    out = []
    for v in universe:
        if last is None or v > last:
            out.append(tuple(sorted(set(s) | {v})))
    return out


def enumerate_subsets(universe: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """Depth-first traversal of the tree: every non-empty subset once."""
    universe = sorted(universe)

    def walk(s: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
        for child in children(s, universe):
            yield child
            yield from walk(child)

    yield from walk(())


def subtree_size(s: Sequence[int], universe: Sequence[int]) -> int:
    """Number of tree nodes in the subtree rooted at ``S`` (including it)."""
    last = max(s) if s else -float("inf")
    extendable = sum(1 for v in universe if v > last)
    return 2 ** extendable


def clique_children(
    s: Sequence[int], ext: Sequence[int], adjacency
) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Clique-pruned decomposition: ``(S ∪ u, Gamma_>(S ∪ u))`` per ``u ∈ ext``.

    ``ext`` must be ``Gamma_>(S)`` (common larger-id neighbors of ``S``);
    each child's extension set is ``ext ∩ Gamma_>(u)``, exactly the
    paper's recursive task decomposition for maximum clique (Sec. IV).
    """
    out = []
    ext = sorted(ext)
    for i, u in enumerate(ext):
        nbrs = set(adjacency[u])
        child_ext = tuple(w for w in ext[i + 1:] if w in nbrs)
        out.append((tuple(sorted(set(s) | {u})), child_ext))
    return out
