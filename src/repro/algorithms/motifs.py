"""Small-motif counting kernels (wedges, squares, 4-cliques, diamonds).

Subgraph-mining papers (and the G-thinker artifact's sample apps) lean
on a standard family of 3- and 4-vertex motif counts.  These serial
kernels complement :mod:`repro.algorithms.triangles`:

* :func:`count_wedges` — paths of length 2 (the TC denominator in the
  global clustering coefficient);
* :func:`clustering_coefficient` — 3·triangles / wedges;
* :func:`count_squares` — chordless or not, 4-cycles counted once;
* :func:`count_four_cliques` — K4 instances via triangle extension;
* :func:`count_diamonds` — K4 minus one edge.

All are exact and oracle-tested against brute force / networkx; the
square and 4-clique counters follow the usual ordered-enumeration
schemes so each instance is counted exactly once.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, Tuple

from ..graph import kernels
from ..graph.graph import Graph
from .triangles import count_triangles, list_triangles

__all__ = [
    "count_wedges",
    "clustering_coefficient",
    "count_squares",
    "count_four_cliques",
    "count_diamonds",
    "motif_census",
]


def count_wedges(g: Graph) -> int:
    """Number of paths of length two (centered at each vertex: C(d, 2))."""
    return sum(d * (d - 1) // 2 for d in (g.degree(v) for v in g.vertices()))


def clustering_coefficient(g: Graph) -> float:
    """Global (transitivity-style) clustering: 3·triangles / wedges."""
    wedges = count_wedges(g)
    if wedges == 0:
        return 0.0
    return 3.0 * count_triangles(g) / wedges


def count_squares(g: Graph) -> int:
    """Count 4-cycles, each exactly once.

    Standard wedge-pairing: for each ordered pair of distinct vertices
    ``(u, w)`` the number of common neighbors ``c`` closes
    ``C(c, 2)`` four-cycles through that pair; every 4-cycle has exactly
    two opposite pairs, so summing over unordered pairs and halving...
    we instead sum ``C(c, 2)`` over unordered non-adjacent *and*
    adjacent pairs alike and divide by 2, the textbook identity.
    """
    total = 0
    vertices = g.sorted_vertices()
    for i, u in enumerate(vertices):
        nu = g.neighbors_array(u)
        for w in vertices[i + 1:]:
            c = kernels.intersect_count(nu, g.neighbors_array(w))
            total += c * (c - 1) // 2
    return total // 2


def count_four_cliques(g: Graph) -> int:
    """Count K4 subgraphs: for each triangle (u<v<w), common neighbors
    larger than w extend it; each K4 is counted at its three smallest
    members exactly once."""
    total = 0
    for (u, v, w) in list_triangles(g):
        common = kernels.intersect_many(
            (g.neighbors_array(u), g.neighbors_array(v), g.neighbors_array(w))
        )
        total += int((common > w).sum())
    return total


def count_diamonds(g: Graph) -> int:
    """Count diamonds (K4 minus an edge), each exactly once.

    A diamond is two triangles sharing an edge: for each edge (u, v)
    with ``c`` common neighbors, ``C(c, 2)`` diamonds have (u, v) as the
    shared edge — but C(c,2) pairs that are themselves adjacent form a
    K4, which contains the diamond pattern only as a subgraph with a
    missing edge, so adjacent pairs are excluded.
    """
    total = 0
    for (u, v) in g.edges():
        common = kernels.intersect(g.neighbors_array(u), g.neighbors_array(v))
        for a, b in combinations(common.tolist(), 2):
            if not g.has_edge(a, b):
                total += 1
    return total


def motif_census(g: Graph) -> Dict[str, float]:
    """All of the above in one report."""
    return {
        "wedges": count_wedges(g),
        "triangles": count_triangles(g),
        "clustering": clustering_coefficient(g),
        "squares": count_squares(g),
        "four_cliques": count_four_cliques(g),
        "diamonds": count_diamonds(g),
    }
