"""Serial clique algorithms.

Two roles in the reproduction:

* :func:`max_clique` is the serial branch-and-bound miner that a
  G-thinker task runs on its materialized subgraph ``t.g`` once the
  subgraph is small enough (Fig. 5 line 12 — "run serial algorithm on
  t.g, with current maximum clique size = |S_max| - |t.S|").  It follows
  the classic Carraghan–Pardalos / [31]-style search: greedy coloring
  upper bound plus incumbent pruning seeded from the aggregator.
* :func:`enumerate_maximal_cliques` (Bron–Kerbosch with pivoting) and
  :func:`max_clique_reference` are independent oracles used by tests.

All functions operate on plain ``{v: sorted tuple}`` adjacency mappings
so tasks can call them on locally materialized subgraphs without
round-tripping through :class:`repro.graph.Graph`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph import kernels
from ..graph.graph import Graph

__all__ = [
    "max_clique",
    "max_clique_reference",
    "enumerate_maximal_cliques",
    "greedy_coloring_bound",
    "AdjMap",
]

AdjMap = Mapping[int, Sequence[int]]


def _as_adj(g) -> Dict[int, Tuple[int, ...]]:
    if isinstance(g, Graph):
        return g.adjacency()
    return {v: tuple(a) for v, a in g.items()}


def _color_positions(order: np.ndarray, rows: Sequence[np.ndarray],
                     color: np.ndarray) -> int:
    """Greedy-color vertices (as dense positions) in the given order.

    ``rows[i]`` lists the in-scope neighbor positions of vertex ``i``;
    ``color`` is a scratch array pre-filled with -1 whose touched slots
    are reset before returning.  Each vertex takes the smallest color
    absent among its already-colored neighbors (vectorized mex).
    """
    max_color = 0
    for i in order:
        nbr_colors = color[rows[i]]
        used = nbr_colors[nbr_colors >= 0]
        if used.size == 0:
            c = 0
        else:
            seen = np.zeros(used.size + 1, dtype=bool)
            seen[used[used <= used.size]] = True
            c = int(np.argmin(seen))
        color[i] = c
        if c + 1 > max_color:
            max_color = c + 1
    color[order] = -1
    return max_color


def greedy_coloring_bound(vertices: Sequence[int], adj: AdjMap) -> int:
    """A greedy-coloring upper bound on the clique number of the induced graph.

    Any clique needs one color per member, so the number of colors used
    by *any* proper coloring bounds the maximum clique size from above.
    Vertices are colored in descending full-degree order; the per-vertex
    "smallest free color" scan is vectorized over numpy arrays.
    """
    verts = list(vertices)
    if not verts:
        return 0
    pos = {v: i for i, v in enumerate(verts)}
    rows = [
        np.fromiter((pos[u] for u in adj.get(v, ()) if u in pos),
                    dtype=np.int64)
        for v in verts
    ]
    full_degs = np.fromiter((len(adj.get(v, ())) for v in verts),
                            dtype=np.int64, count=len(verts))
    order = np.argsort(-full_degs, kind="stable")
    color = np.full(len(verts), -1, dtype=np.int64)
    return _color_positions(order, rows, color)


#: Below this vertex count the branch-and-bound runs on python-int
#: bitmasks instead of ndarray kernels: candidate sets fit in one or two
#: machine words, where a single ``&`` beats any vectorized intersection
#: call.  Decomposed G-thinker tasks (|V(t.g)| <= tau) live here.
_BITSET_MAX = 128


def _max_clique_bitset(rows: List[int], n: int, lower_bound: int) -> List[int]:
    """Branch-and-bound over bitmask candidate sets (positions 0..n-1).

    Mirrors the ndarray search below: candidates are consumed highest
    position first so the remaining mask is exactly ``candidates[:i]``,
    with the same popcount and greedy-coloring bounds.
    """
    best: List[int] = []
    best_size = max(lower_bound, 0)

    def bound(cand: int) -> int:
        # Greedy coloring: peel one independent set (color class) per
        # round; the number of rounds bounds the clique size.
        ncol = 0
        while cand:
            ncol += 1
            q = cand
            while q:
                b = q & -q
                q &= ~rows[b.bit_length() - 1]
                q ^= b
                cand ^= b
        return ncol

    def expand(members: List[int], cand: int) -> None:
        nonlocal best, best_size
        if not cand:
            if len(members) > best_size:
                best_size = len(members)
                best = members.copy()
            return
        if len(members) + cand.bit_count() <= best_size:
            return
        if len(members) + bound(cand) <= best_size:
            return
        while cand:
            if len(members) + cand.bit_count() <= best_size:
                break
            p = cand.bit_length() - 1
            cand ^= 1 << p
            members.append(p)
            expand(members, cand & rows[p])
            members.pop()

    expand([], (1 << n) - 1)
    return best


def max_clique(
    g,
    lower_bound: int = 0,
    initial: Sequence[int] = (),
) -> Tuple[int, ...]:
    """Find a maximum clique of ``g`` by branch-and-bound.

    Parameters
    ----------
    g:
        A :class:`~repro.graph.Graph` or a ``{v: sorted adjacency}``
        mapping.
    lower_bound:
        A clique size already known to exist *elsewhere* (the paper's
        :math:`\\Delta = |S_{max}| - |t.S|` pruning seed).  The search
        only reports cliques strictly larger than this; if none exists
        the empty tuple is returned.
    initial:
        Vertices assumed already in the clique (not part of ``g``);
        only used to bias nothing — kept for signature parity with the
        task-level caller which handles ``t.S`` itself.

    Returns
    -------
    The vertex tuple of the best clique found that beats ``lower_bound``,
    or ``()`` if the bound cannot be beaten.
    """
    adj = _as_adj(g)
    if not adj:
        return ()
    best: List[int] = []
    best_size = max(lower_bound, 0)

    # Order candidates by degeneracy-ish heuristic: ascending degree for
    # the outer loop gives small candidate sets early (cheap) and leaves
    # the dense core for last, when the incumbent already prunes hard.
    # Vertices are then remapped to dense positions in that order so the
    # whole search runs on sorted int64 position arrays and the candidate
    # narrowing is a vectorized kernel intersection.
    order = sorted(adj, key=lambda v: len(adj[v]))
    n = len(order)
    pos = {v: i for i, v in enumerate(order)}

    if n <= _BITSET_MAX:
        compiled_bb = kernels.compiled_kernel("bitset_max_clique")
        if compiled_bb is not None:
            # Compiled core: same search (highest-candidate-first DFS,
            # popcount + greedy-coloring bounds) on packed uint64 words.
            rows_pos = [
                np.fromiter((pos[u] for u in adj[v] if u in pos),
                            dtype=np.int64)
                for v in order
            ]
            words = kernels.pack_rows(rows_pos, n)
            best = [int(p) for p in compiled_bb(words, best_size)]
        else:
            masks = [0] * n
            for i, v in enumerate(order):
                m = 0
                for u in adj[v]:
                    j = pos.get(u)
                    if j is not None:
                        m |= 1 << j
                masks[i] = m
            best = _max_clique_bitset(masks, n, best_size)
        if len(best) > max(lower_bound, 0) or (lower_bound <= 0 and best):
            return tuple(sorted(int(order[p]) for p in best))
        return ()

    rows: List[np.ndarray] = [
        np.sort(np.fromiter((pos[u] for u in adj[v] if u in pos),
                            dtype=np.int64))
        for v in order
    ]
    full_degs = np.fromiter((len(adj[v]) for v in order), dtype=np.int64,
                            count=n)
    color_scratch = np.full(n, -1, dtype=np.int64)

    def bound(candidates: np.ndarray) -> int:
        # Greedy-coloring upper bound on the candidates' induced graph,
        # reusing the shared scratch array (reset inside).
        corder = candidates[np.argsort(-full_degs[candidates],
                                       kind="stable")]
        return _color_positions(corder, rows, color_scratch)

    def expand(clique: List[int], candidates: np.ndarray) -> None:
        nonlocal best, best_size
        if candidates.size == 0:
            if len(clique) > best_size:
                best_size = len(clique)
                best = list(clique)
            return
        if len(clique) + candidates.size <= best_size:
            return
        if len(clique) + bound(candidates) <= best_size:
            return
        # Iterate candidates in reverse outer order so the candidate set
        # shrinks monotonically (set-enumeration style, Fig. 1).
        for i in range(candidates.size - 1, -1, -1):
            if len(clique) + i + 1 <= best_size:
                break
            p = int(candidates[i])
            clique.append(p)
            expand(clique, kernels.intersect(candidates[:i], rows[p]))
            clique.pop()

    expand([], np.arange(n, dtype=np.int64))
    if best_size > max(lower_bound, 0) or (lower_bound <= 0 and best):
        return tuple(sorted(int(order[p]) for p in best))
    return ()


def enumerate_maximal_cliques(g) -> Iterator[Tuple[int, ...]]:
    """Bron–Kerbosch with pivoting; yields each maximal clique once.

    Used as an oracle and by the Arabesque-style baseline's validation
    path.  Iterative-friendly recursion depth: bounded by the graph's
    degeneracy, fine for our test sizes.
    """
    adj = {v: set(a) for v, a in _as_adj(g).items()}

    def bk(r: Set[int], p: Set[int], x: Set[int]) -> Iterator[Tuple[int, ...]]:
        if not p and not x:
            yield tuple(sorted(r))
            return
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda u: len(adj[u] & p))
        for v in list(p - adj[pivot]):
            yield from bk(r | {v}, p & adj[v], x & adj[v])
            p.remove(v)
            x.add(v)

    yield from bk(set(), set(adj), set())


def max_clique_reference(g) -> Tuple[int, ...]:
    """Oracle maximum clique via full Bron–Kerbosch enumeration."""
    best: Tuple[int, ...] = ()
    for c in enumerate_maximal_cliques(g):
        if len(c) > len(best):
            best = c
    return best
