"""Serial clique algorithms.

Two roles in the reproduction:

* :func:`max_clique` is the serial branch-and-bound miner that a
  G-thinker task runs on its materialized subgraph ``t.g`` once the
  subgraph is small enough (Fig. 5 line 12 — "run serial algorithm on
  t.g, with current maximum clique size = |S_max| - |t.S|").  It follows
  the classic Carraghan–Pardalos / [31]-style search: greedy coloring
  upper bound plus incumbent pruning seeded from the aggregator.
* :func:`enumerate_maximal_cliques` (Bron–Kerbosch with pivoting) and
  :func:`max_clique_reference` are independent oracles used by tests.

All functions operate on plain ``{v: sorted tuple}`` adjacency mappings
so tasks can call them on locally materialized subgraphs without
round-tripping through :class:`repro.graph.Graph`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..graph.graph import Graph, intersect_sorted

__all__ = [
    "max_clique",
    "max_clique_reference",
    "enumerate_maximal_cliques",
    "greedy_coloring_bound",
    "AdjMap",
]

AdjMap = Mapping[int, Sequence[int]]


def _as_adj(g) -> Dict[int, Tuple[int, ...]]:
    if isinstance(g, Graph):
        return g.adjacency()
    return {v: tuple(a) for v, a in g.items()}


def greedy_coloring_bound(vertices: Sequence[int], adj: AdjMap) -> int:
    """A greedy-coloring upper bound on the clique number of the induced graph.

    Any clique needs one color per member, so the number of colors used
    by *any* proper coloring bounds the maximum clique size from above.
    """
    color: Dict[int, int] = {}
    vset = set(vertices)
    max_color = 0
    for v in sorted(vertices, key=lambda x: -len(adj.get(x, ()))):
        used = {color[u] for u in adj.get(v, ()) if u in vset and u in color}
        c = 0
        while c in used:
            c += 1
        color[v] = c
        max_color = max(max_color, c + 1)
    return max_color


def max_clique(
    g,
    lower_bound: int = 0,
    initial: Sequence[int] = (),
) -> Tuple[int, ...]:
    """Find a maximum clique of ``g`` by branch-and-bound.

    Parameters
    ----------
    g:
        A :class:`~repro.graph.Graph` or a ``{v: sorted adjacency}``
        mapping.
    lower_bound:
        A clique size already known to exist *elsewhere* (the paper's
        :math:`\\Delta = |S_{max}| - |t.S|` pruning seed).  The search
        only reports cliques strictly larger than this; if none exists
        the empty tuple is returned.
    initial:
        Vertices assumed already in the clique (not part of ``g``);
        only used to bias nothing — kept for signature parity with the
        task-level caller which handles ``t.S`` itself.

    Returns
    -------
    The vertex tuple of the best clique found that beats ``lower_bound``,
    or ``()`` if the bound cannot be beaten.
    """
    adj = _as_adj(g)
    if not adj:
        return ()
    best: List[int] = []
    best_size = max(lower_bound, 0)

    # Order candidates by degeneracy-ish heuristic: ascending degree for
    # the outer loop gives small candidate sets early (cheap) and leaves
    # the dense core for last, when the incumbent already prunes hard.
    order = sorted(adj, key=lambda v: len(adj[v]))
    position = {v: i for i, v in enumerate(order)}

    def expand(clique: List[int], candidates: List[int]) -> None:
        nonlocal best, best_size
        if not candidates:
            if len(clique) > best_size:
                best_size = len(clique)
                best = list(clique)
            return
        if len(clique) + len(candidates) <= best_size:
            return
        if len(clique) + greedy_coloring_bound(candidates, adj) <= best_size:
            return
        # Iterate candidates in reverse outer order so the candidate set
        # shrinks monotonically (set-enumeration style, Fig. 1).
        for i in range(len(candidates) - 1, -1, -1):
            if len(clique) + i + 1 <= best_size:
                break
            v = candidates[i]
            clique.append(v)
            nbrs = set(adj[v])
            nxt = [u for u in candidates[:i] if u in nbrs]
            expand(clique, nxt)
            clique.pop()

    ordered = sorted(adj, key=lambda v: position[v])
    expand([], ordered)
    if best_size > max(lower_bound, 0) or (lower_bound <= 0 and best):
        return tuple(sorted(best))
    return ()


def enumerate_maximal_cliques(g) -> Iterator[Tuple[int, ...]]:
    """Bron–Kerbosch with pivoting; yields each maximal clique once.

    Used as an oracle and by the Arabesque-style baseline's validation
    path.  Iterative-friendly recursion depth: bounded by the graph's
    degeneracy, fine for our test sizes.
    """
    adj = {v: set(a) for v, a in _as_adj(g).items()}

    def bk(r: Set[int], p: Set[int], x: Set[int]) -> Iterator[Tuple[int, ...]]:
        if not p and not x:
            yield tuple(sorted(r))
            return
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda u: len(adj[u] & p))
        for v in list(p - adj[pivot]):
            yield from bk(r | {v}, p & adj[v], x & adj[v])
            p.remove(v)
            x.add(v)

    yield from bk(set(), set(adj), set())


def max_clique_reference(g) -> Tuple[int, ...]:
    """Oracle maximum clique via full Bron–Kerbosch enumeration."""
    best: Tuple[int, ...] = ()
    for c in enumerate_maximal_cliques(g):
        if len(c) > len(best):
            best = c
    return best
