"""Vectorized sorted-array kernels for the NumPy-native adjacency path.

Every adjacency list on the hot path is a sorted, duplicate-free
``numpy.ndarray`` of ``int64`` vertex ids (a zero-copy view into a
``SharedCSR`` partition for local vertices, an owned array for remote
ones).  The mining inner loops — triangle counting, clique expansion,
subgraph-matching candidate generation — all reduce to intersections of
such arrays, so this module is the single place they are implemented.

Two strategies, auto-selected by :func:`intersect` / :func:`intersect_count`:

* **merge** when the inputs are comparably sized: concatenate and
  stable-sort, then keep adjacent duplicates.  The concatenation of two
  sorted arrays is exactly two pre-sorted runs, which numpy's stable
  sort (timsort) merges in O(|a| + |b|) — measurably faster than
  ``np.intersect1d``'s quicksort, which cannot exploit the runs.
* **gallop** (``np.searchsorted`` of the smaller array into the larger)
  when ``|b| >= GALLOP_RATIO * |a|`` — O(|a| log |b|), the galloping
  search the TODO in :mod:`repro.graph.graph` asked for.  This is the
  common shape in degree-skewed graphs where a low-degree frontier is
  intersected against a hub's adjacency.

The pure-Python ``intersect_sorted`` / ``intersect_sorted_count`` /
``adjacency_suffix_gt`` in :mod:`repro.graph.graph` are kept unchanged as
the reference oracles; ``tests/test_kernels.py`` checks every kernel here
against them on randomized inputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

__all__ = [
    "GALLOP_RATIO",
    "IdArray",
    "as_ids_array",
    "intersect",
    "intersect_count",
    "intersect_gallop",
    "intersect_many",
    "intersect_merge",
    "suffix_gt",
]

IdArray = np.ndarray
AdjLike = Union[np.ndarray, Sequence[int]]

#: Switch from the linear merge to the galloping (binary-search) kernel
#: when the larger input is at least this many times the smaller one.
GALLOP_RATIO = 8

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.flags.writeable = False


def as_ids_array(adj: AdjLike) -> IdArray:
    """Return ``adj`` as an int64 ndarray, zero-copy when already one.

    Tuples/lists of python ints (the legacy representation, still
    accepted everywhere for compatibility) are converted; arrays of the
    right dtype pass through untouched so views into ``SharedCSR``
    partitions keep sharing memory.
    """
    if isinstance(adj, np.ndarray):
        if adj.dtype == np.int64:
            return adj
        return adj.astype(np.int64)
    return np.asarray(adj, dtype=np.int64)


def _gallop_mask(small: IdArray, large: IdArray) -> np.ndarray:
    """Boolean mask over ``small`` marking elements present in ``large``.

    Both inputs must be sorted.  ``searchsorted`` finds each candidate's
    insertion point in one vectorized pass; clipping the out-of-range
    index to the last slot is safe because an element beyond ``large[-1]``
    can never compare equal to it.
    """
    idx = np.searchsorted(large, small)
    idx_clipped = np.minimum(idx, large.size - 1)
    return (large[idx_clipped] == small) & (idx < large.size)


def _merge(a: IdArray, b: IdArray) -> IdArray:
    """Stable-sort merge: the concatenation is two sorted runs, which
    timsort detects and merges linearly; duplicates are then adjacent
    and (inputs being duplicate-free) mark exactly the intersection."""
    aux = np.concatenate((a, b))
    aux.sort(kind="stable")
    return aux[:-1][aux[1:] == aux[:-1]]


def intersect_merge(a: AdjLike, b: AdjLike) -> IdArray:
    """Linear-merge intersection of two sorted duplicate-free arrays."""
    a = as_ids_array(a)
    b = as_ids_array(b)
    if a.size == 0 or b.size == 0:
        return _EMPTY
    return _merge(a, b)


def intersect_gallop(a: AdjLike, b: AdjLike) -> IdArray:
    """Galloping intersection: binary-search the smaller into the larger."""
    a = as_ids_array(a)
    b = as_ids_array(b)
    if a.size > b.size:
        a, b = b, a
    if a.size == 0 or b.size == 0:
        return _EMPTY
    return a[_gallop_mask(a, b)]


def intersect(a: AdjLike, b: AdjLike) -> IdArray:
    """Sorted-array intersection, auto-selecting merge vs gallop.

    Returns a sorted int64 array.  The result is always a fresh (owned)
    array; inputs are never modified.
    """
    a = as_ids_array(a)
    b = as_ids_array(b)
    if a.size > b.size:
        a, b = b, a
    if a.size == 0:
        return _EMPTY
    if b.size >= GALLOP_RATIO * a.size:
        return a[_gallop_mask(a, b)]
    return _merge(a, b)


def intersect_count(a: AdjLike, b: AdjLike) -> int:
    """``len(intersect(a, b))`` without materializing the result.

    Same merge/gallop auto-selection as :func:`intersect`, but both
    paths end in ``count_nonzero`` on the equality mask — no output
    array is ever built.
    """
    a = as_ids_array(a)
    b = as_ids_array(b)
    if a.size > b.size:
        a, b = b, a
    if a.size == 0 or b.size == 0:
        return 0
    if b.size >= GALLOP_RATIO * a.size:
        return int(np.count_nonzero(_gallop_mask(a, b)))
    aux = np.concatenate((a, b))
    aux.sort(kind="stable")
    return int(np.count_nonzero(aux[1:] == aux[:-1]))


def intersect_many(arrays: Iterable[AdjLike]) -> IdArray:
    """Fold an intersection across a frontier of sorted arrays.

    Processes smallest-first so the running result shrinks as fast as
    possible, and bails out the moment it empties.  An empty iterable
    returns an empty array (there is no universe set to return).
    """
    arrs = sorted((as_ids_array(a) for a in arrays), key=lambda x: x.size)
    if not arrs:
        return _EMPTY
    acc = arrs[0]
    for nxt in arrs[1:]:
        if acc.size == 0:
            return _EMPTY
        acc = intersect(acc, nxt)
    return acc


def suffix_gt(adj: AdjLike, v: int) -> IdArray:
    """Slice of ``adj`` strictly greater than ``v`` (sorted input).

    For ndarray input this is a *view* — it shares memory with ``adj``,
    so trimming a ``SharedCSR`` row stays zero-copy.  Mirrors the
    pure-Python ``adjacency_suffix_gt`` oracle.
    """
    a = as_ids_array(adj)
    return a[int(np.searchsorted(a, v, side="right")):]
