"""Sorted-array mining kernels with pluggable backends (numpy / numba).

Every adjacency list on the hot path is a sorted, duplicate-free
``numpy.ndarray`` of ``int64`` vertex ids (a zero-copy view into a
``SharedCSR`` partition for local vertices, an owned array for remote
ones).  The mining inner loops — triangle counting, clique expansion,
subgraph-matching candidate generation — all reduce to intersections of
such arrays, so this module is the single place they are implemented.

Backends
--------
Two implementations of the dispatched kernel set exist:

* ``numpy`` — the vectorized implementations below.  Always available;
  the reference against which everything else is checked.
* ``numba`` — ``@njit(cache=True)`` compiled kernels in
  :mod:`repro.graph.kernels_compiled`, plus compiled extras (the bitset
  branch-and-bound core used by :func:`repro.algorithms.cliques.max_clique`).
  Available only when numba is importable; ``'auto'`` falls back to
  numpy silently.

Selection happens once at import from the ``REPRO_KERNEL_BACKEND``
environment variable (``auto`` when unset) and again per job from
``GThinkerConfig.kernel_backend`` (the environment variable wins — see
``GThinkerConfig.effective_kernel_backend``).  :func:`select_backend`
rebinds the dispatched module-level functions (``intersect``,
``intersect_count``, ``intersect_many``, ``intersect_count_many``,
``suffix_gt``, ``bitset_and_counts``) in place, so every call site that
does ``kernels.intersect(...)`` picks up the active backend with zero
added indirection.  The job records what actually ran under the
``kernels:backend:<name>`` metric.

Strategy auto-selection inside ``intersect`` / ``intersect_count``:

* **merge** when the inputs are comparably sized: for numpy, concatenate
  and stable-sort (timsort merges the two pre-sorted runs linearly); for
  numba, a two-pointer linear merge.
* **gallop** (binary-searching the smaller array into the larger) when
  ``|b| >= GALLOP_RATIO * |a|`` — O(|a| log |b|), the common shape in
  degree-skewed graphs where a low-degree frontier is intersected
  against a hub's adjacency.

``GALLOP_RATIO`` is re-derived per backend: the compiled linear merge is
much faster than numpy's sort-based one, so the crossover to galloping
moves out (8 for numpy, 32 for numba — re-measure with
``benchmarks/bench_scaling.py --calibrate``).

The pure-Python ``intersect_sorted`` / ``intersect_sorted_count`` /
``adjacency_suffix_gt`` in :mod:`repro.graph.graph` are kept unchanged as
the reference oracles; ``tests/test_kernels.py`` checks every kernel here
against them on randomized inputs under every available backend, and
``tests/test_kernels_property.py`` adds hypothesis property coverage.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "GALLOP_RATIO",
    "IdArray",
    "KernelBackendError",
    "as_ids_array",
    "available_backends",
    "bitset_and_counts",
    "compiled_kernel",
    "current_backend",
    "intersect",
    "intersect_count",
    "intersect_count_many",
    "intersect_gallop",
    "intersect_many",
    "intersect_merge",
    "pack_mask",
    "pack_rows",
    "select_backend",
    "suffix_gt",
]

IdArray = np.ndarray
AdjLike = Union[np.ndarray, Sequence[int]]

#: Switch from the linear merge to the galloping (binary-search) kernel
#: when the larger input is at least this many times the smaller one.
#: Rebound per backend by :func:`select_backend`.
GALLOP_RATIO = 8

#: Per-backend merge/gallop crossover, derived from the kernel
#: micro-benchmark (``bench_scaling.py --calibrate``): numpy's sort-based
#: merge loses to searchsorted early; the compiled two-pointer merge
#: stays ahead until much heavier skew.
GALLOP_RATIO_BY_BACKEND = {"numpy": 8, "numba": 32}

#: Backend names ``select_backend`` accepts (besides ``'auto'``).
BACKEND_NAMES = ("numpy", "numba")

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.flags.writeable = False


class KernelBackendError(RuntimeError):
    """An explicitly requested kernel backend cannot be used."""


def as_ids_array(adj: AdjLike) -> IdArray:
    """Return ``adj`` as an int64 ndarray, zero-copy when already one.

    Tuples/lists of python ints (the legacy representation, still
    accepted everywhere for compatibility) are converted; arrays of the
    right dtype pass through untouched so views into ``SharedCSR``
    partitions keep sharing memory.
    """
    if isinstance(adj, np.ndarray):
        if adj.dtype == np.int64:
            return adj
        return adj.astype(np.int64)
    return np.asarray(adj, dtype=np.int64)


# ---------------------------------------------------------------------------
# numpy backend
# ---------------------------------------------------------------------------


def _gallop_mask(small: IdArray, large: IdArray) -> np.ndarray:
    """Boolean mask over ``small`` marking elements present in ``large``.

    Both inputs must be sorted.  ``searchsorted`` finds each candidate's
    insertion point in one vectorized pass; clipping the out-of-range
    index to the last slot is safe because an element beyond ``large[-1]``
    can never compare equal to it.
    """
    idx = np.searchsorted(large, small)
    idx_clipped = np.minimum(idx, large.size - 1)
    return (large[idx_clipped] == small) & (idx < large.size)


def _merge(a: IdArray, b: IdArray) -> IdArray:
    """Stable-sort merge: the concatenation is two sorted runs, which
    timsort detects and merges linearly; duplicates are then adjacent
    and (inputs being duplicate-free) mark exactly the intersection."""
    aux = np.concatenate((a, b))
    aux.sort(kind="stable")
    return aux[:-1][aux[1:] == aux[:-1]]


def intersect_merge(a: AdjLike, b: AdjLike) -> IdArray:
    """Linear-merge intersection of two sorted duplicate-free arrays.

    Strategy-forcing numpy variant (backend-independent), kept public for
    crossover measurement and tests.
    """
    a = as_ids_array(a)
    b = as_ids_array(b)
    if a.size == 0 or b.size == 0:
        return _EMPTY
    return _merge(a, b)


def intersect_gallop(a: AdjLike, b: AdjLike) -> IdArray:
    """Galloping intersection: binary-search the smaller into the larger.

    Strategy-forcing numpy variant (backend-independent), kept public for
    crossover measurement and tests.
    """
    a = as_ids_array(a)
    b = as_ids_array(b)
    if a.size > b.size:
        a, b = b, a
    if a.size == 0 or b.size == 0:
        return _EMPTY
    return a[_gallop_mask(a, b)]


def _np_intersect(a: AdjLike, b: AdjLike) -> IdArray:
    """Sorted-array intersection, auto-selecting merge vs gallop.

    Returns a sorted int64 array.  The result is always a fresh (owned)
    array; inputs are never modified.
    """
    a = as_ids_array(a)
    b = as_ids_array(b)
    if a.size > b.size:
        a, b = b, a
    if a.size == 0:
        return _EMPTY
    if b.size >= GALLOP_RATIO * a.size:
        return a[_gallop_mask(a, b)]
    return _merge(a, b)


def _np_intersect_count(a: AdjLike, b: AdjLike) -> int:
    """``len(intersect(a, b))`` without materializing the result.

    Same merge/gallop auto-selection as :func:`intersect`, but both
    paths end in ``count_nonzero`` on the equality mask — no output
    array is ever built.
    """
    a = as_ids_array(a)
    b = as_ids_array(b)
    if a.size > b.size:
        a, b = b, a
    if a.size == 0 or b.size == 0:
        return 0
    if b.size >= GALLOP_RATIO * a.size:
        return int(np.count_nonzero(_gallop_mask(a, b)))
    aux = np.concatenate((a, b))
    aux.sort(kind="stable")
    return int(np.count_nonzero(aux[1:] == aux[:-1]))


def _np_intersect_many(arrays: Iterable[AdjLike]) -> IdArray:
    """Fold an intersection across a frontier of sorted arrays.

    Conversion is streamed: the moment any input is empty the fold bails
    out *before* materializing the remaining inputs (an empty member
    empties the whole intersection).  The survivors are processed
    smallest-first so the running result shrinks as fast as possible.
    An empty iterable returns an empty array (there is no universe set
    to return).
    """
    arrs = []
    for a in arrays:
        arr = as_ids_array(a)
        if arr.size == 0:
            return _EMPTY
        arrs.append(arr)
    if not arrs:
        return _EMPTY
    arrs.sort(key=lambda x: x.size)
    acc = arrs[0]
    for nxt in arrs[1:]:
        acc = _np_intersect(acc, nxt)
        if acc.size == 0:
            return _EMPTY
    return acc


def _np_intersect_count_many(a: AdjLike, arrays: Iterable[AdjLike]) -> int:
    """Fused ``sum(intersect_count(a, b) for b in arrays)``.

    The triangle-counting inner loop: one fixed row ``a`` intersected
    against a frontier of rows, never materializing any intersection.
    The ``a``-side normalization is hoisted out of the loop.
    """
    a = as_ids_array(a)
    if a.size == 0:
        return 0
    total = 0
    for b in arrays:
        b = as_ids_array(b)
        if b.size == 0:
            continue
        small, large = (a, b) if a.size <= b.size else (b, a)
        if large.size >= GALLOP_RATIO * small.size:
            total += int(np.count_nonzero(_gallop_mask(small, large)))
        else:
            aux = np.concatenate((small, large))
            aux.sort(kind="stable")
            total += int(np.count_nonzero(aux[1:] == aux[:-1]))
    return total


def _np_suffix_gt(adj: AdjLike, v: int) -> IdArray:
    """Slice of ``adj`` strictly greater than ``v`` (sorted input).

    For ndarray input this is a *view* — it shares memory with ``adj``,
    so trimming a ``SharedCSR`` row stays zero-copy.  Mirrors the
    pure-Python ``adjacency_suffix_gt`` oracle.
    """
    a = as_ids_array(adj)
    return a[int(np.searchsorted(a, v, side="right")):]


# ---------------------------------------------------------------------------
# Bitset packing (shared) + popcount kernels (dispatched)
# ---------------------------------------------------------------------------

_WORD_BITS = 64

# 16-bit popcount lookup, shared with the compiled backend (numba indexes
# it as a global) and the pre-numpy-2.0 fallback below.
_POPCOUNT16 = np.array([bin(i).count("1") for i in range(1 << 16)],
                       dtype=np.int64)


def bitset_words(n: int) -> int:
    """Number of uint64 words needed for an ``n``-bit set."""
    return (int(n) + _WORD_BITS - 1) // _WORD_BITS


def pack_mask(positions: AdjLike, n: int) -> np.ndarray:
    """Pack dense positions (``0 <= p < n``) into a ``(W,)`` uint64 bitset."""
    words = np.zeros(bitset_words(n), dtype=np.uint64)
    pos = as_ids_array(positions)
    if pos.size:
        np.bitwise_or.at(
            words, pos >> 6,
            np.uint64(1) << (pos.astype(np.uint64) & np.uint64(63)),
        )
    return words


def pack_rows(rows: Sequence[AdjLike], n: int) -> np.ndarray:
    """Pack per-vertex position rows into an ``(len(rows), W)`` bitset matrix."""
    out = np.zeros((len(rows), bitset_words(n)), dtype=np.uint64)
    for i, row in enumerate(rows):
        pos = as_ids_array(row)
        if pos.size:
            np.bitwise_or.at(
                out[i], pos >> 6,
                np.uint64(1) << (pos.astype(np.uint64) & np.uint64(63)),
            )
    return out


if hasattr(np, "bitwise_count"):
    def _np_popcount_words(words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words).astype(np.int64)
else:  # pragma: no cover - numpy < 2.0
    def _np_popcount_words(words: np.ndarray) -> np.ndarray:
        m16 = np.uint64(0xFFFF)
        return (
            _POPCOUNT16[(words & m16).astype(np.int64)]
            + _POPCOUNT16[((words >> np.uint64(16)) & m16).astype(np.int64)]
            + _POPCOUNT16[((words >> np.uint64(32)) & m16).astype(np.int64)]
            + _POPCOUNT16[(words >> np.uint64(48)).astype(np.int64)]
        )


def _np_bitset_and_counts(rows_words: np.ndarray, mask_words: np.ndarray) -> np.ndarray:
    """Per-row ``popcount(row & mask)`` over packed bitsets.

    The quasi-clique bound computation: given the packed adjacency rows
    of k vertices and a packed member/candidate mask, return the k
    in-set degrees in one shot.
    """
    if rows_words.ndim == 1:
        rows_words = rows_words[None, :]
    return _np_popcount_words(rows_words & mask_words).sum(axis=1)


# ---------------------------------------------------------------------------
# Backend registry / dispatch
# ---------------------------------------------------------------------------

#: Module-level names rebound by :func:`select_backend`.
DISPATCHED_KERNELS = (
    "intersect",
    "intersect_count",
    "intersect_many",
    "intersect_count_many",
    "suffix_gt",
    "bitset_and_counts",
)

_NUMPY_KERNELS: Dict[str, Callable] = {
    "intersect": _np_intersect,
    "intersect_count": _np_intersect_count,
    "intersect_many": _np_intersect_many,
    "intersect_count_many": _np_intersect_count_many,
    "suffix_gt": _np_suffix_gt,
    "bitset_and_counts": _np_bitset_and_counts,
}

_BACKEND_NAME = "numpy"
#: Backend-only extras (e.g. ``bitset_max_clique``); empty on numpy.
_COMPILED_EXTRAS: Dict[str, Callable] = {}

# Default bindings so the module is usable even if select_backend is
# bypassed; overwritten immediately by the bottom-of-module selection.
intersect = _np_intersect
intersect_count = _np_intersect_count
intersect_many = _np_intersect_many
intersect_count_many = _np_intersect_count_many
suffix_gt = _np_suffix_gt
bitset_and_counts = _np_bitset_and_counts


def _numba_importable() -> bool:
    try:
        import importlib.util

        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic envs
        return False


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this environment (``numpy`` always is)."""
    names = ["numpy"]
    if _numba_importable():
        names.append("numba")
    return tuple(names)


def current_backend() -> str:
    """Name of the backend the dispatched kernels are bound to."""
    return _BACKEND_NAME


def compiled_kernel(name: str) -> Optional[Callable]:
    """A backend extra (e.g. ``'bitset_max_clique'``), or None.

    Extras exist only on compiled backends; callers keep their pure
    path as the fallback and oracle.
    """
    return _COMPILED_EXTRAS.get(name)


def select_backend(name: str = "auto") -> str:
    """Bind the dispatched kernels to a backend; returns the chosen name.

    ``'auto'`` picks numba when importable, else numpy — never raising.
    An explicit ``'numba'`` raises :class:`KernelBackendError` when numba
    is unavailable (a forced backend must not silently degrade).
    """
    global _BACKEND_NAME, _COMPILED_EXTRAS, GALLOP_RATIO
    requested = name or "auto"
    if requested not in BACKEND_NAMES + ("auto",):
        raise ValueError(
            f"unknown kernel backend {name!r}; pick one of "
            f"{('auto',) + BACKEND_NAMES}"
        )
    chosen = requested
    if requested == "auto":
        chosen = "numba" if _numba_importable() else "numpy"
    if chosen == "numba":
        from . import kernels_compiled

        if not kernels_compiled.NUMBA_AVAILABLE:
            raise KernelBackendError(
                "kernel backend 'numba' was explicitly requested but numba "
                "is not importable; install it (pip install repro[compiled]) "
                "or use kernel_backend='auto'/'numpy'"
            )
        table, extras = kernels_compiled.make_backend()
    else:
        table, extras = _NUMPY_KERNELS, {}
    g = globals()
    for key in DISPATCHED_KERNELS:
        g[key] = table[key]
    GALLOP_RATIO = GALLOP_RATIO_BY_BACKEND[chosen]
    _COMPILED_EXTRAS = extras
    _BACKEND_NAME = chosen
    return chosen


# One-time selection at import: REPRO_KERNEL_BACKEND forces a backend
# (and fails loudly if it cannot be honored); unset means 'auto', which
# silently falls back to numpy without numba.
select_backend(os.environ.get("REPRO_KERNEL_BACKEND") or "auto")
