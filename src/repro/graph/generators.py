"""Synthetic graph generators.

The paper evaluates on five real networks (Youtube, Skitter, Orkut, BTC,
Friendster).  Those are multi-GB downloads we cannot ship, so the
benchmark datasets are synthesized here with the *characteristics* that
drive the paper's results: power-law degree distributions (R-MAT /
preferential attachment), controllable density, optional planted cliques
(so maximum-clique finding has a non-trivial answer), extreme-degree hubs
(the "dense part of BTC" that broke G-Miner) and vertex labels (for
subgraph matching).

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .graph import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "plant_clique",
    "plant_cliques",
    "with_random_labels",
    "ring_of_cliques",
    "star_burst",
]


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) random graph: every pair is an edge with probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    rng = random.Random(seed)
    edges: List[Tuple[int, int]] = []
    # Geometric skipping: for sparse p this is O(|E|), not O(n^2).
    # Guard float extremes: a subnormal p underflows (1 - p == 1.0, so
    # log(1-p) == 0 and the skip length divides by zero), and p close
    # enough to 1 makes 1 - p == 0.0.
    if p <= 0.0 or 1.0 - p == 1.0:
        return Graph.from_edges([], extra_vertices=range(n))
    if p >= 1.0 or 1.0 - p == 0.0:
        edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
        return Graph.from_edges(edges, extra_vertices=range(n))
    import math

    log_q = math.log(1.0 - p)
    v = 1
    w = -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            edges.append((w, v))
    return Graph.from_edges(edges, extra_vertices=range(n))


def barabasi_albert(n: int, m: int, seed: int = 0) -> Graph:
    """Preferential-attachment graph: each new vertex attaches to ``m`` others.

    Produces the heavy-tailed degree distribution typical of social
    networks such as Youtube and Friendster.
    """
    if m < 1 or m >= n:
        raise ValueError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = random.Random(seed)
    edges: List[Tuple[int, int]] = []
    # 'targets' holds one entry per half-edge, so sampling uniformly from
    # it is sampling proportional to degree.
    repeated: List[int] = []
    targets = list(range(m))
    for v in range(m, n):
        chosen: Set[int] = set()
        for t in targets:
            chosen.add(t)
        for t in chosen:
            edges.append((v, t))
        repeated.extend(chosen)
        repeated.extend([v] * len(chosen))
        targets = []
        seen: Set[int] = set()
        while len(targets) < m:
            t = repeated[rng.randrange(len(repeated))]
            if t not in seen:
                seen.add(t)
                targets.append(t)
    return Graph.from_edges(edges, extra_vertices=range(n))


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> Graph:
    """R-MAT (recursive matrix) generator, the Graph500 workhorse.

    ``2**scale`` vertices and roughly ``edge_factor * 2**scale``
    undirected edges with a skewed, community-like structure.  The
    default (a, b, c) parameters match the Graph500 specification and
    produce degree skew close to web/social graphs (Skitter, Orkut).
    """
    n = 1 << scale
    num_edges = edge_factor * n
    rng = random.Random(seed)
    d = 1.0 - (a + b + c)
    if d < 0:
        raise ValueError("a + b + c must be <= 1")
    edges: List[Tuple[int, int]] = []
    for _ in range(num_edges):
        u = v = 0
        half = n >> 1
        while half >= 1:
            r = rng.random()
            if r < a:
                pass
            elif r < a + b:
                v += half
            elif r < a + b + c:
                u += half
            else:
                u += half
                v += half
            half >>= 1
        if u != v:
            edges.append((u, v))
    return Graph.from_edges(edges, extra_vertices=range(n))


def plant_clique(g: Graph, size: int, seed: int = 0, members: Optional[Sequence[int]] = None) -> Tuple[Graph, Tuple[int, ...]]:
    """Return a copy of ``g`` with a clique of ``size`` planted on existing vertices.

    The planted members are returned so tests can assert the maximum
    clique is at least this large.
    """
    vs = sorted(g.vertices())
    if size > len(vs):
        raise ValueError(f"cannot plant a {size}-clique in a {len(vs)}-vertex graph")
    rng = random.Random(seed)
    if members is None:
        members = rng.sample(vs, size)
    members = tuple(sorted(members))
    extra = [
        (u, v)
        for i, u in enumerate(members)
        for v in members[i + 1:]
        if not g.has_edge(u, v)
    ]
    merged = list(g.edges()) + extra
    return Graph.from_edges(merged, labels=g.labels(), extra_vertices=vs), members


def plant_cliques(
    g: Graph, sizes: Sequence[int], seed: int = 0
) -> Tuple[Graph, List[Tuple[int, ...]]]:
    """Plant several cliques (disjoint membership) of the given sizes."""
    rng = random.Random(seed)
    vs = sorted(g.vertices())
    if sum(sizes) > len(vs):
        raise ValueError("not enough vertices for disjoint planted cliques")
    pool = rng.sample(vs, sum(sizes))
    planted: List[Tuple[int, ...]] = []
    out = g
    offset = 0
    for s in sizes:
        members = pool[offset: offset + s]
        offset += s
        out, mem = plant_clique(out, s, members=members)
        planted.append(mem)
    return out, planted


def with_random_labels(g: Graph, num_labels: int, seed: int = 0) -> Graph:
    """Attach uniform-random labels in ``[0, num_labels)`` to every vertex."""
    if num_labels < 1:
        raise ValueError("num_labels must be >= 1")
    rng = random.Random(seed)
    labels = {v: rng.randrange(num_labels) for v in g.vertices()}
    return Graph(g.adjacency(), labels=labels)


def ring_of_cliques(num_cliques: int, clique_size: int) -> Graph:
    """``num_cliques`` cliques of ``clique_size`` joined in a ring.

    A classic stress shape: dense local structure with an easy global
    decomposition.  Useful for deterministic tests (exact triangle and
    clique counts are known in closed form).
    """
    if num_cliques < 1 or clique_size < 1:
        raise ValueError("need at least one clique of at least one vertex")
    edges: List[Tuple[int, int]] = []
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
        nxt = ((c + 1) % num_cliques) * clique_size
        if num_cliques > 1 and nxt != base:
            edges.append((base, nxt))
    n = num_cliques * clique_size
    return Graph.from_edges(edges, extra_vertices=range(n))


def star_burst(num_hubs: int, spokes_per_hub: int, hub_density: float = 1.0, seed: int = 0) -> Graph:
    """Hubs with huge degree plus a densely connected hub core.

    Mimics the extreme degree skew of BTC (the semantic-web graph on
    which G-Miner never finished): a few vertices see most of the graph.
    """
    rng = random.Random(seed)
    edges: List[Tuple[int, int]] = []
    next_id = num_hubs
    for h in range(num_hubs):
        for _ in range(spokes_per_hub):
            edges.append((h, next_id))
            next_id += 1
    for i in range(num_hubs):
        for j in range(i + 1, num_hubs):
            if rng.random() < hub_density:
                edges.append((i, j))
    return Graph.from_edges(edges, extra_vertices=range(next_id))
