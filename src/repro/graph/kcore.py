"""k-core decomposition and degeneracy ordering.

Standard subgraph-mining preprocessing (Matula–Beck peeling, O(|E|)):

* the *core number* of ``v`` is the largest k such that v belongs to a
  subgraph of minimum degree k;
* the *degeneracy order* lists vertices as peeled; every vertex has at
  most ``degeneracy`` neighbors later in the order.

Used here the way clique miners use it: a vertex with core number
``< k - 1`` cannot belong to a k-clique, so the aggregator's incumbent
bound turns core numbers into a spawn-time pruning rule
(:class:`repro.apps.maxclique.MaxCliqueComper` with
``use_core_pruning=True``), and the greedy clique seed from the
degeneracy order gives branch-and-bound a strong initial incumbent.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .graph import Graph

__all__ = ["core_numbers", "degeneracy_order", "degeneracy", "greedy_clique_seed"]


def core_numbers(g: Graph) -> Dict[int, int]:
    """Core number per vertex via bucketed peeling (O(|V| + |E|))."""
    degrees = {v: g.degree(v) for v in g.vertices()}
    if not degrees:
        return {}
    max_deg = max(degrees.values())
    buckets: List[List[int]] = [[] for _ in range(max_deg + 1)]
    for v, d in degrees.items():
        buckets[d].append(v)
    core: Dict[int, int] = {}
    current = dict(degrees)
    removed = set()
    k = 0
    for d in range(max_deg + 1):
        stack = buckets[d]
        while stack:
            v = stack.pop()
            if v in removed or current[v] > d:
                # stale bucket entry; v was re-bucketed at a lower degree
                continue
            k = max(k, current[v])
            core[v] = k
            removed.add(v)
            for u in g.neighbors(v):
                if u not in removed and current[u] > current[v]:
                    current[u] -= 1
                    buckets[current[u]].append(u)
    return core


def degeneracy_order(g: Graph) -> List[int]:
    """Peeling order: each vertex has <= degeneracy neighbors *after* it."""
    degrees = {v: g.degree(v) for v in g.vertices()}
    order: List[int] = []
    if not degrees:
        return order
    max_deg = max(degrees.values())
    buckets: List[List[int]] = [[] for _ in range(max_deg + 1)]
    for v, d in degrees.items():
        buckets[d].append(v)
    current = dict(degrees)
    removed = set()
    pointer = 0
    while len(order) < len(degrees):
        # find the lowest non-empty bucket with a live entry
        while pointer <= max_deg:
            found = None
            while buckets[pointer]:
                cand = buckets[pointer].pop()
                if cand not in removed and current[cand] == pointer:
                    found = cand
                    break
            if found is not None:
                v = found
                break
            pointer += 1
        else:  # pragma: no cover - unreachable on consistent state
            break
        order.append(v)
        removed.add(v)
        for u in g.neighbors(v):
            if u not in removed:
                current[u] -= 1
                buckets[max(current[u], 0)].append(u)
        pointer = max(0, pointer - 1)
    return order


def degeneracy(g: Graph) -> int:
    """The graph's degeneracy (max core number)."""
    cores = core_numbers(g)
    return max(cores.values(), default=0)


def greedy_clique_seed(g: Graph, starts: int = 64) -> Tuple[int, ...]:
    """A greedy clique grown from the densest end of the degeneracy order.

    Cheap and often large on clique-bearing graphs; used to seed the
    maximum-clique aggregator so branch-and-bound pruning starts tight.
    ``starts`` bounds how many starting vertices are tried.
    """
    order = degeneracy_order(g)
    reverse = list(reversed(order))
    best: Tuple[int, ...] = ()
    for v in reverse[:starts]:
        if g.degree(v) + 1 <= len(best):
            continue
        clique = [v]
        cand = set(g.neighbors(v))
        for u in reverse:
            if u in cand:
                clique.append(u)
                cand &= set(g.neighbors(u))
                if not cand:
                    break
        if len(clique) > len(best):
            best = tuple(sorted(clique))
    return best
