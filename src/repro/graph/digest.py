"""Content digests for graphs — the cache-key identity of a dataset.

The job service keys its result cache by ``(graph_digest, app, params)``:
two submissions hit the same cache entry iff they name the same
computation on the same bytes.  The digest therefore covers exactly what
the miners see — the sorted adjacency structure plus vertex labels — and
nothing incidental (Python object identity, dict order, file paths).

For an in-memory :class:`~repro.graph.graph.Graph` the digest hashes the
memoized CSR arrays, so on a resident graph it costs one pass over
buffers that already exist.  For a :class:`~repro.graph.io.ShardedGraphStore`
it hashes the parsed rows shard by shard, giving the same digest a
``Graph`` with identical content would get only if the row sets match —
shard layout *is* part of a store's identity (it decides worker
placement), so the shard count is folded in.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .graph import Graph
from .io import ShardedGraphStore

__all__ = ["graph_digest"]


def _digest_graph(h, graph: Graph) -> None:
    vertex_ids, indptr, indices, labels = graph.csr_arrays()
    for arr in (vertex_ids, indptr, indices, labels):
        h.update(np.ascontiguousarray(arr, dtype="<i8").tobytes())


def _digest_store(h, store: ShardedGraphStore) -> None:
    h.update(int(store.num_shards).to_bytes(8, "little"))
    for shard in range(store.num_shards):
        for v, label, adj in store.read_shard(shard):
            row = np.empty(3 + len(adj), dtype="<i8")
            row[0], row[1], row[2] = v, label, len(adj)
            row[3:] = np.asarray(adj, dtype="<i8")
            h.update(row.tobytes())


def graph_digest(graph) -> str:
    """A stable hex digest of a graph's adjacency structure and labels.

    Equal content ⇒ equal digest, across processes and runs (the hash
    covers little-endian int64 buffers, never Python object state).
    Accepts a :class:`Graph` or a :class:`ShardedGraphStore`.
    """
    h = hashlib.sha256()
    if isinstance(graph, Graph):
        h.update(b"graph\x00")
        _digest_graph(h, graph)
    elif isinstance(graph, ShardedGraphStore):
        h.update(b"shards\x00")
        _digest_store(h, graph)
    else:
        raise TypeError(f"cannot digest graph source {type(graph)!r}")
    return h.hexdigest()
