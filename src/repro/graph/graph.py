"""In-memory graph representation used throughout the reproduction.

G-thinker stores a graph as a set of vertices, each with its adjacency
list ``Gamma(v)`` (the paper's :math:`\\Gamma(v)`).  We mirror that: a
:class:`Graph` is a mapping from vertex id to a *sorted tuple* of
neighbor ids.  Sorted adjacency enables the paper's ``Gamma_gt`` trimming
(neighbors with larger id, written :math:`\\Gamma_{>}(v)`) via a single
binary search, and linear-time sorted-set intersection inside the serial
miners.

Vertices may optionally carry labels (used by subgraph matching).
"""

from __future__ import annotations

import bisect
import itertools
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Graph",
    "adjacency_suffix_gt",
    "intersect_sorted",
    "intersect_sorted_count",
]


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Intersect two sorted integer sequences in ``O(|a| + |b|)``.

    Pure-Python reference oracle.  The hot-path miners use the vectorized
    kernels in :mod:`repro.graph.kernels` (which auto-select a galloping
    ``searchsorted`` variant for skewed sizes); this merge loop is kept as
    the ground truth they are tested against.
    """
    out: List[int] = []
    i, j = 0, 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def intersect_sorted_count(a: Sequence[int], b: Sequence[int]) -> int:
    """Count the intersection of two sorted sequences without materializing.

    Pure-Python reference oracle for :func:`repro.graph.kernels.intersect_count`.
    """
    n = 0
    i, j = 0, 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            n += 1
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return n


def adjacency_suffix_gt(adj: Sequence[int], v: int) -> Tuple[int, ...]:
    """Return the suffix of a sorted adjacency list with ids ``> v``.

    Implements the paper's :math:`\\Gamma_{>}(v)` trimming used by the
    set-enumeration search (Fig. 1): a vertex set ``S`` is only extended
    by neighbors larger than its largest member.
    """
    idx = bisect.bisect_right(adj, v)
    return tuple(adj[idx:])


class Graph:
    """An undirected graph stored as sorted adjacency lists.

    Parameters
    ----------
    adjacency:
        Mapping from vertex id to an iterable of neighbor ids.  Neighbor
        lists are deduplicated, sorted, and self-loops are dropped.
    labels:
        Optional mapping from vertex id to an integer label (for labeled
        workloads such as subgraph matching).  Unlabeled vertices default
        to label ``0``.
    """

    __slots__ = ("_adj", "_labels", "_num_edges", "_adj_arrays", "_csr_cache")

    def __init__(
        self,
        adjacency: Optional[Mapping[int, Iterable[int]]] = None,
        labels: Optional[Mapping[int, int]] = None,
    ) -> None:
        self._adj: Dict[int, Tuple[int, ...]] = {}
        self._labels: Dict[int, int] = dict(labels) if labels else {}
        self._num_edges = 0
        self._adj_arrays: Dict[int, np.ndarray] = {}
        self._csr_cache: Optional[Tuple[np.ndarray, ...]] = None
        if adjacency:
            for v, nbrs in adjacency.items():
                cleaned = sorted({u for u in nbrs if u != v})
                self._adj[v] = tuple(cleaned)
            # Ensure symmetry-closure of the vertex set: a neighbor that
            # has no row of its own becomes an isolated row.
            for v in list(self._adj):
                for u in self._adj[v]:
                    if u not in self._adj:
                        self._adj[u] = ()
            self._num_edges = sum(len(a) for a in self._adj.values()) // 2

    # -- construction -------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        labels: Optional[Mapping[int, int]] = None,
        extra_vertices: Iterable[int] = (),
    ) -> "Graph":
        """Build an undirected graph from an edge iterable."""
        adj: Dict[int, set] = {}
        for u, v in edges:
            if u == v:
                continue
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        for v in extra_vertices:
            adj.setdefault(v, set())
        return cls(adj, labels=labels)

    # -- basic accessors ----------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> Iterator[int]:
        return iter(self._adj)

    def sorted_vertices(self) -> List[int]:
        return sorted(self._adj)

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[int]:
        return iter(self._adj)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """The sorted adjacency list ``Gamma(v)``."""
        return self._adj[v]

    def neighbors_gt(self, v: int) -> Tuple[int, ...]:
        """Neighbors of ``v`` with id greater than ``v`` (``Gamma_>(v)``)."""
        return adjacency_suffix_gt(self._adj[v], v)

    def neighbors_array(self, v: int) -> np.ndarray:
        """``Gamma(v)`` as a read-only sorted int64 ndarray (cached).

        The array is built lazily on first access and memoized, so the
        vectorized kernels in :mod:`repro.graph.kernels` can be fed
        without re-boxing tuples on every call.
        """
        arr = self._adj_arrays.get(v)
        if arr is None:
            arr = np.asarray(self._adj[v], dtype=np.int64)
            arr.flags.writeable = False
            self._adj_arrays[v] = arr
        return arr

    def neighbors_gt_array(self, v: int) -> np.ndarray:
        """``Gamma_>(v)`` as a read-only ndarray view into ``neighbors_array``."""
        arr = self.neighbors_array(v)
        return arr[int(np.searchsorted(arr, v, side="right")):]

    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Whole-graph CSR arrays ``(vertex_ids, indptr, indices, labels)``.

        ``indices`` stores neighbor *ids* (not positions) concatenated in
        ``vertex_ids`` order; all four arrays are read-only int64.  The
        result is memoized — the graph is immutable after construction —
        so repeated jobs on one graph (benchmarks, parameter sweeps) pay
        the flatten cost once instead of per :func:`run_job` call.
        """
        cached = self._csr_cache
        if cached is None:
            verts = self.sorted_vertices()
            n = len(verts)
            vertex_ids = np.asarray(verts, dtype=np.int64)
            adj = [self._adj[v] for v in verts]
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(
                np.fromiter(map(len, adj), dtype=np.int64, count=n),
                out=indptr[1:],
            )
            indices = np.fromiter(
                itertools.chain.from_iterable(adj),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            labels = np.fromiter(
                (self._labels.get(v, 0) for v in verts),
                dtype=np.int64,
                count=n,
            )
            for a in (vertex_ids, indptr, indices, labels):
                a.flags.writeable = False
            cached = self._csr_cache = (vertex_ids, indptr, indices, labels)
        return cached

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def label(self, v: int) -> int:
        return self._labels.get(v, 0)

    def labels(self) -> Dict[int, int]:
        return dict(self._labels)

    def has_edge(self, u: int, v: int) -> bool:
        a = self._adj.get(u)
        if a is None:
            return False
        idx = bisect.bisect_left(a, v)
        return idx < len(a) and a[idx] == v

    # -- aggregate statistics -----------------------------------------

    def max_degree(self) -> int:
        return max((len(a) for a in self._adj.values()), default=0)

    def average_degree(self) -> float:
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def degree_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for a in self._adj.values():
            hist[len(a)] = hist.get(len(a), 0) + 1
        return hist

    # -- derived graphs ------------------------------------------------

    def induced_subgraph(self, vertices: Iterable[int]) -> "Graph":
        """The subgraph induced by ``vertices`` (adjacency filtered)."""
        vset = set(vertices)
        adj = {
            v: [u for u in self._adj[v] if u in vset]
            for v in vset
            if v in self._adj
        }
        labels = {v: self._labels[v] for v in adj if v in self._labels}
        return Graph(adj, labels=labels)

    def trimmed(self, trimmer) -> "Graph":
        """Apply a :class:`repro.core.api.Trimmer`-style callable per vertex.

        ``trimmer(v, adj)`` must return the trimmed adjacency sequence.
        Used to implement the paper's Trimmer plug-in at load time.
        """
        adj = {v: trimmer(v, a) for v, a in self._adj.items()}
        g = Graph.__new__(Graph)
        g._adj = {v: tuple(a) for v, a in adj.items()}
        g._labels = dict(self._labels)
        g._adj_arrays = {}
        # Trimming may make adjacency asymmetric (e.g. Gamma_> trimming);
        # count directed entries instead of halving.
        g._num_edges = sum(len(a) for a in g._adj.values())
        return g

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for v, adj in self._adj.items():
            for u in adjacency_suffix_gt(adj, v):
                yield (v, u)

    # -- misc ----------------------------------------------------------

    def adjacency(self) -> Dict[int, Tuple[int, ...]]:
        """A shallow copy of the adjacency mapping."""
        return dict(self._adj)

    def memory_estimate_bytes(self) -> int:
        """Rough bytes needed to hold the adjacency (8 B per entry + row overhead).

        Used by the simulator's memory accounting, not by Python's own
        allocator: we model the footprint a C++ implementation would have,
        matching how the paper reports per-machine GB numbers.
        """
        return sum(16 + 8 * len(a) for a in self._adj.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj and all(
            self.label(v) == other.label(v) for v in self._adj
        )

    def __hash__(self) -> int:  # Graphs are mutated never, but keep unhashable-by-default semantics explicit.
        raise TypeError("Graph objects are not hashable")
