"""Graph file formats and the sharded store that stands in for HDFS.

G-thinker loads the input from HDFS, where each line holds a vertex and
its adjacency list, and every worker parses the lines whose vertex hashes
to it.  We reproduce that contract on the local filesystem:

* :func:`write_adjacency` / :func:`read_adjacency` — single-file
  adjacency format, one ``v \\t label \\t n1 n2 ...`` line per vertex.
* :func:`write_edge_list` / :func:`read_edge_list` — SNAP-style edge
  lists (the format the paper's datasets ship in).
* :class:`ShardedGraphStore` — a directory of per-worker shard files
  (``part-00000`` …) hash-partitioned by vertex id.  Worker ``i`` loads
  exactly shard ``i``; this mirrors "each machine only loads a fraction
  of vertices along with their adjacency lists".
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .graph import Graph
from .partition import hash_partition

__all__ = [
    "write_adjacency",
    "read_adjacency",
    "write_edge_list",
    "read_edge_list",
    "parse_adjacency_line",
    "format_adjacency_line",
    "ShardedGraphStore",
]

PathLike = Union[str, os.PathLike]


def format_adjacency_line(v: int, label: int, adj: Iterable[int]) -> str:
    """Render one vertex row: ``id<TAB>label<TAB>n1 n2 n3``."""
    return f"{v}\t{label}\t{' '.join(str(u) for u in adj)}"


def parse_adjacency_line(line: str) -> Tuple[int, int, Tuple[int, ...]]:
    """Parse a row produced by :func:`format_adjacency_line`.

    This is the default implementation of the paper's
    ``Worker`` data-import UDF ("how to parse a line on HDFS into a
    vertex object").
    """
    parts = line.rstrip("\n").split("\t")
    if len(parts) != 3:
        raise ValueError(f"malformed adjacency line: {line!r}")
    v = int(parts[0])
    label = int(parts[1])
    adj = tuple(int(x) for x in parts[2].split()) if parts[2] else ()
    return v, label, adj


def write_adjacency(g: Graph, path: PathLike) -> None:
    """Write a whole graph as a single adjacency file."""
    with open(path, "w", encoding="ascii") as f:
        for v in g.sorted_vertices():
            f.write(format_adjacency_line(v, g.label(v), g.neighbors(v)))
            f.write("\n")


def read_adjacency(path: PathLike) -> Graph:
    """Read a graph written by :func:`write_adjacency`."""
    adj: Dict[int, Tuple[int, ...]] = {}
    labels: Dict[int, int] = {}
    with open(path, "r", encoding="ascii") as f:
        for line in f:
            if not line.strip():
                continue
            v, label, nbrs = parse_adjacency_line(line)
            adj[v] = nbrs
            if label:
                labels[v] = label
    return Graph(adj, labels=labels)


def write_edge_list(g: Graph, path: PathLike, comments: Optional[str] = None) -> None:
    """Write a SNAP-style edge list (``u<TAB>v``), one row per undirected edge."""
    with open(path, "w", encoding="ascii") as f:
        if comments:
            for row in comments.splitlines():
                f.write(f"# {row}\n")
        for u, v in g.edges():
            f.write(f"{u}\t{v}\n")


def read_edge_list(path: PathLike) -> Graph:
    """Read a SNAP-style edge list; ``#``-prefixed lines are comments."""
    edges: List[Tuple[int, int]] = []
    with open(path, "r", encoding="ascii") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            edges.append((int(parts[0]), int(parts[1])))
    return Graph.from_edges(edges)


class ShardedGraphStore:
    """A directory of hash-partitioned adjacency shards (local-HDFS stand-in).

    Layout::

        <root>/
          part-00000   # vertices with hash_partition(v, n) == 0
          part-00001
          ...
          _meta        # "num_shards num_vertices num_edges"
    """

    META_NAME = "_meta"

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    # -- writing -------------------------------------------------------

    @classmethod
    def create(cls, root: PathLike, g: Graph, num_shards: int) -> "ShardedGraphStore":
        """Partition ``g`` into ``num_shards`` shard files under ``root``."""
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        store = cls(root)
        store.root.mkdir(parents=True, exist_ok=True)
        handles = [
            open(store._shard_path(i), "w", encoding="ascii")
            for i in range(num_shards)
        ]
        try:
            for v in g.sorted_vertices():
                shard = hash_partition(v, num_shards)
                handles[shard].write(
                    format_adjacency_line(v, g.label(v), g.neighbors(v)) + "\n"
                )
        finally:
            for h in handles:
                h.close()
        meta = store.root / cls.META_NAME
        meta.write_text(f"{num_shards} {g.num_vertices} {g.num_edges}\n")
        return store

    # -- reading -------------------------------------------------------

    def _shard_path(self, shard: int) -> Path:
        return self.root / f"part-{shard:05d}"

    @property
    def num_shards(self) -> int:
        return self._read_meta()[0]

    @property
    def num_vertices(self) -> int:
        return self._read_meta()[1]

    @property
    def num_edges(self) -> int:
        return self._read_meta()[2]

    def _read_meta(self) -> Tuple[int, int, int]:
        text = (self.root / self.META_NAME).read_text().split()
        return int(text[0]), int(text[1]), int(text[2])

    def read_shard(self, shard: int) -> Iterator[Tuple[int, int, Tuple[int, ...]]]:
        """Yield ``(v, label, adjacency)`` rows of one shard."""
        path = self._shard_path(shard)
        with open(path, "r", encoding="ascii") as f:
            for line in f:
                if line.strip():
                    yield parse_adjacency_line(line)

    def shard_bytes(self, shard: int) -> int:
        return self._shard_path(shard).stat().st_size

    def load_full_graph(self) -> Graph:
        """Assemble the whole graph from every shard (for oracles/tests)."""
        adj: Dict[int, Tuple[int, ...]] = {}
        labels: Dict[int, int] = {}
        for shard in range(self.num_shards):
            for v, label, nbrs in self.read_shard(shard):
                adj[v] = nbrs
                if label:
                    labels[v] = label
        return Graph(adj, labels=labels)
