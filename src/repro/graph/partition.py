"""Vertex-to-worker placement.

The paper explicitly avoids smart graph partitioning (G-Miner's costly
preprocessing step) and "adopt[s] the approach of Pregel to hash vertices
to machines by vertex ID".  :func:`hash_partition` is that function; it
is the single source of truth for vertex placement across the runtime,
the sharded store and the simulator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

__all__ = [
    "hash_partition",
    "hash_partition_array",
    "partition_counts",
    "owner_map",
]


def hash_partition(v: int, num_partitions: int) -> int:
    """Map vertex id ``v`` to a partition in ``[0, num_partitions)``.

    We mix the id with a Fibonacci-hash multiplier before reducing so
    that contiguous id ranges (common in generated graphs) spread evenly
    rather than striping — with plain ``v % n`` a planted clique on ids
    ``0..k`` would load partitions unevenly in pathological ways.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    # Coerce to a python int: numpy int64 ids (from ndarray adjacency)
    # would overflow on the 64-bit multiply below.
    v = int(v)
    # 64-bit Fibonacci hashing constant (2^64 / golden ratio), masked to
    # stay within 64 bits like the C++ implementation would.
    mixed = (v * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    return (mixed >> 32) % num_partitions


def hash_partition_array(ids, num_partitions: int) -> np.ndarray:
    """Vectorized :func:`hash_partition` over an id array.

    Bit-identical to the scalar function (uint64 multiply wraps exactly
    like the masked Python multiply); lets a worker classify a whole
    ``vertex_ids`` array in one pass instead of one Python call per
    vertex of the full graph.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    mixed = np.asarray(ids).astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    return ((mixed >> np.uint64(32)) % np.uint64(num_partitions)).astype(
        np.int64
    )


def partition_counts(vertices: Iterable[int], num_partitions: int) -> List[int]:
    """How many of ``vertices`` land on each partition (for balance checks)."""
    counts = [0] * num_partitions
    for v in vertices:
        counts[hash_partition(v, num_partitions)] += 1
    return counts


def owner_map(vertices: Iterable[int], num_partitions: int) -> Dict[int, int]:
    """Materialized vertex -> owner mapping (used by small test fixtures)."""
    return {v: hash_partition(v, num_partitions) for v in vertices}
