"""Synthetic stand-ins for the paper's five evaluation datasets (Table II).

The paper evaluates on Youtube, Skitter, Orkut, BTC and Friendster.  We
synthesize graphs with the same *discriminating characteristics* at
laptop scale (see DESIGN.md §2):

============  =================================================  =====================
paper graph   character we preserve                              generator
============  =================================================  =====================
Youtube       sparse social graph, heavy-tailed degrees          Barabási–Albert
Skitter       internet topology, moderate density, big cliques   R-MAT + planted cliques
Orkut         dense social graph (avg degree ~76)                R-MAT, high edge factor
BTC           extreme degree skew ("dense part" hub region)      star-burst hubs + R-MAT
Friendster    the largest graph, power law, 129-clique answer    BA + planted cliques
============  =================================================  =====================

Each dataset carries a ``scale`` knob: ``scale=1.0`` is the default
benchmark size (fits in seconds on one laptop core); tests use smaller
scales.  EXPERIMENTS.md records the down-scaling factor relative to the
real graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .generators import (
    barabasi_albert,
    plant_cliques,
    rmat,
    star_burst,
    with_random_labels,
)
from .graph import Graph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "make_dataset",
    "dataset_stats",
    "PAPER_TABLE2",
]

#: The real-graph statistics from Table II of the paper, used by the
#: Table II bench to print paper-vs-ours side by side.
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "youtube": {"num_vertices": 1_134_890, "num_edges": 2_987_624},
    "skitter": {"num_vertices": 1_696_415, "num_edges": 11_095_298},
    "orkut": {"num_vertices": 3_072_441, "num_edges": 117_185_083},
    "btc": {"num_vertices": 164_732_473, "num_edges": 386_690_315},
    "friendster": {"num_vertices": 65_608_366, "num_edges": 1_806_067_135},
}


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic dataset recipe."""

    name: str
    description: str
    builder: Callable[[float, int], Tuple[Graph, Tuple[Tuple[int, ...], ...]]]

    def build(self, scale: float = 1.0, seed: int = 7) -> Graph:
        graph, _planted = self.builder(scale, seed)
        return graph

    def build_with_planted(
        self, scale: float = 1.0, seed: int = 7
    ) -> Tuple[Graph, Tuple[Tuple[int, ...], ...]]:
        """Also return planted clique memberships (for oracle assertions)."""
        return self.builder(scale, seed)


def _scaled(base: int, scale: float, minimum: int = 16) -> int:
    return max(minimum, int(round(base * scale)))


def _youtube(scale: float, seed: int) -> Tuple[Graph, Tuple[Tuple[int, ...], ...]]:
    n = _scaled(3000, scale)
    g = barabasi_albert(n, m=3, seed=seed)
    g, planted = plant_cliques(g, [max(6, int(10 * math.sqrt(scale)))], seed=seed + 1)
    return g, tuple(planted)


def _skitter(scale: float, seed: int) -> Tuple[Graph, Tuple[Tuple[int, ...], ...]]:
    log2n = max(7, int(round(11 + math.log2(max(scale, 1e-6)))))
    g = rmat(scale=log2n, edge_factor=7, seed=seed)
    k = max(8, int(14 * math.sqrt(scale)))
    g, planted = plant_cliques(g, [k, max(5, k // 2)], seed=seed + 1)
    return g, tuple(planted)


def _orkut(scale: float, seed: int) -> Tuple[Graph, Tuple[Tuple[int, ...], ...]]:
    log2n = max(7, int(round(10 + math.log2(max(scale, 1e-6)))))
    g = rmat(scale=log2n, edge_factor=24, seed=seed)
    k = max(10, int(18 * math.sqrt(scale)))
    g, planted = plant_cliques(g, [k], seed=seed + 1)
    return g, tuple(planted)


def _btc(scale: float, seed: int) -> Tuple[Graph, Tuple[Tuple[int, ...], ...]]:
    hubs = _scaled(24, scale, minimum=8)
    spokes = _scaled(260, scale, minimum=32)
    hubby = star_burst(hubs, spokes, hub_density=0.9, seed=seed)
    log2n = max(7, int(round(11 + math.log2(max(scale, 1e-6)))))
    tail = rmat(scale=log2n, edge_factor=3, seed=seed + 1)
    offset = hubby.num_vertices
    merged = list(hubby.edges()) + [(u + offset, v + offset) for u, v in tail.edges()]
    # Stitch the two regions so the graph is one component-ish blob.
    merged += [(h, offset + h) for h in range(hubs)]
    g = Graph.from_edges(merged)
    return g, ()


def _friendster(scale: float, seed: int) -> Tuple[Graph, Tuple[Tuple[int, ...], ...]]:
    n = _scaled(12000, scale)
    g = barabasi_albert(n, m=6, seed=seed)
    # The paper's headline: Friendster's maximum clique has 129 vertices.
    # We plant a dominant clique (scaled) plus decoys so branch-and-bound
    # pruning is actually exercised.
    k = max(12, int(26 * math.sqrt(scale)))
    g, planted = plant_cliques(g, [k, max(6, k - 4), max(5, k // 2)], seed=seed + 1)
    return g, tuple(planted)


DATASETS: Dict[str, DatasetSpec] = {
    "youtube": DatasetSpec("youtube", "sparse social graph (BA, m=3)", _youtube),
    "skitter": DatasetSpec("skitter", "internet topology (R-MAT ef=7 + cliques)", _skitter),
    "orkut": DatasetSpec("orkut", "dense social graph (R-MAT ef=24)", _orkut),
    "btc": DatasetSpec("btc", "extreme-skew semantic web (hubs + R-MAT)", _btc),
    "friendster": DatasetSpec("friendster", "largest graph (BA, m=6, planted max clique)", _friendster),
}


def make_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 7,
    labeled: Optional[int] = None,
) -> Graph:
    """Build a named dataset stand-in.

    Parameters
    ----------
    name:
        One of :data:`DATASETS` (``youtube``, ``skitter``, ``orkut``,
        ``btc``, ``friendster``).
    scale:
        Size multiplier; 1.0 is the default benchmark size.
    labeled:
        If given, attach this many random vertex labels (for subgraph
        matching workloads).
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    g = spec.build(scale=scale, seed=seed)
    if labeled is not None:
        g = with_random_labels(g, labeled, seed=seed + 99)
    return g


def dataset_stats(g: Graph) -> Dict[str, float]:
    """The Table II statistics columns for a graph."""
    return {
        "num_vertices": g.num_vertices,
        "num_edges": g.num_edges,
        "avg_degree": round(g.average_degree(), 2),
        "max_degree": g.max_degree(),
    }
