"""Compressed sparse row (CSR) graph storage backed by numpy.

The dict-of-tuples :class:`~repro.graph.graph.Graph` is the mutation- and
lookup-friendly representation the engine uses; :class:`CSRGraph` is the
compact scan-friendly one, useful for whole-graph analytics (degree
statistics, global triangle counts, core seeding) and as the memory
model reference — its footprint *is* the 8-bytes-per-entry figure the
worker memory model charges.

Vertex ids are remapped to a dense ``0..n-1`` range internally; the
original ids are kept for translation both ways.

:class:`SharedCSR` is the multi-process variant used by the
``runtime="process"`` backend: the same four arrays (plus labels) live
in :mod:`multiprocessing.shared_memory` blocks so every worker process
maps the graph read-only at zero copy.  Unlike :class:`CSRGraph`, its
``indices`` array stores *original vertex ids* (not dense positions) —
worker processes serve adjacency rows directly as neighbor-id tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import kernels
from .graph import Graph

__all__ = ["CSRGraph", "SharedCSR", "SharedCSRMeta"]


class CSRGraph:
    """Immutable CSR adjacency with numpy row storage."""

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 vertex_ids: np.ndarray) -> None:
        if indptr.ndim != 1 or indices.ndim != 1 or vertex_ids.ndim != 1:
            raise ValueError("CSR arrays must be one-dimensional")
        if len(indptr) != len(vertex_ids) + 1:
            raise ValueError("indptr length must be num_vertices + 1")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        self.indptr = indptr
        self.indices = indices
        self.vertex_ids = vertex_ids
        self._position: Dict[int, int] = {
            int(v): i for i, v in enumerate(vertex_ids)
        }

    # -- construction -----------------------------------------------------

    @classmethod
    def from_graph(cls, g: Graph) -> "CSRGraph":
        vertex_ids = np.asarray(g.sorted_vertices(), dtype=np.int64)
        position = {int(v): i for i, v in enumerate(vertex_ids)}
        indptr = np.zeros(len(vertex_ids) + 1, dtype=np.int64)
        rows: List[np.ndarray] = []
        for i, v in enumerate(vertex_ids):
            row = np.fromiter(
                (position[u] for u in g.neighbors(int(v))), dtype=np.int64
            )
            rows.append(row)
            indptr[i + 1] = indptr[i] + len(row)
        indices = (
            np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
        )
        return cls(indptr, indices, vertex_ids)

    def to_graph(self) -> Graph:
        adj = {
            int(self.vertex_ids[i]): [
                int(self.vertex_ids[j]) for j in self.row(i)
            ]
            for i in range(self.num_vertices)
        }
        return Graph(adj)

    # -- access (dense positions) ---------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_ids)

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    def row(self, i: int) -> np.ndarray:
        """Neighbors of the vertex at dense position ``i`` (positions)."""
        return self.indices[self.indptr[i]: self.indptr[i + 1]]

    def position_of(self, vertex_id: int) -> int:
        return self._position[vertex_id]

    def degree_array(self) -> np.ndarray:
        return np.diff(self.indptr)

    def degree(self, vertex_id: int) -> int:
        i = self.position_of(vertex_id)
        return int(self.indptr[i + 1] - self.indptr[i])

    # -- analytics ------------------------------------------------------------

    def max_degree(self) -> int:
        d = self.degree_array()
        return int(d.max()) if len(d) else 0

    def average_degree(self) -> float:
        d = self.degree_array()
        return float(d.mean()) if len(d) else 0.0

    def count_triangles(self) -> int:
        """Global triangle count via sorted-row intersections.

        Rows are position-sorted (positions follow id order), so the
        forward algorithm applies: count ``|N_>(u) ∩ N_>(v)|`` per edge
        ``u < v`` using numpy's sorted intersect.
        """
        total = 0
        indptr, indices = self.indptr, self.indices
        for u in range(self.num_vertices):
            row_u = indices[indptr[u]: indptr[u + 1]]
            upper_u = kernels.suffix_gt(row_u, u)
            if upper_u.size < 1:
                continue
            total += kernels.intersect_count_many(
                upper_u,
                [
                    kernels.suffix_gt(indices[indptr[v]: indptr[v + 1]], v)
                    for v in upper_u.tolist()
                ],
            )
        return total

    def memory_bytes(self) -> int:
        """The actual array footprint (the memory-model ground truth)."""
        return self.indptr.nbytes + self.indices.nbytes + self.vertex_ids.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"


# ---------------------------------------------------------------------------
# Shared-memory CSR for the process backend
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedCSRMeta:
    """Picklable handle describing a :class:`SharedCSR`'s shm blocks.

    This is what crosses the process boundary: the parent builds the
    arrays once, ships the meta to every worker process, and each worker
    :meth:`SharedCSR.attach`\\ es — no per-worker graph copy.
    """

    indptr_name: str
    indices_name: str
    vertex_ids_name: str
    labels_name: str
    num_vertices: int
    num_entries: int


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Open an existing block without registering it for auto-unlink.

    The creator (parent process) owns the segment lifetime; attachers
    must not let their resource tracker unlink it a second time.  Python
    3.13 has ``track=False`` for this; on older versions we suppress the
    tracker's ``register`` call for the duration of the open — an
    ``unregister``-after-the-fact would race other attachers sharing the
    same (forked) tracker process and spew KeyErrors at interpreter
    exit.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _alloc_block(array: np.ndarray) -> shared_memory.SharedMemory:
    shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[:] = array
    return shm


def _map_array(shm: shared_memory.SharedMemory, length: int) -> np.ndarray:
    arr = np.ndarray((length,), dtype=np.int64, buffer=shm.buf)
    arr.flags.writeable = False
    return arr


class SharedCSR:
    """Read-only CSR adjacency + labels in shared memory.

    Four int64 arrays: ``indptr`` (n+1), ``indices`` (original neighbor
    *ids*, row-sorted ascending), ``vertex_ids`` (sorted ascending) and
    ``labels``.  The creating process calls :meth:`from_graph` and later
    :meth:`close` + :meth:`unlink`; worker processes call
    :meth:`attach(meta)` and :meth:`close` only.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        vertex_ids: np.ndarray,
        labels: np.ndarray,
        blocks: Sequence[shared_memory.SharedMemory],
        meta: SharedCSRMeta,
        owner: bool,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.vertex_ids = vertex_ids
        self.labels = labels
        self._blocks = list(blocks)
        self.meta = meta
        self.owner = owner

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def from_graph(cls, g: Graph) -> "SharedCSR":
        """Build the arrays once and place them in shared memory."""
        # The flatten itself is memoized on the (immutable) graph, so a
        # second job on the same graph only pays the copy into fresh
        # shared-memory blocks below.
        verts, indptr, indices, labels = g.csr_arrays()
        n = len(verts)
        blocks = [_alloc_block(a) for a in (indptr, indices, verts, labels)]
        meta = SharedCSRMeta(
            indptr_name=blocks[0].name,
            indices_name=blocks[1].name,
            vertex_ids_name=blocks[2].name,
            labels_name=blocks[3].name,
            num_vertices=n,
            num_entries=len(indices),
        )
        return cls(
            indptr=_map_array(blocks[0], n + 1),
            indices=_map_array(blocks[1], len(indices)),
            vertex_ids=_map_array(blocks[2], n),
            labels=_map_array(blocks[3], n),
            blocks=blocks,
            meta=meta,
            owner=True,
        )

    @classmethod
    def attach(cls, meta: SharedCSRMeta) -> "SharedCSR":
        """Map an existing SharedCSR in this process (zero copy)."""
        blocks = [
            _attach_block(meta.indptr_name),
            _attach_block(meta.indices_name),
            _attach_block(meta.vertex_ids_name),
            _attach_block(meta.labels_name),
        ]
        return cls(
            indptr=_map_array(blocks[0], meta.num_vertices + 1),
            indices=_map_array(blocks[1], meta.num_entries),
            vertex_ids=_map_array(blocks[2], meta.num_vertices),
            labels=_map_array(blocks[3], meta.num_vertices),
            blocks=blocks,
            meta=meta,
            owner=False,
        )

    def close(self) -> None:
        """Drop this process's mapping (both creator and attachers)."""
        self.indptr = self.indices = self.vertex_ids = self.labels = None  # type: ignore[assignment]
        for shm in self._blocks:
            try:
                shm.close()
            except BufferError:  # a live numpy view still references it
                pass

    def unlink(self) -> None:
        """Destroy the segments; creator only, after every attach closed."""
        if not self.owner:
            raise ValueError("only the creating process may unlink a SharedCSR")
        for shm in self._blocks:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # -- access -------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.meta.num_vertices

    @property
    def num_edges(self) -> int:
        return self.meta.num_entries // 2

    def position_of(self, vertex_id: int) -> int:
        i = int(np.searchsorted(self.vertex_ids, vertex_id))
        if i >= self.num_vertices or self.vertex_ids[i] != vertex_id:
            raise KeyError(f"vertex {vertex_id} not in SharedCSR")
        return i

    def degree_of(self, vertex_id: int) -> int:
        i = self.position_of(vertex_id)
        return int(self.indptr[i + 1] - self.indptr[i])

    def degree_array(self) -> np.ndarray:
        return np.diff(self.indptr)

    def row_ids(self, vertex_id: int) -> np.ndarray:
        """Neighbor *ids* of a vertex — a zero-copy view."""
        i = self.position_of(vertex_id)
        return self.indices[self.indptr[i]: self.indptr[i + 1]]

    def entry(self, vertex_id: int) -> Tuple[int, np.ndarray]:
        """``(label, adjacency)`` in the worker's ``T_local`` row format.

        The adjacency is a read-only zero-copy *view* into the shared
        ``indices`` block — no boxing, no tuple copy.  The view holds a
        reference to the shm buffer, so it stays valid for as long as any
        task keeps it, independent of cache eviction.
        """
        return self.entry_at(self.position_of(vertex_id))

    def entry_at(self, i: int) -> Tuple[int, np.ndarray]:
        """:meth:`entry` by row position — for callers that resolved the
        id -> position mapping up front (``Worker.load_shared``) and can
        skip the per-vertex ``searchsorted``."""
        row = self.indices[self.indptr[i]: self.indptr[i + 1]]
        return int(self.labels[i]), row

    def memory_bytes(self) -> int:
        return 8 * (2 * self.num_vertices + 1 + self.meta.num_entries
                    + self.num_vertices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SharedCSR(|V|={self.num_vertices}, |E|={self.num_edges}, "
                f"owner={self.owner})")
