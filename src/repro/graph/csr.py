"""Compressed sparse row (CSR) graph storage backed by numpy.

The dict-of-tuples :class:`~repro.graph.graph.Graph` is the mutation- and
lookup-friendly representation the engine uses; :class:`CSRGraph` is the
compact scan-friendly one, useful for whole-graph analytics (degree
statistics, global triangle counts, core seeding) and as the memory
model reference — its footprint *is* the 8-bytes-per-entry figure the
worker memory model charges.

Vertex ids are remapped to a dense ``0..n-1`` range internally; the
original ids are kept for translation both ways.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .graph import Graph

__all__ = ["CSRGraph"]


class CSRGraph:
    """Immutable CSR adjacency with numpy row storage."""

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 vertex_ids: np.ndarray) -> None:
        if indptr.ndim != 1 or indices.ndim != 1 or vertex_ids.ndim != 1:
            raise ValueError("CSR arrays must be one-dimensional")
        if len(indptr) != len(vertex_ids) + 1:
            raise ValueError("indptr length must be num_vertices + 1")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        self.indptr = indptr
        self.indices = indices
        self.vertex_ids = vertex_ids
        self._position: Dict[int, int] = {
            int(v): i for i, v in enumerate(vertex_ids)
        }

    # -- construction -----------------------------------------------------

    @classmethod
    def from_graph(cls, g: Graph) -> "CSRGraph":
        vertex_ids = np.asarray(g.sorted_vertices(), dtype=np.int64)
        position = {int(v): i for i, v in enumerate(vertex_ids)}
        indptr = np.zeros(len(vertex_ids) + 1, dtype=np.int64)
        rows: List[np.ndarray] = []
        for i, v in enumerate(vertex_ids):
            row = np.fromiter(
                (position[u] for u in g.neighbors(int(v))), dtype=np.int64
            )
            rows.append(row)
            indptr[i + 1] = indptr[i] + len(row)
        indices = (
            np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
        )
        return cls(indptr, indices, vertex_ids)

    def to_graph(self) -> Graph:
        adj = {
            int(self.vertex_ids[i]): [
                int(self.vertex_ids[j]) for j in self.row(i)
            ]
            for i in range(self.num_vertices)
        }
        return Graph(adj)

    # -- access (dense positions) ---------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_ids)

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    def row(self, i: int) -> np.ndarray:
        """Neighbors of the vertex at dense position ``i`` (positions)."""
        return self.indices[self.indptr[i]: self.indptr[i + 1]]

    def position_of(self, vertex_id: int) -> int:
        return self._position[vertex_id]

    def degree_array(self) -> np.ndarray:
        return np.diff(self.indptr)

    def degree(self, vertex_id: int) -> int:
        i = self.position_of(vertex_id)
        return int(self.indptr[i + 1] - self.indptr[i])

    # -- analytics ------------------------------------------------------------

    def max_degree(self) -> int:
        d = self.degree_array()
        return int(d.max()) if len(d) else 0

    def average_degree(self) -> float:
        d = self.degree_array()
        return float(d.mean()) if len(d) else 0.0

    def count_triangles(self) -> int:
        """Global triangle count via sorted-row intersections.

        Rows are position-sorted (positions follow id order), so the
        forward algorithm applies: count ``|N_>(u) ∩ N_>(v)|`` per edge
        ``u < v`` using numpy's sorted intersect.
        """
        total = 0
        indptr, indices = self.indptr, self.indices
        for u in range(self.num_vertices):
            row_u = indices[indptr[u]: indptr[u + 1]]
            upper_u = row_u[np.searchsorted(row_u, u, side="right"):]
            for v in upper_u:
                row_v = indices[indptr[v]: indptr[v + 1]]
                upper_v = row_v[np.searchsorted(row_v, v, side="right"):]
                total += len(np.intersect1d(upper_u, upper_v, assume_unique=True))
        return total

    def memory_bytes(self) -> int:
        """The actual array footprint (the memory-model ground truth)."""
        return self.indptr.nbytes + self.indices.nbytes + self.vertex_ids.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
