"""Graph substrate: representation, generators, sharded IO, partitioning."""

from . import kernels
from .graph import Graph, adjacency_suffix_gt, intersect_sorted, intersect_sorted_count
from .generators import (
    barabasi_albert,
    erdos_renyi,
    plant_clique,
    plant_cliques,
    ring_of_cliques,
    rmat,
    star_burst,
    with_random_labels,
)
from .io import (
    ShardedGraphStore,
    read_adjacency,
    read_edge_list,
    write_adjacency,
    write_edge_list,
)
from .partition import hash_partition, owner_map, partition_counts
from .datasets import DATASETS, DatasetSpec, dataset_stats, make_dataset
from .kcore import core_numbers, degeneracy, degeneracy_order, greedy_clique_seed
from .csr import CSRGraph, SharedCSR, SharedCSRMeta
from .digest import graph_digest

__all__ = [
    "Graph",
    "kernels",
    "adjacency_suffix_gt",
    "intersect_sorted",
    "intersect_sorted_count",
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "plant_clique",
    "plant_cliques",
    "ring_of_cliques",
    "star_burst",
    "with_random_labels",
    "ShardedGraphStore",
    "read_adjacency",
    "read_edge_list",
    "write_adjacency",
    "write_edge_list",
    "hash_partition",
    "owner_map",
    "partition_counts",
    "DATASETS",
    "DatasetSpec",
    "dataset_stats",
    "make_dataset",
    "core_numbers",
    "degeneracy",
    "degeneracy_order",
    "greedy_clique_seed",
    "CSRGraph",
    "SharedCSR",
    "SharedCSRMeta",
    "graph_digest",
]
