"""Compiled (numba) implementations of the hot mining kernels.

This module is import-safe without numba: :data:`NUMBA_AVAILABLE` tells
the dispatcher in :mod:`repro.graph.kernels` whether the backend can be
built, and every kernel *body* is a plain-python function (written in
the numba-compilable subset) that runs interpreted when numba is absent.
That keeps the algorithms testable everywhere — the property suite runs
the bodies against the pure-python oracles even on numpy-only boxes —
while CI's ``scaling-smoke`` job exercises the actual compiled
artifacts.

Kernels
-------
* ``intersect`` / ``intersect_count`` — two-pointer linear merge with a
  galloping (binary-search) path for heavy size skew, mirroring the
  numpy strategy selection but without any temporary concatenation or
  sort.
* ``intersect_many`` — smallest-first fold over the compiled pairwise
  intersection.
* ``intersect_count_many`` — the fused triangle-counting kernel: one
  fixed row against a whole frontier (flattened to one buffer + offsets)
  in a single compiled call, no intermediate arrays.
* ``suffix_gt`` — compiled upper-bound binary search; the returned slice
  is taken in python so it stays a zero-copy *view* of the input row.
* ``bitset_and_counts`` — per-row popcount-of-AND over packed uint64
  bitsets (the quasi-clique in-set-degree bound).
* ``bitset_max_clique`` (backend *extra*) — the branch-and-bound maximum
  clique core of :func:`repro.algorithms.cliques.max_clique` on packed
  uint64 bitsets: explicit-stack DFS with popcount and greedy-coloring
  bounds, bit-for-bit mirroring the pure-python ``_max_clique_bitset``
  search order so both backends return identical cliques.

All integer bit manipulation sticks to explicit ``np.uint64`` constants:
numba promotes mixed uint64/int64 arithmetic to float64, which would be
both wrong and slow.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from . import kernels as _k

__all__ = ["NUMBA_AVAILABLE", "make_backend"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Identity decorator so kernel bodies stay plain functions."""
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(fn):
            return fn

        return wrap


_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.flags.writeable = False

# uint64 constants: see module docstring on numba's mixed-sign promotion.
_U1 = np.uint64(1)
_U16 = np.uint64(16)
_U32 = np.uint64(32)
_U48 = np.uint64(48)
_M16 = np.uint64(0xFFFF)

#: 16-bit popcount table (int64 so sums stay integral under numba).
_POP16 = np.array([bin(i).count("1") for i in range(1 << 16)],
                  dtype=np.int64)


# ---------------------------------------------------------------------------
# Kernel bodies (numba-compilable subset of python)
# ---------------------------------------------------------------------------


def _intersect_kernel(a, b, gallop_ratio):
    """Intersection of sorted duplicate-free int64 arrays; |a| <= |b|."""
    na = a.shape[0]
    nb = b.shape[0]
    out = np.empty(na, dtype=np.int64)
    k = 0
    if nb >= gallop_ratio * na:
        lo = 0
        for i in range(na):
            x = a[i]
            left = lo
            right = nb
            while left < right:
                mid = (left + right) >> 1
                if b[mid] < x:
                    left = mid + 1
                else:
                    right = mid
            if left < nb and b[left] == x:
                out[k] = x
                k += 1
            lo = left
        return out[:k]
    i = 0
    j = 0
    while i < na and j < nb:
        x = a[i]
        y = b[j]
        if x < y:
            i += 1
        elif y < x:
            j += 1
        else:
            out[k] = x
            k += 1
            i += 1
            j += 1
    return out[:k]


def _intersect_count_kernel(a, b, gallop_ratio):
    """``len(intersect(a, b))`` without an output array; |a| <= |b|."""
    na = a.shape[0]
    nb = b.shape[0]
    count = 0
    if nb >= gallop_ratio * na:
        lo = 0
        for i in range(na):
            x = a[i]
            left = lo
            right = nb
            while left < right:
                mid = (left + right) >> 1
                if b[mid] < x:
                    left = mid + 1
                else:
                    right = mid
            if left < nb and b[left] == x:
                count += 1
            lo = left
        return count
    i = 0
    j = 0
    while i < na and j < nb:
        x = a[i]
        y = b[j]
        if x < y:
            i += 1
        elif y < x:
            j += 1
        else:
            count += 1
            i += 1
            j += 1
    return count


def _suffix_pos_kernel(a, v):
    """Index of the first element strictly greater than ``v`` (sorted a)."""
    left = 0
    right = a.shape[0]
    while left < right:
        mid = (left + right) >> 1
        if a[mid] <= v:
            left = mid + 1
        else:
            right = mid
    return left


def _build_intersect_count_many(count_fn):
    """Fused frontier counting; parameterized so the compiled variant
    calls the compiled pairwise kernel and the interpreted variant the
    plain body."""

    def _intersect_count_many_kernel(a, flat, offsets, gallop_ratio):
        total = 0
        nrows = offsets.shape[0] - 1
        na = a.shape[0]
        for r in range(nrows):
            start = offsets[r]
            stop = offsets[r + 1]
            nb = stop - start
            if nb == 0:
                continue
            b = flat[start:stop]
            if na <= nb:
                total += count_fn(a, b, gallop_ratio)
            else:
                total += count_fn(b, a, gallop_ratio)
        return total

    return _intersect_count_many_kernel


def _build_bitset_and_counts(pop16):
    def _bitset_and_counts_kernel(rows_words, mask_words, out):
        nrows = rows_words.shape[0]
        nwords = rows_words.shape[1]
        for r in range(nrows):
            total = 0
            for w in range(nwords):
                x = rows_words[r, w] & mask_words[w]
                total += (pop16[x & _M16] + pop16[(x >> _U16) & _M16]
                          + pop16[(x >> _U32) & _M16] + pop16[x >> _U48])
            out[r] = total
        return out

    return _bitset_and_counts_kernel


def _build_bitset_max_clique(pop16):
    """Branch-and-bound maximum clique on packed uint64 bitsets.

    Explicit-stack mirror of ``repro.algorithms.cliques._max_clique_bitset``:

    * candidates are consumed highest position first;
    * bounds are (a) members + popcount(cand) and (b) members + a
      greedy-coloring bound peeling one independent set per color,
      lowest bit first;
    * only strictly-better cliques replace the incumbent.

    Identical search order + identical prune conditions = identical
    result to the pure path, which is what the cross-backend equivalence
    tests assert.
    """

    def _bitset_max_clique_kernel(rows, lower_bound):
        n = rows.shape[0]
        nwords = rows.shape[1]
        best_size = lower_bound if lower_bound > 0 else 0
        best = np.empty(n, dtype=np.int64)
        best_len = 0
        chosen = np.empty(n + 1, dtype=np.int64)
        cand = np.zeros((n + 2, nwords), dtype=np.uint64)
        entered = np.zeros(n + 2, dtype=np.uint8)
        tmp = np.zeros(nwords, dtype=np.uint64)
        q = np.zeros(nwords, dtype=np.uint64)

        for i in range(n):
            cand[0, i >> 6] |= _U1 << np.uint64(i & 63)
        depth = 0
        entered[0] = 0

        while depth >= 0:
            # popcount of the current candidate set
            pc = 0
            for w in range(nwords):
                x = cand[depth, w]
                pc += (pop16[x & _M16] + pop16[(x >> _U16) & _M16]
                       + pop16[(x >> _U32) & _M16] + pop16[x >> _U48])

            if entered[depth] == 0:
                entered[depth] = 1
                if pc == 0:
                    if depth > best_size:
                        best_size = depth
                        best_len = depth
                        for i in range(depth):
                            best[i] = chosen[i]
                    depth -= 1
                    continue
                if depth + pc <= best_size:
                    depth -= 1
                    continue
                # Greedy-coloring bound: peel independent sets, lowest
                # bit first (matches the pure-python bound()).
                ncol = 0
                for w in range(nwords):
                    tmp[w] = cand[depth, w]
                while True:
                    nonzero = False
                    for w in range(nwords):
                        if tmp[w] != np.uint64(0):
                            nonzero = True
                            break
                    if not nonzero:
                        break
                    ncol += 1
                    for w in range(nwords):
                        q[w] = tmp[w]
                    while True:
                        b = -1
                        for w in range(nwords):
                            word = q[w]
                            if word != np.uint64(0):
                                bit = 0
                                while (word >> np.uint64(bit)) & _U1 == np.uint64(0):
                                    bit += 1
                                b = (w << 6) + bit
                                break
                        if b < 0:
                            break
                        for w in range(nwords):
                            q[w] &= ~rows[b, w]
                        q[b >> 6] &= ~(_U1 << np.uint64(b & 63))
                        tmp[b >> 6] &= ~(_U1 << np.uint64(b & 63))
                    if depth + ncol > best_size:
                        break  # bound already clears the prune: stop early
                if depth + ncol <= best_size:
                    depth -= 1
                    continue

            # Loop step: take the highest remaining candidate.
            if pc == 0 or depth + pc <= best_size:
                depth -= 1
                continue
            p = -1
            for w in range(nwords - 1, -1, -1):
                word = cand[depth, w]
                if word != np.uint64(0):
                    bit = 63
                    while (word >> np.uint64(bit)) & _U1 == np.uint64(0):
                        bit -= 1
                    p = (w << 6) + bit
                    break
            cand[depth, p >> 6] &= ~(_U1 << np.uint64(p & 63))
            chosen[depth] = p
            for w in range(nwords):
                cand[depth + 1, w] = cand[depth, w] & rows[p, w]
            entered[depth + 1] = 0
            depth += 1

        return best[:best_len]

    return _bitset_max_clique_kernel


# Interpreted variants, always defined: the property tests run these
# bodies against the oracles even when numba is absent.
_intersect_count_many_py = _build_intersect_count_many(_intersect_count_kernel)
_bitset_and_counts_py = _build_bitset_and_counts(_POP16)
_bitset_max_clique_py = _build_bitset_max_clique(_POP16)


# ---------------------------------------------------------------------------
# Backend construction
# ---------------------------------------------------------------------------

_COMPILED: Dict[str, Callable] = {}


def _compiled_kernels() -> Dict[str, Callable]:
    """Compile (once) and return the njit dispatchers."""
    if _COMPILED:
        return _COMPILED
    intersect_c = njit(cache=True)(_intersect_kernel)
    count_c = njit(cache=True)(_intersect_count_kernel)
    _COMPILED.update(
        intersect=intersect_c,
        count=count_c,
        suffix_pos=njit(cache=True)(_suffix_pos_kernel),
        # Closures over other dispatchers / global arrays: numba caching
        # does not cover these reliably, so they compile per process.
        count_many=njit(_build_intersect_count_many(count_c)),
        bitset_and_counts=njit(_build_bitset_and_counts(_POP16)),
        bitset_max_clique=njit(_build_bitset_max_clique(_POP16)),
    )
    return _COMPILED


def _contiguous_ids(adj) -> np.ndarray:
    arr = _k.as_ids_array(adj)
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    return arr


def make_backend() -> Tuple[Dict[str, Callable], Dict[str, Callable]]:
    """Build the dispatched-kernel table + extras for the numba backend.

    Returns ``(kernels, extras)`` matching the contract in
    :mod:`repro.graph.kernels`.  Raises if numba is unavailable.
    """
    if not NUMBA_AVAILABLE:  # pragma: no cover - guarded by the dispatcher
        raise _k.KernelBackendError("numba is not importable")
    c = _compiled_kernels()
    c_intersect = c["intersect"]
    c_count = c["count"]
    c_suffix_pos = c["suffix_pos"]
    c_count_many = c["count_many"]
    c_bitset_counts = c["bitset_and_counts"]

    def intersect(a, b):
        a = _contiguous_ids(a)
        b = _contiguous_ids(b)
        if a.size > b.size:
            a, b = b, a
        if a.size == 0:
            return _EMPTY
        return c_intersect(a, b, _k.GALLOP_RATIO)

    def intersect_count(a, b):
        a = _contiguous_ids(a)
        b = _contiguous_ids(b)
        if a.size > b.size:
            a, b = b, a
        if a.size == 0 or b.size == 0:
            return 0
        return int(c_count(a, b, _k.GALLOP_RATIO))

    def intersect_many(arrays):
        arrs = []
        for a in arrays:
            arr = _contiguous_ids(a)
            if arr.size == 0:
                return _EMPTY
            arrs.append(arr)
        if not arrs:
            return _EMPTY
        arrs.sort(key=lambda x: x.size)
        acc = arrs[0]
        for nxt in arrs[1:]:
            small, large = (acc, nxt) if acc.size <= nxt.size else (nxt, acc)
            acc = c_intersect(small, large, _k.GALLOP_RATIO)
            if acc.size == 0:
                return _EMPTY
        return acc

    def intersect_count_many(a, arrays):
        a = _contiguous_ids(a)
        if a.size == 0:
            return 0
        rows = [_contiguous_ids(b) for b in arrays]
        if not rows:
            return 0
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        for i, r in enumerate(rows):
            offsets[i + 1] = offsets[i] + r.size
        if offsets[-1] == 0:
            return 0
        flat = np.concatenate(rows) if len(rows) > 1 else rows[0]
        return int(c_count_many(a, flat, offsets, _k.GALLOP_RATIO))

    def suffix_gt(adj, v):
        a = _contiguous_ids(adj)
        return a[int(c_suffix_pos(a, int(v))):]

    def bitset_and_counts(rows_words, mask_words):
        if rows_words.ndim == 1:
            rows_words = rows_words[None, :]
        out = np.empty(rows_words.shape[0], dtype=np.int64)
        return c_bitset_counts(np.ascontiguousarray(rows_words),
                               mask_words, out)

    kernels = {
        "intersect": intersect,
        "intersect_count": intersect_count,
        "intersect_many": intersect_many,
        "intersect_count_many": intersect_count_many,
        "suffix_gt": suffix_gt,
        "bitset_and_counts": bitset_and_counts,
    }

    c_bb = c["bitset_max_clique"]

    def bitset_max_clique(rows_words, lower_bound):
        rows_words = np.ascontiguousarray(rows_words)
        return c_bb(rows_words, int(lower_bound))

    extras = {"bitset_max_clique": bitset_max_clique}
    return kernels, extras
