"""Wire messages exchanged between workers.

G-thinker "batch[es] vertex requests and responses for transmission to
combat round-trip time and to ensure throughput" (desirability 5); the
message types here are therefore all *batches*.  Sizes are modeled in
bytes (8 B per vertex id / adjacency entry plus small headers) so the
transport and the DES can account bandwidth the way the paper's GigE
testbed would see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Message",
    "RequestBatch",
    "ResponseBatch",
    "TaskBatchTransfer",
    "estimate_adj_bytes",
]

_HEADER_BYTES = 24


def estimate_adj_bytes(adj: Sequence[int]) -> int:
    return 8 * len(adj)


@dataclass
class Message:
    """Base class; ``src`` and ``dst`` are worker ids."""

    src: int
    dst: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass
class RequestBatch(Message):
    """A batch of vertex pulls: "send me Γ(v) for these ids"."""

    vertex_ids: List[int] = field(default_factory=list)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8 * len(self.vertex_ids)


class ResponseBatch(Message):
    """A batch of ``(v, label, Γ(v))`` replies.

    Two storage forms, one interface:

    * **structure-of-arrays** (the fast path): ``ids``, ``labels``,
      ``offsets`` int64 arrays plus ``adj_concat``, the concatenation of
      all adjacency rows (row ``i`` is ``adj_concat[offsets[i]:offsets[i+1]]``).
      Built by the vectorized server and by the GTWIRE1 decoder without
      any per-vertex Python loop.
    * **legacy row list** via the ``vertices`` keyword — a list of
      ``(v, label, adj)`` tuples, still accepted everywhere.

    ``iter_rows()`` and the lazily-materialized ``vertices`` property
    read either form; SoA batches only pay for tuple construction if a
    caller actually asks for ``vertices``.
    """

    def __init__(
        self,
        src: int,
        dst: int,
        vertices: Optional[List[Tuple[int, int, Sequence[int]]]] = None,
        *,
        ids: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        adj_concat: Optional[np.ndarray] = None,
        offsets: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(src, dst)
        if ids is not None:
            if vertices is not None:
                raise ValueError("pass either vertices or the SoA arrays, not both")
            if labels is None or adj_concat is None or offsets is None:
                raise ValueError(
                    "SoA form needs ids, labels, adj_concat and offsets"
                )
            if len(offsets) != len(ids) + 1:
                raise ValueError(
                    f"offsets must have len(ids)+1 entries, got "
                    f"{len(offsets)} for {len(ids)} ids"
                )
        self.ids = ids
        self.labels = labels
        self.adj_concat = adj_concat
        self.offsets = offsets
        self._vertices = list(vertices) if vertices is not None else None

    @classmethod
    def from_soa(
        cls,
        src: int,
        dst: int,
        ids: np.ndarray,
        labels: np.ndarray,
        adj_concat: np.ndarray,
        offsets: np.ndarray,
    ) -> "ResponseBatch":
        return cls(src, dst, ids=ids, labels=labels,
                   adj_concat=adj_concat, offsets=offsets)

    @property
    def is_soa(self) -> bool:
        return self.ids is not None

    def __len__(self) -> int:
        if self.ids is not None:
            return len(self.ids)
        return len(self._vertices or ())

    def iter_rows(self) -> Iterator[Tuple[int, int, Sequence[int]]]:
        """Yield ``(v, label, adj)`` rows; SoA rows are zero-copy slices."""
        if self._vertices is not None:
            yield from self._vertices
            return
        if self.ids is None:
            return
        ids, labels = self.ids, self.labels
        adj_concat, offsets = self.adj_concat, self.offsets
        for i in range(len(ids)):
            yield (
                int(ids[i]),
                int(labels[i]),
                adj_concat[int(offsets[i]):int(offsets[i + 1])],
            )

    @property
    def vertices(self) -> List[Tuple[int, int, Sequence[int]]]:
        if self._vertices is None:
            self._vertices = list(self.iter_rows())
        return self._vertices

    def size_bytes(self) -> int:
        if self.ids is not None:
            return _HEADER_BYTES + 16 * len(self.ids) + 8 * len(self.adj_concat)
        return _HEADER_BYTES + sum(
            16 + estimate_adj_bytes(adj) for (_v, _label, adj) in self.vertices
        )

    def __repr__(self) -> str:  # dataclass-style, for test failure output
        return (
            f"ResponseBatch(src={self.src}, dst={self.dst}, "
            f"n={len(self)}, soa={self.is_soa})"
        )


@dataclass
class TaskBatchTransfer(Message):
    """A batch of serialized tasks shipped by work stealing."""

    payload: bytes = b""
    num_tasks: int = 0

    def size_bytes(self) -> int:
        return _HEADER_BYTES + len(self.payload)
