"""Wire messages exchanged between workers.

G-thinker "batch[es] vertex requests and responses for transmission to
combat round-trip time and to ensure throughput" (desirability 5); the
message types here are therefore all *batches*.  Sizes are modeled in
bytes (8 B per vertex id / adjacency entry plus small headers) so the
transport and the DES can account bandwidth the way the paper's GigE
testbed would see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

__all__ = [
    "Message",
    "RequestBatch",
    "ResponseBatch",
    "TaskBatchTransfer",
    "estimate_adj_bytes",
]

_HEADER_BYTES = 24


def estimate_adj_bytes(adj: Sequence[int]) -> int:
    return 8 * len(adj)


@dataclass
class Message:
    """Base class; ``src`` and ``dst`` are worker ids."""

    src: int
    dst: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass
class RequestBatch(Message):
    """A batch of vertex pulls: "send me Γ(v) for these ids"."""

    vertex_ids: List[int] = field(default_factory=list)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8 * len(self.vertex_ids)


@dataclass
class ResponseBatch(Message):
    """A batch of ``(v, label, Γ(v))`` replies."""

    vertices: List[Tuple[int, int, Tuple[int, ...]]] = field(default_factory=list)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + sum(
            16 + estimate_adj_bytes(adj) for (_v, _label, adj) in self.vertices
        )


@dataclass
class TaskBatchTransfer(Message):
    """A batch of serialized tasks shipped by work stealing."""

    payload: bytes = b""
    num_tasks: int = 0

    def size_bytes(self) -> int:
        return _HEADER_BYTES + len(self.payload)
