"""Batched message-passing substrate between workers."""

from . import wire
from .message import (
    Message,
    RequestBatch,
    ResponseBatch,
    TaskBatchTransfer,
    estimate_adj_bytes,
)
from .transport import Transport

__all__ = [
    "Message",
    "RequestBatch",
    "ResponseBatch",
    "TaskBatchTransfer",
    "estimate_adj_bytes",
    "Transport",
    "wire",
]
