"""Transports connecting workers.

Two implementations of one polling contract (``send`` / ``poll`` /
``flush_outgoing``):

* :class:`Transport` — all workers in one process, per-worker mailboxes.
  Counts messages and bytes (for the IO-bound vs CPU-bound analysis),
  tracks in-flight messages (termination detection), and supports *timed
  delivery*: the DES runtime stamps each message with an
  ``available_at`` virtual time computed from a
  :class:`~repro.core.config.NetworkModel`; the serial and threaded
  runtimes deliver immediately.
* :class:`ProcessTransport` — one instance per *worker process*
  (``runtime="process"``).  Outgoing messages accumulate in
  per-destination buffers and are drained as one encoded batch per
  destination through ``multiprocessing`` queues — the paper's batched
  sending, applied to IPC: many small vertex pulls cost one queue
  round-trip, not many.  Batches are encoded by this transport itself
  (``wire_format="binary"`` → :mod:`repro.net.wire` frames with raw
  ``int64`` adjacency payloads; ``"pickle"`` → one pickle per batch) so
  the exact bytes crossing the process boundary are measured under the
  ``ipc:payload_bytes`` metric.
"""

from __future__ import annotations

import multiprocessing.connection as mp_connection
import pickle
import queue as queue_mod
import threading
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from ..core.config import NetworkModel
from ..core.metrics import MetricsRegistry
from . import wire
from .message import Message

__all__ = ["Transport", "ProcessTransport"]


class _Mailbox:
    __slots__ = ("lock", "queue")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.queue: Deque[Tuple[float, Message]] = deque()


class Transport:
    """Routes messages between ``num_workers`` mailboxes."""

    def __init__(
        self,
        num_workers: int,
        metrics: Optional[MetricsRegistry] = None,
        network: Optional[NetworkModel] = None,
        timed: bool = False,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._mailboxes = [_Mailbox() for _ in range(num_workers)]
        self._metrics = metrics or MetricsRegistry()
        self._network = network or NetworkModel()
        self._timed = timed
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()
        # Per-destination link clock: models FIFO serialization on the
        # receiver's NIC so that the DES cannot deliver two large batches
        # to the same worker "for free" at the same instant.
        self._link_free_at = [0.0] * num_workers
        # Optional hook ``(dst_worker, available_at)`` invoked on every
        # send; the DES runtime uses it to wake the destination's comm
        # entity exactly when the message becomes deliverable.
        self.deliver_hook = None

    @property
    def num_workers(self) -> int:
        return len(self._mailboxes)

    def send(self, message: Message, now: float = 0.0) -> float:
        """Enqueue ``message`` for its destination; returns delivery time.

        Local (``src == dst``) messages bypass the network model — the
        paper's workers answer local pulls directly from ``T_local``, so
        same-worker messages only occur in degenerate configurations.
        """
        dst = message.dst
        if not 0 <= dst < len(self._mailboxes):
            raise ValueError(f"invalid destination worker {dst}")
        size = message.size_bytes()
        self._metrics.add("net:messages")
        self._metrics.add("net:bytes", size)
        if self._timed and message.src != dst:
            start = max(now, self._link_free_at[dst])
            available_at = start + self._network.transfer_time(size)
            self._link_free_at[dst] = available_at
        else:
            available_at = now
        box = self._mailboxes[dst]
        with box.lock:
            box.queue.append((available_at, message))
        with self._in_flight_lock:
            self._in_flight += 1
        if self.deliver_hook is not None:
            self.deliver_hook(dst, available_at)
        return available_at

    def poll(self, worker_id: int, now: float = float("inf"), limit: int = 0) -> List[Message]:
        """Dequeue messages for ``worker_id`` whose delivery time has passed.

        With the default ``now=inf`` (untimed runtimes) everything queued
        is returned.  ``limit`` bounds the number returned (0 = all).
        """
        box = self._mailboxes[worker_id]
        out: List[Message] = []
        requeue: List[Tuple[float, Message]] = []
        with box.lock:
            while box.queue:
                available_at, msg = box.queue.popleft()
                if available_at <= now and (limit == 0 or len(out) < limit):
                    out.append(msg)
                else:
                    requeue.append((available_at, msg))
            for item in requeue:
                box.queue.append(item)
        if out:
            with self._in_flight_lock:
                self._in_flight -= len(out)
        return out

    def flush_outgoing(self) -> None:
        """No-op: in-process sends deliver straight to the mailbox."""

    def next_delivery_time(self, worker_id: int) -> Optional[float]:
        """Earliest pending delivery for a worker (DES wake-up hint)."""
        box = self._mailboxes[worker_id]
        with box.lock:
            if not box.queue:
                return None
            return min(t for t, _ in box.queue)

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet polled (termination detection)."""
        with self._in_flight_lock:
            return self._in_flight

    @property
    def total_bytes(self) -> float:
        return self._metrics.get("net:bytes")

    @property
    def total_messages(self) -> float:
        return self._metrics.get("net:messages")


class ProcessTransport:
    """Batched IPC message routing for one worker process.

    Every worker process holds the full list of data queues (one inbox
    per worker) plus its own id.  ``send`` buffers per destination;
    buffers drain as a single ``queue.put`` (one pickle per batch) when
    they reach ``max_batch_messages``, on :meth:`flush_outgoing`, or on
    the next :meth:`poll`.  Termination detection cannot observe a
    cross-process in-flight count directly, so the transport keeps
    monotone ``sent_count`` / ``received_count`` counters that workers
    report at every master sync: globally, ``sum(sent) == sum(received)``
    together with the master's double-snapshot progress check means the
    wire is empty.
    """

    def __init__(
        self,
        worker_id: int,
        queues: Sequence,
        metrics: Optional[MetricsRegistry] = None,
        max_batch_messages: int = 64,
        wire_format: str = "binary",
    ) -> None:
        if not 0 <= worker_id < len(queues):
            raise ValueError(f"worker_id {worker_id} out of range")
        if wire_format not in ("binary", "pickle"):
            raise ValueError(f"unknown wire_format {wire_format!r}")
        self._worker_id = worker_id
        self._queues = list(queues)
        self._metrics = metrics or MetricsRegistry()
        self._max_batch = max(1, max_batch_messages)
        self._wire_format = wire_format
        self._buffers: List[List[Message]] = [[] for _ in queues]
        #: Messages decoded from an inbox batch but beyond a caller's
        #: ``limit`` — returned first by the next :meth:`poll`.  They do
        #: not count as received until actually handed to the caller, so
        #: the sent/received termination arithmetic still sees them as
        #: in flight.
        self._overflow: Deque[Message] = deque()
        self.sent_count = 0
        self.received_count = 0

    @property
    def num_workers(self) -> int:
        return len(self._queues)

    def send(self, message: Message, now: float = 0.0) -> float:
        dst = message.dst
        if not 0 <= dst < len(self._queues):
            raise ValueError(f"invalid destination worker {dst}")
        self._metrics.add("net:messages")
        self._metrics.add("net:bytes", message.size_bytes())
        buf = self._buffers[dst]
        buf.append(message)
        self.sent_count += 1
        if len(buf) >= self._max_batch:
            self._flush_dst(dst)
        return now

    def _flush_dst(self, dst: int) -> None:
        buf = self._buffers[dst]
        if buf:
            self._buffers[dst] = []
            if self._wire_format == "binary":
                payload = wire.encode_batch(buf)
            else:
                payload = pickle.dumps(buf, protocol=pickle.HIGHEST_PROTOCOL)
            self._queues[dst].put(payload)
            self._metrics.add("ipc:batches")
            self._metrics.add("ipc:batched_messages", len(buf))
            self._metrics.add("ipc:payload_bytes", len(payload))

    def flush_outgoing(self) -> None:
        """Drain every per-destination buffer onto its queue."""
        for dst in range(len(self._buffers)):
            self._flush_dst(dst)

    def pending_unflushed(self) -> int:
        """Messages buffered but not yet handed to a queue."""
        return sum(len(b) for b in self._buffers)

    def wait_for_activity(self, timeout: float, extra: Sequence = ()) -> bool:
        """Block up to ``timeout`` for inbox data or ``extra`` readables.

        The idle-wait primitive of the process worker's serve loop,
        mirroring :meth:`repro.net.tcp.TcpTransport.wait_for_activity`:
        ``extra`` carries the control pipe so one wait covers both
        planes.  Returns immediately when parked overflow messages are
        already deliverable.  Waking is best-effort — a spurious return
        just costs one serve-loop iteration.
        """
        if self._overflow:
            return True
        wait_on = list(extra)
        reader = getattr(self._queues[self._worker_id], "_reader", None)
        if reader is not None:
            wait_on.append(reader)
        if not wait_on:
            return False
        try:
            return bool(mp_connection.wait(wait_on, timeout=timeout))
        except OSError:
            return True

    def poll(self, worker_id: int, now: float = float("inf"), limit: int = 0) -> List[Message]:
        """Drain this worker's inbox (non-blocking); flushes first."""
        if worker_id != self._worker_id:
            raise ValueError(
                f"ProcessTransport of worker {self._worker_id} asked to poll "
                f"worker {worker_id}'s inbox"
            )
        self.flush_outgoing()
        out: List[Message] = []
        overflow = self._overflow
        while overflow and (not limit or len(out) < limit):
            out.append(overflow.popleft())
        inbox = self._queues[self._worker_id]
        while not limit or len(out) < limit:
            try:
                batch = inbox.get_nowait()
            except queue_mod.Empty:
                break
            if isinstance(batch, (bytes, bytearray)):
                # Magic-sniffing decode: binary frames or a pickled batch.
                decoded = wire.decode_batch(bytes(batch))
            else:
                decoded = list(batch)  # legacy raw-list payload
            if limit:
                # A decoded batch may overshoot ``limit`` (batches are
                # sender-sized); park the excess for the next poll so
                # the Transport.poll contract — never more than
                # ``limit`` messages — holds here too.
                room = limit - len(out)
                out.extend(decoded[:room])
                overflow.extend(decoded[room:])
            else:
                out.extend(decoded)
        self.received_count += len(out)
        return out
