"""Binary wire format for ``runtime="process"`` IPC batches.

``ProcessTransport`` drains each per-destination buffer as one payload
per ``queue.put``.  Pickling a list of :class:`ResponseBatch` objects
serializes every adjacency list as a generic Python object — per-element
type tags, memo records, and (for ndarray rows) the full
``__reduce__`` machinery.  This module replaces that with a flat frame
format built around ``ndarray.tobytes()`` / ``np.frombuffer``:

* one 8-byte magic + an int64 message count, then one frame per message;
* every header field is a little-endian int64 and every variable-length
  payload is padded to a multiple of 8 bytes, so *all* array reads on
  the receiving side are aligned ``np.frombuffer`` views into the single
  received buffer — adjacency lists are decoded with **zero copies and
  zero per-element Python objects**;
* a ``ResponseBatch`` frame is struct-of-arrays: ``ids``, ``labels``
  and ``degrees`` arrays followed by the concatenation of all adjacency
  rows; rows are recovered by slicing at the cumulative-degree offsets;
* message types without a dedicated frame (and any future ones) travel
  as pickled sub-frames, so the codec never rejects a message;
* :func:`decode_batch` sniffs the magic and falls back to
  ``pickle.loads`` for payloads produced by the ``"pickle"`` wire
  format, so mixed-version runs stay decodable.

The decoded adjacency arrays are read-only views into the received
bytes object; like the ``SharedCSR`` views, they stay valid as long as
any task holds them because the view keeps the buffer referenced.
"""

from __future__ import annotations

import pickle
from typing import List, Sequence

import numpy as np

from .message import Message, RequestBatch, ResponseBatch, TaskBatchTransfer

__all__ = ["MAGIC", "encode_batch", "decode_batch"]

MAGIC = b"GTWIRE1\x00"

_KIND_PICKLE = 0
_KIND_REQUEST = 1
_KIND_RESPONSE = 2
_KIND_TASKS = 3

_PAD = b"\x00" * 7


def _ints(*values: int) -> bytes:
    return np.array(values, dtype="<i8").tobytes()


def _padded(raw: bytes) -> bytes:
    rem = len(raw) % 8
    return raw if rem == 0 else raw + _PAD[: 8 - rem]


def _ids_bytes(ids: Sequence[int]) -> bytes:
    if isinstance(ids, np.ndarray):
        return np.ascontiguousarray(ids, dtype="<i8").tobytes()
    return np.asarray(ids, dtype="<i8").tobytes()


def encode_batch(messages: Sequence[Message]) -> bytes:
    """Encode a transport batch as one contiguous binary payload."""
    chunks: List[bytes] = [MAGIC, _ints(len(messages))]
    for msg in messages:
        if type(msg) is RequestBatch:
            chunks.append(
                _ints(_KIND_REQUEST, msg.src, msg.dst, len(msg.vertex_ids))
            )
            chunks.append(_ids_bytes(msg.vertex_ids))
        elif type(msg) is ResponseBatch:
            if msg.is_soa:
                # Struct-of-arrays batch: the frame layout *is* the
                # in-memory layout, so encoding is four buffer dumps
                # with no per-vertex Python loop.
                chunks.append(_ints(_KIND_RESPONSE, msg.src, msg.dst,
                                    len(msg.ids)))
                chunks.append(_ids_bytes(msg.ids))
                chunks.append(_ids_bytes(msg.labels))
                chunks.append(
                    np.diff(np.asarray(msg.offsets, dtype="<i8")).tobytes()
                )
                chunks.append(_ids_bytes(msg.adj_concat))
            else:
                n = len(msg.vertices)
                ids = np.empty(n, dtype="<i8")
                labels = np.empty(n, dtype="<i8")
                degrees = np.empty(n, dtype="<i8")
                rows: List[bytes] = []
                for i, (v, label, adj) in enumerate(msg.vertices):
                    ids[i] = v
                    labels[i] = label
                    degrees[i] = len(adj)
                    rows.append(_ids_bytes(adj))
                chunks.append(_ints(_KIND_RESPONSE, msg.src, msg.dst, n))
                chunks.append(ids.tobytes())
                chunks.append(labels.tobytes())
                chunks.append(degrees.tobytes())
                chunks.extend(rows)
        elif type(msg) is TaskBatchTransfer:
            chunks.append(
                _ints(_KIND_TASKS, msg.src, msg.dst, msg.num_tasks,
                      len(msg.payload))
            )
            chunks.append(_padded(msg.payload))
        else:
            raw = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
            chunks.append(_ints(_KIND_PICKLE, msg.src, msg.dst, len(raw)))
            chunks.append(_padded(raw))
    return b"".join(chunks)


class _Cursor:
    """Sequential reader of int64 headers and aligned array payloads."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes, pos: int) -> None:
        self.buf = buf
        self.pos = pos

    def read_ints(self, count: int) -> np.ndarray:
        out = np.frombuffer(self.buf, dtype="<i8", count=count, offset=self.pos)
        self.pos += 8 * count
        return out

    def read_array(self, count: int) -> np.ndarray:
        return self.read_ints(count)

    def read_bytes(self, length: int) -> bytes:
        raw = self.buf[self.pos : self.pos + length]
        self.pos += length + (-length % 8)
        return raw


def decode_batch(payload: bytes) -> List[Message]:
    """Decode one transport payload back into a list of messages.

    Payloads not starting with :data:`MAGIC` are assumed to be pickled
    batches (``wire_format="pickle"``) and handed to ``pickle.loads``.
    """
    if payload[:8] != MAGIC:
        return pickle.loads(payload)
    cur = _Cursor(payload, 8)
    (count,) = cur.read_ints(1)
    out: List[Message] = []
    for _ in range(int(count)):
        kind, src, dst = (int(x) for x in cur.read_ints(3))
        if kind == _KIND_REQUEST:
            (n,) = cur.read_ints(1)
            ids = cur.read_array(int(n))
            out.append(RequestBatch(src=src, dst=dst, vertex_ids=ids.tolist()))
        elif kind == _KIND_RESPONSE:
            (n,) = cur.read_ints(1)
            n = int(n)
            ids = cur.read_array(n)
            labels = cur.read_array(n)
            degrees = cur.read_array(n)
            offsets = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(degrees, out=offsets[1:])
            adj_concat = cur.read_array(int(offsets[-1]))
            out.append(ResponseBatch.from_soa(
                src, dst, ids=ids, labels=labels,
                adj_concat=adj_concat, offsets=offsets,
            ))
        elif kind == _KIND_TASKS:
            num_tasks, length = (int(x) for x in cur.read_ints(2))
            raw = cur.read_bytes(length)
            out.append(TaskBatchTransfer(src=src, dst=dst, payload=raw,
                                         num_tasks=num_tasks))
        elif kind == _KIND_PICKLE:
            (length,) = cur.read_ints(1)
            out.append(pickle.loads(cur.read_bytes(int(length))))
        else:
            raise ValueError(f"unknown wire frame kind {kind}")
    return out
