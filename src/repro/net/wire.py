"""Binary wire format for ``runtime="process"`` IPC batches.

``ProcessTransport`` drains each per-destination buffer as one payload
per ``queue.put``.  Pickling a list of :class:`ResponseBatch` objects
serializes every adjacency list as a generic Python object — per-element
type tags, memo records, and (for ndarray rows) the full
``__reduce__`` machinery.  This module replaces that with a flat frame
format built around ``ndarray.tobytes()`` / ``np.frombuffer``:

* one 8-byte magic + an int64 message count, then one frame per message;
* every header field is a little-endian int64 and every variable-length
  payload is padded to a multiple of 8 bytes, so *all* array reads on
  the receiving side are aligned ``np.frombuffer`` views into the single
  received buffer — adjacency lists are decoded with **zero copies and
  zero per-element Python objects**;
* a ``ResponseBatch`` frame is struct-of-arrays: ``ids``, ``labels``
  and ``degrees`` arrays followed by the concatenation of all adjacency
  rows; rows are recovered by slicing at the cumulative-degree offsets;
* message types without a dedicated frame (and any future ones) travel
  as pickled sub-frames, so the codec never rejects a message;
* :func:`decode_batch` sniffs the magic and falls back to
  ``pickle.loads`` for payloads produced by the ``"pickle"`` wire
  format, so mixed-version runs stay decodable.

The decoded adjacency arrays are read-only views into the received
bytes object; like the ``SharedCSR`` views, they stay valid as long as
any task holds them because the view keeps the buffer referenced.
"""

from __future__ import annotations

import pickle
from typing import List, Sequence

import numpy as np

from ..core.errors import WireDecodeError
from .message import Message, RequestBatch, ResponseBatch, TaskBatchTransfer

__all__ = ["MAGIC", "encode_batch", "decode_batch", "WireDecodeError"]

MAGIC = b"GTWIRE1\x00"

_KIND_PICKLE = 0
_KIND_REQUEST = 1
_KIND_RESPONSE = 2
_KIND_TASKS = 3

_PAD = b"\x00" * 7


def _ints(*values: int) -> bytes:
    return np.array(values, dtype="<i8").tobytes()


def _padded(raw: bytes) -> bytes:
    rem = len(raw) % 8
    return raw if rem == 0 else raw + _PAD[: 8 - rem]


def _ids_bytes(ids: Sequence[int]) -> bytes:
    if isinstance(ids, np.ndarray):
        return np.ascontiguousarray(ids, dtype="<i8").tobytes()
    return np.asarray(ids, dtype="<i8").tobytes()


def encode_batch(messages: Sequence[Message]) -> bytes:
    """Encode a transport batch as one contiguous binary payload."""
    chunks: List[bytes] = [MAGIC, _ints(len(messages))]
    for msg in messages:
        if type(msg) is RequestBatch:
            chunks.append(
                _ints(_KIND_REQUEST, msg.src, msg.dst, len(msg.vertex_ids))
            )
            chunks.append(_ids_bytes(msg.vertex_ids))
        elif type(msg) is ResponseBatch:
            if msg.is_soa:
                # Struct-of-arrays batch: the frame layout *is* the
                # in-memory layout, so encoding is four buffer dumps
                # with no per-vertex Python loop.
                chunks.append(_ints(_KIND_RESPONSE, msg.src, msg.dst,
                                    len(msg.ids)))
                chunks.append(_ids_bytes(msg.ids))
                chunks.append(_ids_bytes(msg.labels))
                chunks.append(
                    np.diff(np.asarray(msg.offsets, dtype="<i8")).tobytes()
                )
                chunks.append(_ids_bytes(msg.adj_concat))
            else:
                n = len(msg.vertices)
                ids = np.empty(n, dtype="<i8")
                labels = np.empty(n, dtype="<i8")
                degrees = np.empty(n, dtype="<i8")
                rows: List[bytes] = []
                for i, (v, label, adj) in enumerate(msg.vertices):
                    ids[i] = v
                    labels[i] = label
                    degrees[i] = len(adj)
                    rows.append(_ids_bytes(adj))
                chunks.append(_ints(_KIND_RESPONSE, msg.src, msg.dst, n))
                chunks.append(ids.tobytes())
                chunks.append(labels.tobytes())
                chunks.append(degrees.tobytes())
                chunks.extend(rows)
        elif type(msg) is TaskBatchTransfer:
            chunks.append(
                _ints(_KIND_TASKS, msg.src, msg.dst, msg.num_tasks,
                      len(msg.payload))
            )
            chunks.append(_padded(msg.payload))
        else:
            raw = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
            chunks.append(_ints(_KIND_PICKLE, msg.src, msg.dst, len(raw)))
            chunks.append(_padded(raw))
    return b"".join(chunks)


class _Cursor:
    """Sequential reader of int64 headers and aligned array payloads.

    Every read is bounds-checked against the buffer end and raises
    :class:`WireDecodeError` on truncation — over a socket a frame can
    arrive short or corrupted, and a raw ``struct.error`` / numpy
    ``ValueError`` out of the decoder would be indistinguishable from a
    framework bug.
    """

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes, pos: int) -> None:
        self.buf = buf
        self.pos = pos

    def _require(self, nbytes: int, what: str) -> None:
        if nbytes < 0:
            raise WireDecodeError(
                f"negative length ({nbytes} bytes) for {what} at offset {self.pos}"
            )
        if self.pos + nbytes > len(self.buf):
            raise WireDecodeError(
                f"truncated frame: {what} needs {nbytes} bytes at offset "
                f"{self.pos} but the buffer ends at {len(self.buf)}"
            )

    def read_ints(self, count: int, what: str = "int64 header") -> np.ndarray:
        if count < 0:
            raise WireDecodeError(
                f"negative count ({count}) for {what} at offset {self.pos}"
            )
        self._require(8 * count, what)
        out = np.frombuffer(self.buf, dtype="<i8", count=count, offset=self.pos)
        self.pos += 8 * count
        return out

    def read_array(self, count: int, what: str = "int64 array") -> np.ndarray:
        return self.read_ints(count, what)

    def read_bytes(self, length: int, what: str = "byte payload") -> bytes:
        self._require(length, what)
        raw = self.buf[self.pos : self.pos + length]
        self.pos += length + (-length % 8)
        return raw


def _checked_count(value: int, what: str) -> int:
    value = int(value)
    if value < 0:
        raise WireDecodeError(f"negative count ({value}) for {what}")
    return value


def _pickle_loads(raw: bytes, what: str):
    try:
        return pickle.loads(raw)
    except Exception as exc:
        # pickle raises UnpicklingError, EOFError, ValueError,
        # AttributeError, ... depending on where the bytes go wrong;
        # normalize them all to the typed decode error.
        raise WireDecodeError(f"cannot unpickle {what}: {exc!r}") from exc


def decode_batch(payload: bytes) -> List[Message]:
    """Decode one transport payload back into a list of messages.

    Payloads not starting with :data:`MAGIC` are assumed to be pickled
    batches (``wire_format="pickle"``) and handed to ``pickle.loads``.
    Any malformed input — truncated frames, counts or lengths pointing
    past the buffer end, negative counts, bad magic with unpicklable
    fallback bytes — raises :class:`WireDecodeError` rather than leaking
    ``struct.error`` / ``UnpicklingError`` / raw ``ValueError``.
    """
    if payload[:8] != MAGIC:
        decoded = _pickle_loads(payload, "non-GTWIRE payload")
        if not isinstance(decoded, list):
            raise WireDecodeError(
                f"pickled payload is {type(decoded).__name__}, expected a "
                f"message batch (list)"
            )
        return decoded
    cur = _Cursor(payload, 8)
    count = _checked_count(cur.read_ints(1, "message count")[0], "message count")
    out: List[Message] = []
    for i in range(count):
        kind, src, dst = (
            int(x) for x in cur.read_ints(3, f"frame header of message {i}")
        )
        if kind == _KIND_REQUEST:
            n = _checked_count(cur.read_ints(1, "request id count")[0],
                               "request id count")
            ids = cur.read_array(n, "request vertex ids")
            out.append(RequestBatch(src=src, dst=dst, vertex_ids=ids.tolist()))
        elif kind == _KIND_RESPONSE:
            n = _checked_count(cur.read_ints(1, "response vertex count")[0],
                               "response vertex count")
            ids = cur.read_array(n, "response ids")
            labels = cur.read_array(n, "response labels")
            degrees = cur.read_array(n, "response degrees")
            if n and int(degrees.min()) < 0:
                raise WireDecodeError(
                    f"negative adjacency degree ({int(degrees.min())}) in "
                    f"response frame {i}"
                )
            offsets = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(degrees, out=offsets[1:])
            adj_concat = cur.read_array(int(offsets[-1]),
                                        "concatenated adjacency rows")
            out.append(ResponseBatch.from_soa(
                src, dst, ids=ids, labels=labels,
                adj_concat=adj_concat, offsets=offsets,
            ))
        elif kind == _KIND_TASKS:
            header = cur.read_ints(2, "task transfer header")
            num_tasks = _checked_count(header[0], "task count")
            length = _checked_count(header[1], "task payload length")
            raw = cur.read_bytes(length, "task batch payload")
            out.append(TaskBatchTransfer(src=src, dst=dst, payload=raw,
                                         num_tasks=num_tasks))
        elif kind == _KIND_PICKLE:
            length = _checked_count(cur.read_ints(1, "pickle frame length")[0],
                                    "pickle frame length")
            raw = cur.read_bytes(length, "pickle frame payload")
            out.append(_pickle_loads(raw, f"pickle frame of message {i}"))
        else:
            raise WireDecodeError(f"unknown wire frame kind {kind}")
    return out
