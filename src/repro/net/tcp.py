"""TCP framing and the ``runtime="cluster"`` data-plane transport.

Two layers, both built on one length-prefixed frame format (an 8-byte
little-endian unsigned payload length followed by the payload bytes):

* :class:`ControlChannel` — the master⇄node control plane.  One framed,
  pickled Python object per frame (the same command tuples the process
  runtime sends down its pipes), with timeout-bounded blocking sends and
  receives over a non-blocking socket.  EOF/reset surfaces as
  :class:`ChannelClosed`; corrupt frames as
  :class:`~repro.core.errors.WireDecodeError`.
* :class:`TcpTransport` — the node⇄node data plane, a drop-in for
  :class:`~repro.net.transport.ProcessTransport`'s polling contract
  (``send`` / ``poll`` / ``flush_outgoing`` / ``pending_unflushed`` plus
  the monotone ``sent_count`` / ``received_count`` the Safra-style
  double-snapshot termination arithmetic reads).  Outgoing messages
  buffer per destination and drain as **one frame per batch** whose
  payload is byte-for-byte the :func:`repro.net.wire.encode_batch`
  GTWIRE1 encoding (or one pickle per batch with
  ``wire_format="pickle"``) over a persistent socket per peer.  Receive
  buffers are bounded by :data:`MAX_FRAME_BYTES` — a garbage length
  prefix cannot make a node allocate without limit — and every malformed
  payload raises ``WireDecodeError`` instead of a raw ``struct``/pickle
  error (HUGE's bounded-receive-buffer discipline, applied to our
  frames).

Self-addressed messages never touch a socket: they are encoded and
decoded through the same codec (so the bytes metric stays honest) via an
in-memory loopback deque.  Per-destination byte counters are split into
``net:bytes_local`` (self), ``net:bytes_same_host`` and
``net:bytes_cross_host`` so a cluster benchmark can report how much
traffic actually crossed machines.
"""

from __future__ import annotations

import pickle
import selectors
import socket
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.config import parse_host_port
from ..core.errors import GThinkerError, WireDecodeError
from ..core.metrics import MetricsRegistry
from . import wire
from .message import Message

__all__ = [
    "MAX_FRAME_BYTES",
    "ChannelClosed",
    "PeerLostError",
    "ControlChannel",
    "TcpTransport",
    "listen_socket",
    "connect_with_retry",
]

#: Upper bound on a single frame's payload.  A corrupt or hostile length
#: prefix beyond this raises :class:`WireDecodeError` instead of driving
#: an unbounded receive-buffer allocation.
MAX_FRAME_BYTES = 1 << 32

_LEN_BYTES = 8
_RECV_CHUNK = 1 << 16


class ChannelClosed(GThinkerError):
    """The remote end of a control channel went away (EOF or reset)."""


class PeerLostError(GThinkerError):
    """A data-plane peer could not be reached within the connect budget.

    The cluster runtime treats this like a machine loss: the node
    reports it as *recoverable* and the master rolls the whole job back
    to the last sync-barrier checkpoint.
    """

    def __init__(self, peer: int, message: str) -> None:
        super().__init__(f"cluster peer {peer}: {message}")
        self.peer = peer


def _frame_header(length: int) -> bytes:
    return length.to_bytes(_LEN_BYTES, "little")


def _parse_frame_length(header: bytes) -> int:
    length = int.from_bytes(header, "little")
    if length > MAX_FRAME_BYTES:
        raise WireDecodeError(
            f"frame length {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}); corrupt or misaligned stream"
        )
    return length


def listen_socket(host: str, port: int, backlog: int = 16) -> socket.socket:
    """A bound, listening, non-blocking TCP socket."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    sock.setblocking(False)
    return sock


def connect_with_retry(
    host: str, port: int, timeout_s: float, what: str = "peer"
) -> socket.socket:
    """Connect, retrying until ``timeout_s``; raises ``OSError`` after.

    Retries cover the startup race (a peer that has not finished binding
    yet) and transient RST during recovery respawns.
    """
    deadline = time.monotonic() + timeout_s
    delay = 0.01
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout_s)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            if time.monotonic() + delay > deadline:
                raise
            time.sleep(delay)
            delay = min(delay * 2, 0.25)


def _extract_frames(buf: bytearray) -> List[bytes]:
    """Pop every complete length-prefixed frame off the front of ``buf``."""
    frames: List[bytes] = []
    while len(buf) >= _LEN_BYTES:
        length = _parse_frame_length(bytes(buf[:_LEN_BYTES]))
        if len(buf) - _LEN_BYTES < length:
            break
        frames.append(bytes(buf[_LEN_BYTES : _LEN_BYTES + length]))
        del buf[: _LEN_BYTES + length]
    return frames


class ControlChannel:
    """Framed, pickled request/reply objects over one socket.

    Both ends are symmetric; timeouts bound every blocking operation so
    a dead peer is detected by the caller's deadline, never by an
    indefinite hang.
    """

    def __init__(self, sock: socket.socket, send_timeout_s: float = 60.0) -> None:
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - already-closed race
            pass
        self._sock = sock
        self._send_timeout_s = send_timeout_s
        self._buf = bytearray()
        self._frames: Deque[bytes] = deque()
        self._closed = False

    def fileno(self) -> int:
        return self._sock.fileno()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass

    # -- sending ----------------------------------------------------------

    def send_obj(self, obj) -> None:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        data = memoryview(_frame_header(len(payload)) + payload)
        deadline = time.monotonic() + self._send_timeout_s
        while data:
            try:
                sent = self._sock.send(data)
                data = data[sent:]
            except (BlockingIOError, InterruptedError):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ChannelClosed(
                        f"control send did not complete within "
                        f"{self._send_timeout_s}s"
                    )
                selectors_wait_writable(self._sock, min(remaining, 0.25))
            except OSError as exc:
                self._closed = True
                raise ChannelClosed(f"control peer went away: {exc!r}") from exc

    # -- receiving --------------------------------------------------------

    def _pump(self) -> None:
        """Drain whatever the socket has ready into the frame queue.

        EOF/reset only *marks* the channel closed; frames already
        received stay readable — a peer that sends its final report and
        immediately closes must not lose that report to the FIN racing
        the read.
        """
        while True:
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._closed = True
                return
            if not chunk:
                self._closed = True
                if self._buf:
                    # A partial frame at EOF is corruption, not clean close.
                    raise WireDecodeError(
                        f"control channel closed mid-frame with "
                        f"{len(self._buf)} buffered bytes"
                    )
                return
            self._buf.extend(chunk)
            self._frames.extend(_extract_frames(self._buf))

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a complete object frame is available to receive.

        Raises :class:`ChannelClosed` once the peer is gone *and* every
        buffered frame has been consumed.
        """
        if self._frames:
            return True
        if self._closed:
            raise ChannelClosed("control peer closed the connection")
        deadline = time.monotonic() + timeout
        while True:
            with selectors.DefaultSelector() as sel:
                sel.register(self._sock, selectors.EVENT_READ)
                ready = sel.select(max(0.0, deadline - time.monotonic()))
            if ready:
                self._pump()
                if self._frames:
                    return True
                if self._closed:
                    raise ChannelClosed("control peer closed the connection")
            if time.monotonic() >= deadline:
                return bool(self._frames)

    def recv_obj(self, timeout: Optional[float] = None):
        """Receive one object; raises ``TimeoutError`` when none arrives."""
        if timeout is not None and not self.poll(timeout):
            raise TimeoutError(f"no control frame within {timeout}s")
        while not self._frames:
            self.poll(0.25)
        raw = self._frames.popleft()
        try:
            return pickle.loads(raw)
        except Exception as exc:
            raise WireDecodeError(
                f"cannot unpickle control frame: {exc!r}"
            ) from exc

    def drain_nowait(self) -> List[Any]:
        """Decode every already-buffered frame without blocking.

        The master's multiplexed event drain: one non-blocking socket
        pump, then every complete frame is unpickled and returned in
        arrival order.  Raises :class:`ChannelClosed` when the peer is
        gone and nothing was decoded (a silently-dead node must surface
        now, not after a reply timeout), and :class:`WireDecodeError`
        on a corrupt frame.
        """
        if not self._closed:
            self._pump()
        out: List[Any] = []
        while self._frames:
            raw = self._frames.popleft()
            try:
                out.append(pickle.loads(raw))
            except Exception as exc:
                raise WireDecodeError(
                    f"cannot unpickle control frame: {exc!r}"
                ) from exc
        if not out and self._closed:
            raise ChannelClosed("control peer closed the connection")
        return out


def selectors_wait_writable(sock: socket.socket, timeout: float) -> None:
    with selectors.DefaultSelector() as sel:
        sel.register(sock, selectors.EVENT_WRITE)
        sel.select(timeout)


class TcpTransport:
    """Batched node⇄node message routing over persistent TCP sockets.

    One instance per node process.  Mirrors
    :class:`~repro.net.transport.ProcessTransport` exactly — including
    the S2 overflow semantics: messages decoded beyond a caller's
    ``limit`` are parked and do **not** count as received until actually
    handed to the caller, keeping the sent/received termination
    arithmetic sound.
    """

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        max_batch_messages: int = 64,
        wire_format: str = "binary",
        connect_timeout_s: float = 10.0,
    ) -> None:
        if not 0 <= node_id < num_nodes:
            raise ValueError(f"node_id {node_id} out of range for {num_nodes}")
        if wire_format not in ("binary", "pickle"):
            raise ValueError(f"unknown wire_format {wire_format!r}")
        self._node_id = node_id
        self._num_nodes = num_nodes
        self._metrics = metrics or MetricsRegistry()
        self._max_batch = max(1, max_batch_messages)
        self._wire_format = wire_format
        self._connect_timeout_s = connect_timeout_s
        self._bind_host = bind_host
        self._listener = listen_socket(bind_host, bind_port)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "listen")
        #: Inbound socket -> partial-frame receive buffer.
        self._in_bufs: Dict[socket.socket, bytearray] = {}
        #: Outgoing persistent connection per peer node id.
        self._out: Dict[int, socket.socket] = {}
        self._peers: Optional[List[Tuple[str, int]]] = None
        self._buffers: List[List[Message]] = [[] for _ in range(num_nodes)]
        #: Encoded self-addressed batches awaiting the next poll.
        self._loopback: Deque[bytes] = deque()
        #: Decoded messages beyond a poll's ``limit`` (S2 semantics).
        self._overflow: Deque[Message] = deque()
        self.sent_count = 0
        self.received_count = 0

    # -- wiring -----------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return self._num_nodes

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def data_port(self) -> int:
        return self._listener.getsockname()[1]

    def set_peers(self, peers: Sequence[str]) -> None:
        """Install the ``"host:port"`` data address of every node."""
        if len(peers) != self._num_nodes:
            raise ValueError(
                f"peer table has {len(peers)} entries for {self._num_nodes} nodes"
            )
        self._peers = [parse_host_port(p) for p in peers]

    def _connect(self, dst: int) -> socket.socket:
        sock = self._out.get(dst)
        if sock is not None:
            return sock
        if self._peers is None:
            raise PeerLostError(dst, "peer table not installed yet")
        host, port = self._peers[dst]
        try:
            sock = connect_with_retry(host, port, self._connect_timeout_s)
        except OSError as exc:
            raise PeerLostError(
                dst, f"cannot connect to {host}:{port} within "
                     f"{self._connect_timeout_s}s: {exc!r}"
            ) from exc
        self._out[dst] = sock
        return sock

    # -- sending ----------------------------------------------------------

    def send(self, message: Message, now: float = 0.0) -> float:
        dst = message.dst
        if not 0 <= dst < self._num_nodes:
            raise ValueError(f"invalid destination node {dst}")
        size = message.size_bytes()
        self._metrics.add("net:messages")
        self._metrics.add("net:bytes", size)
        if dst == self._node_id:
            self._metrics.add("net:bytes_local", size)
        elif self._peers is not None and self._peers[dst][0] == self._bind_host:
            self._metrics.add("net:bytes_same_host", size)
        else:
            self._metrics.add("net:bytes_cross_host", size)
        buf = self._buffers[dst]
        buf.append(message)
        self.sent_count += 1
        if len(buf) >= self._max_batch:
            self._flush_dst(dst)
        return now

    def _flush_dst(self, dst: int) -> None:
        buf = self._buffers[dst]
        if not buf:
            return
        self._buffers[dst] = []
        if self._wire_format == "binary":
            payload = wire.encode_batch(buf)
        else:
            payload = pickle.dumps(buf, protocol=pickle.HIGHEST_PROTOCOL)
        self._metrics.add("tcp:frames")
        self._metrics.add("tcp:batched_messages", len(buf))
        self._metrics.add("tcp:payload_bytes", len(payload))
        if dst == self._node_id:
            # Loopback: same codec, no socket — decoded at the next poll
            # so a self-send stays "in flight" until actually delivered.
            self._loopback.append(payload)
            return
        sock = self._connect(dst)
        data = memoryview(_frame_header(len(payload)) + payload)
        deadline = time.monotonic() + self._connect_timeout_s
        try:
            while data:
                try:
                    sent = sock.send(data)
                    data = data[sent:]
                except (BlockingIOError, InterruptedError):
                    if time.monotonic() > deadline:
                        raise PeerLostError(
                            dst, f"send stalled for {self._connect_timeout_s}s"
                        )
                    selectors_wait_writable(sock, 0.05)
        except OSError as exc:
            self._out.pop(dst, None)
            try:
                sock.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
            raise PeerLostError(dst, f"send failed: {exc!r}") from exc

    def flush_outgoing(self) -> None:
        for dst in range(self._num_nodes):
            self._flush_dst(dst)

    def pending_unflushed(self) -> int:
        return sum(len(b) for b in self._buffers)

    # -- receiving --------------------------------------------------------

    def _accept_all(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:  # pragma: no cover - listener closed mid-accept
                return
            conn.setblocking(False)
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover
                pass
            self._in_bufs[conn] = bytearray()
            self._selector.register(conn, selectors.EVENT_READ, "data")

    def _drop_inbound(self, sock: socket.socket) -> None:
        self._metrics.add("tcp:peer_resets")
        self._selector.unregister(sock)
        self._in_bufs.pop(sock, None)
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass

    def _read_conn(self, sock: socket.socket) -> None:
        buf = self._in_bufs[sock]
        while True:
            try:
                chunk = sock.recv(_RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                # The peer died mid-stream; the master's control plane
                # will notice the loss and roll the job back — locally we
                # just drop the link (any partial frame goes with it).
                self._drop_inbound(sock)
                return
            if not chunk:
                if buf:
                    self._drop_inbound(sock)
                    raise WireDecodeError(
                        f"data connection closed mid-frame with {len(buf)} "
                        f"buffered bytes"
                    )
                self._drop_inbound(sock)
                return
            buf.extend(chunk)
        for payload in _extract_frames(buf):
            self._overflow.extend(wire.decode_batch(payload))

    def _service_sockets(self) -> None:
        """Accept pending connections and decode every complete frame."""
        while True:
            events = self._selector.select(timeout=0)
            if not events:
                break
            for key, _mask in events:
                if key.data == "listen":
                    self._accept_all()
                else:
                    self._read_conn(key.fileobj)
        while self._loopback:
            self._overflow.extend(wire.decode_batch(self._loopback.popleft()))

    def poll(self, worker_id: int, now: float = float("inf"), limit: int = 0) -> List[Message]:
        """Drain this node's inbox (non-blocking); flushes first."""
        if worker_id != self._node_id:
            raise ValueError(
                f"TcpTransport of node {self._node_id} asked to poll "
                f"node {worker_id}'s inbox"
            )
        self.flush_outgoing()
        self._service_sockets()
        out: List[Message] = []
        overflow = self._overflow
        while overflow and (not limit or len(out) < limit):
            out.append(overflow.popleft())
        self.received_count += len(out)
        return out

    # -- idle support -----------------------------------------------------

    def wait_for_activity(
        self, timeout: float, extra: Sequence[socket.socket] = ()
    ) -> bool:
        """Block up to ``timeout`` for readability on any data socket or
        the given extra sockets (the node's control channel).  Returns
        True when something became readable; the data itself is consumed
        by the next :meth:`poll` / the caller's control recv."""
        if self._overflow or self._loopback:
            return True
        registered = []
        for sock in extra:
            try:
                self._selector.register(sock, selectors.EVENT_READ, "extra")
                registered.append(sock)
            except KeyError:  # pragma: no cover - already registered
                pass
        try:
            return bool(self._selector.select(timeout=max(0.0, timeout)))
        finally:
            for sock in registered:
                self._selector.unregister(sock)

    def close(self) -> None:
        try:
            self._selector.unregister(self._listener)
        except KeyError:  # pragma: no cover
            pass
        self._listener.close()
        for sock in list(self._in_bufs):
            self._drop_inbound(sock)
        for sock in self._out.values():
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self._out.clear()
        self._selector.close()
