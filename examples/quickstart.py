"""Quickstart: count triangles on a small social-network stand-in.

Run:  python examples/quickstart.py
"""

from repro import GThinkerConfig, run_job
from repro.apps import TriangleCountComper
from repro.graph import dataset_stats, make_dataset


def main() -> None:
    # A scaled-down Youtube-like graph (heavy-tailed degrees).
    graph = make_dataset("youtube", scale=0.3)
    print("graph:", dataset_stats(graph))

    # A 4-machine in-process cluster, 2 mining threads ("compers") each.
    config = GThinkerConfig(num_workers=4, compers_per_worker=2)

    result = run_job(TriangleCountComper, graph, config)

    print(f"triangles           : {result.aggregate}")
    print(f"tasks finished      : {result.metrics['tasks:finished']:.0f}")
    print(f"network bytes       : {result.network_bytes:.0f}")
    print(f"cache hits          : {result.metrics.get('cache:hits', 0):.0f}")
    print(f"duplicate pulls     : {result.metrics.get('cache:miss_duplicate', 0):.0f} (suppressed)")
    print(f"wall time           : {result.elapsed_s:.3f} s")

    # Cross-check against the serial oracle.
    from repro.algorithms import count_triangles

    assert result.aggregate == count_triangles(graph)
    print("matches the serial oracle - OK")


if __name__ == "__main__":
    main()
