"""Maximum clique finding (the paper's Fig. 5 application) end to end.

Demonstrates:
* the paper's headline workload — MCF on a Friendster-like graph with a
  planted maximum clique;
* task decomposition (τ) splitting big tasks into subtasks;
* the aggregator propagating the incumbent bound for global pruning;
* running the same job on the real threaded runtime and on the
  discrete-event simulated cluster (virtual time).

Run:  python examples/maximum_clique.py
"""

from repro import GThinkerConfig, run_job
from repro.apps import MaxCliqueComper
from repro.graph import DATASETS, dataset_stats
from repro.sim import run_simulated_job


def main() -> None:
    spec = DATASETS["friendster"]
    graph, planted = spec.build_with_planted(scale=0.4)
    best_planted = max(planted, key=len)
    print("graph:", dataset_stats(graph))
    print(f"planted cliques: sizes {sorted(len(p) for p in planted)}")

    config = GThinkerConfig(
        num_workers=4,
        compers_per_worker=4,
        decompose_threshold=64,  # the paper's tau, scaled to this graph
        aggregator_sync_period_s=0.005,
    )

    print("\n-- threaded runtime (real locks, GIL-bound wall clock) --")
    result = run_job(MaxCliqueComper, graph, config, runtime="threaded")
    clique = result.aggregate
    print(f"maximum clique: {len(clique)} vertices")
    print(f"wall time     : {result.elapsed_s:.2f} s")
    assert len(clique) >= len(best_planted)

    print("\n-- simulated 16x16 cluster (virtual time) --")
    sim = run_simulated_job(
        MaxCliqueComper, graph,
        config.with_updates(num_workers=16, compers_per_worker=16),
    )
    print(f"maximum clique: {len(sim.aggregate)} vertices (same answer)")
    print(f"virtual time  : {sim.virtual_time_s * 1000:.1f} ms on 256 simulated cores")
    print(f"peak memory   : {sim.peak_memory_bytes / (1 << 20):.2f} MB per machine")
    print(f"network bytes : {sim.network_bytes / (1 << 20):.2f} MB")
    assert len(sim.aggregate) == len(clique)


if __name__ == "__main__":
    main()
