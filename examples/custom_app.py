"""Writing your own G-thinker application: k-truss-style edge support.

The public API recap:

* subclass :class:`repro.Comper`;
* ``task_spawn(v)`` creates tasks from local vertices (``add_task``);
* ``compute(task, frontier)`` runs one iteration; ``task.pull(u)``
  requests Γ(u) for the next one; return True to keep iterating;
* optional plug-ins: ``make_aggregator`` and ``make_trimmer``.

This app computes, for every edge (u, v) with u < v, its *support* (the
number of triangles containing it) and reports edges whose support is at
least ``k - 2`` — the per-edge filter step of k-truss decomposition.

Run:  python examples/custom_app.py
"""

from repro import Comper, GThinkerConfig, SumAggregator, Task, VertexView, run_job
from repro.apps.common import GtTrimmer
from repro.graph import erdos_renyi, kernels


class EdgeSupportComper(Comper):
    """Emits every edge whose support reaches ``k - 2``."""

    def __init__(self, k: int = 4) -> None:
        super().__init__()
        if k < 3:
            raise ValueError("k-truss needs k >= 3")
        self.k = k

    def make_aggregator(self) -> SumAggregator:
        return SumAggregator()  # counts qualifying edges

    def make_trimmer(self) -> GtTrimmer:
        return GtTrimmer()  # adjacency lists arrive as Γ_>

    def task_spawn(self, v: VertexView) -> None:
        if not len(v.adj):  # v.adj is an ndarray on the hot path
            return
        task = Task(context=(v.id, v.adj))
        for u in v.adj:
            task.pull(u)
        self.add_task(task)

    def compute(self, task: Task, frontier) -> bool:
        u, gt_u = task.context
        for view in frontier:
            # support of edge (u, view.id): common larger neighbors plus
            # triangles closed through smaller vertices are counted by
            # the task of that smaller vertex; summing per-edge over all
            # tasks gives full support.  For the demo we use the upward
            # support only, which is exact for edges counted at their
            # smallest endpoint.
            support = kernels.intersect_count(gt_u, view.adj)
            if support >= self.k - 2:
                self.output(((u, int(view.id)), support))
                self.aggregate(1)
        return False


def main() -> None:
    graph = erdos_renyi(150, 0.1, seed=7)
    config = GThinkerConfig(num_workers=3, compers_per_worker=2)
    k = 4
    result = run_job(lambda: EdgeSupportComper(k=k), graph, config)
    print(f"edges with upward support >= {k - 2}: {result.aggregate}")
    for (edge, support) in sorted(result.outputs, key=lambda r: -r[1])[:8]:
        print(f"  edge {edge}: support {support}")


if __name__ == "__main__":
    main()
