"""Maximal quasi-clique mining — the paper's running API example.

A task spawned from vertex v pulls its neighbors in iteration 1 and the
second hop in iteration 2 (any two members of a gamma >= 0.5
quasi-clique are within two hops), then mines the materialized ego
network serially.  Each maximal gamma-quasi-clique is reported by the
task of its smallest member, so the union over tasks has no duplicates.

Run:  python examples/quasi_cliques.py
"""

from repro import GThinkerConfig, run_job
from repro.apps import QuasiCliqueComper
from repro.graph import dataset_stats, erdos_renyi, plant_cliques


def main() -> None:
    # Quasi-clique enumeration is exponential in the 2-hop ego size, so
    # the demo uses a sparse background (the planted groups carry the
    # signal).
    base = erdos_renyi(80, 0.05, seed=42)
    graph, planted = plant_cliques(base, [7, 6], seed=43)
    print("graph:", dataset_stats(graph))
    print("planted dense groups of sizes", [len(p) for p in planted])

    gamma, min_size = 0.8, 5
    config = GThinkerConfig(num_workers=3, compers_per_worker=2)
    result = run_job(
        lambda: QuasiCliqueComper(gamma=gamma, min_size=min_size), graph, config
    )

    print(f"\nmaximal {gamma}-quasi-cliques with >= {min_size} members: "
          f"{result.aggregate}")
    for qc in sorted(result.outputs, key=len, reverse=True)[:8]:
        print(f"  size {len(qc)}: {qc}")

    # The planted cliques (or supersets of them) must be among the results.
    covered = sum(
        1 for p in planted
        if any(set(p) <= set(qc) for qc in result.outputs)
    )
    print(f"planted groups covered by results: {covered}/{len(planted)}")


if __name__ == "__main__":
    main()
