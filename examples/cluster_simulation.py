"""Exploring cluster configurations with the discrete-event simulator.

The simulator runs the *real* G-thinker engine (real mining, real cache
protocol, real task scheduling) on a virtual cluster: per-core event
timelines, a latency/bandwidth network and a disk model.  This is how
the repository regenerates the paper's scaling tables; here we sweep a
few configurations interactively.

Run:  python examples/cluster_simulation.py
"""

from repro import GThinkerConfig
from repro.apps import MaxCliqueComper
from repro.core.config import MachineModel, NetworkModel
from repro.graph import dataset_stats, make_dataset
from repro.sim import run_simulated_job


def main() -> None:
    graph = make_dataset("friendster", scale=1.0)
    print("workload: MCF on", dataset_stats(graph))

    def config(machines: int, compers: int, **kw) -> GThinkerConfig:
        return GThinkerConfig(
            num_workers=machines,
            compers_per_worker=compers,
            task_batch_size=8,
            decompose_threshold=150,
            aggregator_sync_period_s=0.005,
            machine=MachineModel(cpu_speed=10.0),
            **kw,
        )

    # Warm the interpreter first: virtual durations come from measured
    # step times, and the very first run pays one-time allocation costs
    # that would make the 1-comper baseline look artificially slow.
    run_simulated_job(MaxCliqueComper, graph, config(1, 4))

    print("\nvertical scaling on one machine:")
    base = None
    for compers in (1, 2, 4, 8):
        r = run_simulated_job(MaxCliqueComper, graph, config(1, compers))
        base = base or r.virtual_time_s
        print(f"  {compers:2d} compers: {r.virtual_time_s * 1000:8.1f} ms "
              f"(speedup {base / r.virtual_time_s:4.2f}x, "
              f"clique size {len(r.aggregate)})")

    print("\nGigE vs 10GigE at 4 machines x 4 compers:")
    for name, net in [
        ("GigE  ", NetworkModel(latency_s=100e-6, bandwidth_bytes_per_s=110e6)),
        ("10GigE", NetworkModel(latency_s=30e-6, bandwidth_bytes_per_s=1.1e9)),
    ]:
        r = run_simulated_job(MaxCliqueComper, graph, config(4, 4, network=net))
        print(f"  {name}: {r.virtual_time_s * 1000:8.1f} ms, "
              f"{r.network_bytes / (1 << 20):.2f} MB on the wire")


if __name__ == "__main__":
    main()
