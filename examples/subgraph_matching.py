"""Labeled subgraph matching (the paper's GM application).

Find all embeddings of a labeled pattern — here a "collaboration
triangle with a follower": three mutually connected vertices of distinct
roles, one of which has an extra same-role neighbor — in a labeled
social graph.  Shows multi-iteration tasks: each task pulls one hop per
iteration until the anchor's neighborhood is materialized.

Run:  python examples/subgraph_matching.py
"""

from repro import GThinkerConfig, run_job
from repro.algorithms import QueryGraph, count_matches
from repro.apps import SubgraphMatchComper
from repro.graph import dataset_stats, make_dataset


def main() -> None:
    graph = make_dataset("skitter", scale=0.3, labeled=3)
    print("data graph:", dataset_stats(graph), "with 3 vertex labels")

    #      0(role 0) --- 1(role 1)
    #         \            /
    #          2(role 2) --- 3(role 0)
    query = QueryGraph(
        [(0, 1), (1, 2), (0, 2), (2, 3)],
        labels={0: 0, 1: 1, 2: 2, 3: 0},
    )
    print(f"query: {query.num_vertices} vertices, "
          f"matching order {query.order}, "
          f"symmetry-breaking constraints {query.symmetry_pairs}")

    config = GThinkerConfig(num_workers=3, compers_per_worker=2)
    labels = graph.labels()
    result = run_job(
        lambda: SubgraphMatchComper(query, data_labels=labels,
                                    collect_embeddings=True),
        graph,
        config,
    )

    print(f"embeddings found: {result.aggregate}")
    for emb in result.outputs[:5]:
        print("  e.g.", {q: d for q, d in sorted(emb.items())})

    assert result.aggregate == count_matches(graph, query)
    print("matches the serial matcher - OK")


if __name__ == "__main__":
    main()
