"""Tests for low-degree task bundling (the implemented future-work item)."""

import pytest

from repro.algorithms import count_triangles
from repro.apps import BundledTriangleCountComper, TriangleCountComper
from repro.core import GThinkerConfig, run_job
from repro.graph import Graph, barabasi_albert, erdos_renyi


def cfg(**kw):
    base = dict(num_workers=3, compers_per_worker=2, task_batch_size=4,
                cache_capacity=128, cache_buckets=16)
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(200, m=4, seed=21)  # heavy-tailed: mixes degrees


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        BundledTriangleCountComper(bundle_size=0)
    with pytest.raises(ValueError):
        BundledTriangleCountComper(heavy_threshold=1)


@pytest.mark.parametrize("bundle_size,heavy", [(1, 2), (8, 6), (64, 10), (500, 1000)])
def test_count_invariant_under_bundling(graph, bundle_size, heavy):
    res = run_job(
        lambda: BundledTriangleCountComper(bundle_size=bundle_size,
                                           heavy_threshold=heavy),
        graph, cfg(),
    )
    assert res.aggregate == count_triangles(graph)


def test_fewer_tasks_than_plain(graph):
    plain = run_job(TriangleCountComper, graph, cfg())
    bundled = run_job(
        lambda: BundledTriangleCountComper(bundle_size=32, heavy_threshold=12),
        graph, cfg(),
    )
    assert bundled.aggregate == plain.aggregate
    assert bundled.metrics["tasks:created"] < plain.metrics["tasks:created"]


def test_partial_bundle_flushed(graph):
    """A bundle size larger than the vertex count still counts everything
    — the spawn_flush hook must emit the final partial bundle."""
    res = run_job(
        lambda: BundledTriangleCountComper(bundle_size=10**6,
                                           heavy_threshold=10**6),
        graph, cfg(),
    )
    assert res.aggregate == count_triangles(graph)


def test_bundling_under_stealing():
    """Stolen spawn batches flush their partial bundles too."""
    g = erdos_renyi(300, 0.04, seed=5)
    res = run_job(
        lambda: BundledTriangleCountComper(bundle_size=16, heavy_threshold=8),
        g, cfg(num_workers=4, steal_batches=8, sync_every_rounds=2),
    )
    assert res.aggregate == count_triangles(g)


def test_bundling_threaded(graph):
    res = run_job(
        lambda: BundledTriangleCountComper(bundle_size=16, heavy_threshold=8),
        graph, cfg(aggregator_sync_period_s=0.002), runtime="threaded",
    )
    assert res.aggregate == count_triangles(graph)


def test_triangle_free_bundles():
    g = Graph.from_edges([(i, i + 1) for i in range(50)])
    res = run_job(lambda: BundledTriangleCountComper(bundle_size=8), g, cfg())
    assert res.aggregate == 0
