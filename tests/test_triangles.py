"""Tests for triangle counting/listing."""

from math import comb

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    count_triangles,
    count_triangles_from_gt,
    list_triangles,
    local_triangle_counts,
)
from repro.graph import Graph, erdos_renyi, ring_of_cliques

from tests.oracles import nx_of


def test_triangle_free():
    g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    assert count_triangles(g) == 0


def test_single_triangle():
    g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
    assert count_triangles(g) == 1
    assert list(list_triangles(g)) == [(0, 1, 2)]


def test_clique_count():
    g = ring_of_cliques(1, 6)
    assert count_triangles(g) == comb(6, 3)


def test_ring_of_cliques_closed_form(clique_ring):
    assert count_triangles(clique_ring) == 5 * comb(6, 3)


def test_matches_networkx(er_graph):
    import networkx as nx

    assert count_triangles(er_graph) == sum(nx.triangles(nx_of(er_graph)).values()) // 3


def test_list_matches_count(er_graph):
    tris = list(list_triangles(er_graph))
    assert len(tris) == count_triangles(er_graph)
    assert all(u < v < w for u, v, w in tris)
    assert len(set(tris)) == len(tris)


def test_listed_triangles_are_triangles(er_graph):
    for u, v, w in list_triangles(er_graph):
        assert er_graph.has_edge(u, v)
        assert er_graph.has_edge(v, w)
        assert er_graph.has_edge(u, w)


def test_from_gt_adjacency(er_graph):
    gt = {v: er_graph.neighbors_gt(v) for v in er_graph.vertices()}
    assert count_triangles_from_gt(gt) == count_triangles(er_graph)


def test_local_counts_sum(er_graph):
    local = local_triangle_counts(er_graph)
    assert sum(local.values()) == 3 * count_triangles(er_graph)


def test_local_counts_match_networkx(er_graph):
    import networkx as nx

    ref = nx.triangles(nx_of(er_graph))
    assert local_triangle_counts(er_graph) == ref


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 35), st.floats(0.0, 0.7), st.integers(0, 100))
def test_count_property_vs_networkx(n, p, seed):
    import networkx as nx

    g = erdos_renyi(n, p, seed=seed)
    assert count_triangles(g) == sum(nx.triangles(nx_of(g)).values()) // 3
