"""Bulk cache ops (request_batch / insert_responses / release_batch).

The contract under test: each bulk entry point is *observationally
equivalent* to the per-vertex OP1/OP2/OP3 sequence in batch order — same
outcomes, same lock counts, same Z-table membership, same ``s_cache`` —
and differs only in how many bucket-mutex acquisitions it costs, which
``bucket_lock_acquisitions()`` makes measurable.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.check import CheckedVertexCache
from repro.check.fuzz import HopSumComper, hop_sum_oracle
from repro.core.config import GThinkerConfig
from repro.core.errors import CacheProtocolError
from repro.core.job import run_job
from repro.core.vertex_cache import RequestOutcome, VertexCache
from repro.graph import erdos_renyi


def make_cache(capacity=100, buckets=4, delta=1, cls=VertexCache):
    return cls(
        num_buckets=buckets, capacity=capacity, overflow_alpha=0.2,
        count_delta=delta,
    )


def snapshot(c):
    """Full observable state: Γ/Z/R membership, lock counts, waiting lists."""
    state = {}
    for b in c._buckets:
        with b.lock:
            for v, entry in b.gamma.items():
                state[v] = ("gamma", entry.lock_count, v in b.zero)
            for v, pending in b.requests.items():
                state[v] = ("requested", tuple(pending.waiting_task_ids))
    return state


# -- unit tests: request_batch -----------------------------------------------


class TestRequestBatch:
    def test_all_first_requests_are_to_send(self):
        c = make_cache()
        out = c.request_batch([1, 2, 3], task_id=7)
        assert out.hits == 0
        assert out.duplicates == 0
        assert out.to_send == [1, 2, 3]

    def test_to_send_preserves_batch_order(self):
        c = make_cache(buckets=4)
        vs = [9, 2, 7, 4, 1]  # scattered across buckets
        assert c.request_batch(vs, task_id=1).to_send == vs

    def test_vertex_named_twice_sent_once(self):
        """Second mention inside one batch is a MISS_DUPLICATE, exactly
        as the per-vertex sequence would classify it."""
        c = make_cache()
        out = c.request_batch([5, 5, 6], task_id=1)
        assert out.to_send == [5, 6]
        assert out.duplicates == 1
        # The R-table holds two waiting entries for vertex 5.
        assert c.insert_response(5, 0, ()) == [1, 1]

    def test_mixed_hit_miss_duplicate(self):
        c = make_cache()
        c.request(10, task_id=1)
        c.insert_response(10, 0, ())       # 10 cached, lock 1
        c.request(11, task_id=2)           # 11 pending
        out = c.request_batch([10, 11, 12], task_id=3)
        assert out.hits == 1
        assert out.duplicates == 1
        assert out.to_send == [12]
        assert c.get_locked(10).lock_count == 2

    def test_hit_leaves_zero_table(self):
        c = make_cache()
        c.request(10, task_id=1)
        c.insert_response(10, 0, ())
        c.release(10)                      # into Z-table
        c.request_batch([10], task_id=2)   # back out
        assert c.evict(10) == 0


# -- unit tests: insert_responses --------------------------------------------


class TestInsertResponses:
    def test_returns_rows_in_batch_order(self):
        c = make_cache(buckets=2)
        c.request_batch([1, 2, 3, 4], task_id=1)
        c.request(3, task_id=9)
        landed = c.insert_responses(
            [(4, 40, (1,)), (1, 10, ()), (3, 30, (2, 5))]
        )
        assert landed == [(4, [1]), (1, [1]), (3, [1, 9])]
        assert tuple(c.get_locked(3).adj) == (2, 5)
        assert c.get_locked(3).label == 30

    def test_unrequested_row_raises_but_earlier_rows_land(self):
        c = make_cache(buckets=1)  # one bucket => deterministic order
        c.request_batch([1, 2], task_id=1)
        with pytest.raises(CacheProtocolError):
            c.insert_responses([(1, 0, ()), (99, 0, ()), (2, 0, ())])
        # Row 1 landed before the violation, exactly like the per-vertex
        # sequence; row 2 never ran.
        assert c.get_locked(1).lock_count == 1
        assert c.insert_response(2, 0, ()) == [1]

    def test_size_unchanged_by_responses(self):
        c = make_cache(delta=1)
        c.request_batch([1, 2, 3], task_id=1)
        before = c.size_estimate
        c.insert_responses([(1, 0, ()), (2, 0, ()), (3, 0, ())])
        assert c.size_estimate == before == 3


# -- unit tests: release_batch ------------------------------------------------


class TestReleaseBatch:
    def test_release_to_zero_enables_eviction(self):
        c = make_cache()
        c.request_batch([1, 2], task_id=1)
        c.insert_responses([(1, 0, ()), (2, 0, ())])
        c.release_batch([1, 2], task_id=1)
        assert c.evict(10) == 2

    def test_vertex_listed_twice_released_twice(self):
        c = make_cache()
        c.request(5, 1)
        c.insert_response(5, 0, ())
        c.request(5, 2)                    # lock_count 2
        c.release_batch([5, 5])
        assert c.evict(10) == 1

    def test_over_release_rejected(self):
        c = make_cache()
        c.request(5, 1)
        c.insert_response(5, 0, ())
        with pytest.raises(CacheProtocolError):
            c.release_batch([5, 5])


# -- lock-acquisition accounting ----------------------------------------------


class TestLockAccounting:
    def test_batch_ops_acquire_strictly_fewer_locks(self):
        """The whole point: same ops, fewer mutex acquisitions."""
        vs = list(range(32))
        batch, seq = make_cache(buckets=4), make_cache(buckets=4)

        batch.request_batch(vs, task_id=1)
        batch.insert_responses([(v, 0, ()) for v in vs])
        batch.release_batch(vs, task_id=1)

        for v in vs:
            seq.request(v, 1)
        for v in vs:
            seq.insert_response(v, 0, ())
        for v in vs:
            seq.release(v)

        assert snapshot(batch) == snapshot(seq)
        # 3 passes x 4 touched buckets vs 3 passes x 32 vertices.
        assert batch.bucket_lock_acquisitions() == 12
        assert seq.bucket_lock_acquisitions() == 96

    def test_commit_lock_metrics_is_idempotent(self):
        c = make_cache()
        c.request_batch([1, 2, 3], task_id=1)
        c.commit_lock_metrics()
        first = c._metrics.get("cache:bucket_lock_acquisitions")
        assert first == c.bucket_lock_acquisitions()
        c.commit_lock_metrics()  # no new acquisitions -> no double count
        assert c._metrics.get("cache:bucket_lock_acquisitions") == first
        c.request(4, task_id=2)
        c.commit_lock_metrics()
        assert c._metrics.get("cache:bucket_lock_acquisitions") == first + 1

    def test_evict_flushes_pending_counter_delta(self):
        """OP4's overflow budget must see this thread's uncommitted
        inserts; otherwise a large δ makes GC a no-op."""
        c = make_cache(capacity=4, delta=100)
        for v in range(10):
            c.request(v, v)
            c.insert_response(v, 0, ())
            c.release(v)
        assert c.size_estimate == 0          # all still thread-local
        assert c.evict() == 6                # flushed: overflow = 10 - 4
        assert c.size_estimate == 4


# -- property test: batch == per-vertex sequence ------------------------------


@st.composite
def op_rounds(draw):
    """Valid multi-op rounds built against a model of the cache state."""
    rounds = draw(st.lists(
        st.tuples(
            st.sampled_from(["req", "resp", "rel"]),
            st.lists(st.integers(0, 15), min_size=1, max_size=6),
            st.integers(0, 9),  # task id for "req" rounds
        ),
        max_size=30,
    ))
    return rounds


@settings(max_examples=60, deadline=None)
@given(op_rounds())
def test_batch_ops_equal_per_vertex_sequences(rounds):
    """Drive a batch-op cache and a per-vertex cache with the same round
    sequence; outcomes and full observable state must match after every
    round, and the batch cache must never acquire more bucket locks."""
    batch = make_cache(buckets=4, delta=1)
    seq = make_cache(buckets=4, delta=1)
    model = {}  # v -> "requested" | "cached"

    for kind, vs, task_id in rounds:
        if kind == "req":
            out = batch.request_batch(vs, task_id)
            hits = duplicates = 0
            to_send = []
            for v in vs:
                o = seq.request(v, task_id)
                if o.status == RequestOutcome.HIT:
                    hits += 1
                elif o.status == RequestOutcome.MISS_SEND:
                    to_send.append(v)
                    model[v] = "requested"
                else:
                    duplicates += 1
            assert (out.hits, out.to_send, out.duplicates) == \
                (hits, to_send, duplicates)
        elif kind == "resp":
            rows = []
            for v in dict.fromkeys(vs):
                if model.get(v) == "requested":
                    rows.append((v, v * 10, (v, v + 1)))
                    model[v] = "cached"
            if not rows:
                continue
            landed = batch.insert_responses(rows)
            expected = [(v, seq.insert_response(v, label, adj))
                        for v, label, adj in rows]
            assert landed == expected
        else:  # rel
            state = snapshot(seq)
            releasable = []
            budget = {}
            for v in vs:
                info = state.get(v)
                locks = info[1] if info and info[0] == "gamma" else 0
                if budget.get(v, locks) > 0:
                    budget[v] = budget.get(v, locks) - 1
                    releasable.append(v)
            if not releasable:
                continue
            batch.release_batch(releasable, task_id=-1)
            for v in releasable:
                seq.release(v)

        assert snapshot(batch) == snapshot(seq)
        batch.flush_local_counter()
        seq.flush_local_counter()
        assert batch.size_estimate == seq.size_estimate
        assert batch.exact_size() == seq.exact_size()
        batch.check_invariants()

    assert batch.bucket_lock_acquisitions() <= seq.bucket_lock_acquisitions()


# -- checked wrapper + interleaving fuzzer ------------------------------------


class TestCheckedBulkOps:
    def test_checked_cache_decomposes_batches(self):
        """CheckedVertexCache applies bulk calls as audited per-vertex
        ops — the decomposition *is* the equivalence contract."""
        c = make_cache(cls=CheckedVertexCache)
        out = c.request_batch([1, 2, 1], task_id=5)
        assert (out.hits, out.to_send, out.duplicates) == (0, [1, 2], 1)
        landed = c.insert_responses([(1, 0, ()), (2, 0, ())])
        assert landed == [(1, [5, 5]), (2, [5])]
        c.release_batch([1, 1, 2], task_id=5)
        assert c.evict(10) == 2

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_fuzz_bulk_matches_per_vertex_answers(self, seed):
        """Seeded CheckedRuntime interleavings: the bulk pull path and
        the per-vertex path must produce identical answers with every
        cache-protocol checker enabled."""
        g = erdos_renyi(36, 0.15, seed=17)
        expected = hop_sum_oracle(g)
        for bulk in (True, False):
            cfg = GThinkerConfig(
                num_workers=2, compers_per_worker=2, task_batch_size=2,
                cache_capacity=48, cache_buckets=8, decompose_threshold=16,
                check_protocols=True, seed=seed, bulk_cache_ops=bulk,
            )
            result = run_job(HopSumComper, g, cfg, runtime="checked")
            assert result.aggregate == expected, f"bulk={bulk}"
