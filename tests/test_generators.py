"""Tests for the synthetic graph generators."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    barabasi_albert,
    erdos_renyi,
    plant_clique,
    plant_cliques,
    ring_of_cliques,
    rmat,
    star_burst,
    with_random_labels,
)


def test_er_determinism():
    a = erdos_renyi(50, 0.2, seed=3)
    b = erdos_renyi(50, 0.2, seed=3)
    assert a == b


def test_er_edge_probability_extremes():
    empty = erdos_renyi(10, 0.0)
    assert empty.num_edges == 0 and empty.num_vertices == 10
    full = erdos_renyi(10, 1.0)
    assert full.num_edges == 45


def test_er_rejects_bad_probability():
    with pytest.raises(ValueError):
        erdos_renyi(10, 1.5)


@settings(max_examples=20)
@given(st.integers(2, 60), st.floats(0.0, 1.0), st.integers(0, 5))
def test_er_vertex_count_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    assert g.num_vertices == n
    assert g.num_edges <= n * (n - 1) // 2


def test_ba_degree_floor():
    g = barabasi_albert(100, m=3, seed=1)
    assert g.num_vertices == 100
    # Every vertex added after the seed connects to >= 1 target.
    late = [v for v in g.vertices() if v >= 3]
    assert all(g.degree(v) >= 1 for v in late)
    # Preferential attachment produces a heavy tail.
    assert g.max_degree() > 3 * g.average_degree()


def test_ba_rejects_bad_m():
    with pytest.raises(ValueError):
        barabasi_albert(5, m=5)
    with pytest.raises(ValueError):
        barabasi_albert(5, m=0)


def test_rmat_shape():
    g = rmat(scale=8, edge_factor=4, seed=2)
    assert g.num_vertices == 256
    assert 0 < g.num_edges <= 4 * 256


def test_rmat_rejects_bad_params():
    with pytest.raises(ValueError):
        rmat(scale=5, a=0.6, b=0.3, c=0.2)


def test_rmat_skew():
    g = rmat(scale=9, edge_factor=8, seed=4)
    # R-MAT degree distributions are strongly skewed.
    assert g.max_degree() > 4 * g.average_degree()


def test_plant_clique():
    g = erdos_renyi(40, 0.05, seed=9)
    g2, members = plant_clique(g, 8, seed=1)
    assert len(members) == 8
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            assert g2.has_edge(u, v)
    # Original edges preserved.
    for u, v in g.edges():
        assert g2.has_edge(u, v)


def test_plant_clique_too_big():
    g = erdos_renyi(5, 0.1)
    with pytest.raises(ValueError):
        plant_clique(g, 6)


def test_plant_cliques_disjoint():
    g = erdos_renyi(60, 0.05, seed=2)
    g2, planted = plant_cliques(g, [6, 5], seed=3)
    a, b = set(planted[0]), set(planted[1])
    assert not (a & b)
    from repro.algorithms import max_clique

    assert len(max_clique(g2)) >= 6


def test_ring_of_cliques_exact_counts():
    g = ring_of_cliques(4, 5)
    assert g.num_vertices == 20
    # 4 * C(5,2) internal edges + 4 ring edges
    assert g.num_edges == 4 * 10 + 4


def test_ring_of_single_clique():
    g = ring_of_cliques(1, 4)
    assert g.num_vertices == 4
    assert g.num_edges == 6


def test_star_burst_hubs():
    g = star_burst(4, 30, hub_density=1.0, seed=1)
    for h in range(4):
        assert g.degree(h) >= 30
    assert g.max_degree() >= 33  # spokes + other hubs


def test_with_random_labels():
    g = erdos_renyi(30, 0.2, seed=5)
    lg = with_random_labels(g, 4, seed=6)
    labels = {lg.label(v) for v in lg.vertices()}
    assert labels <= set(range(4))
    assert len(labels) > 1
    # Structure unchanged.
    assert lg == g or lg.num_edges == g.num_edges


def test_with_random_labels_rejects_zero():
    with pytest.raises(ValueError):
        with_random_labels(erdos_renyi(5, 0.5), 0)
