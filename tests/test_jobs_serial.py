"""End-to-end serial-runtime jobs for all four applications, validated
against independent oracles across configurations."""

import pytest

from repro.algorithms import (
    QueryGraph,
    count_matches,
    count_triangles,
    enumerate_quasi_cliques,
    max_clique_reference,
    path_query,
    triangle_query,
)
from repro.apps import (
    MaxCliqueComper,
    QuasiCliqueComper,
    SubgraphMatchComper,
    TriangleCountComper,
)
from repro.core import GThinkerConfig, run_job
from repro.graph import (
    Graph,
    ShardedGraphStore,
    erdos_renyi,
    plant_clique,
    ring_of_cliques,
    with_random_labels,
)


def cfg(**kw):
    base = dict(
        num_workers=3, compers_per_worker=2, task_batch_size=4,
        cache_capacity=64, cache_buckets=16, decompose_threshold=16,
        sync_every_rounds=16,
    )
    base.update(kw)
    return GThinkerConfig(**base)


class TestTriangleCounting:
    def test_er_graph(self, er_graph):
        res = run_job(TriangleCountComper, er_graph, cfg())
        assert res.aggregate == count_triangles(er_graph)

    def test_ring(self, clique_ring):
        res = run_job(TriangleCountComper, clique_ring, cfg())
        assert res.aggregate == count_triangles(clique_ring)

    def test_triangle_free_graph(self):
        g = Graph.from_edges([(i, i + 1) for i in range(20)])
        res = run_job(TriangleCountComper, g, cfg())
        assert res.aggregate == 0

    def test_single_worker(self, er_graph):
        res = run_job(TriangleCountComper, er_graph, cfg(num_workers=1))
        assert res.aggregate == count_triangles(er_graph)

    def test_many_workers(self, er_graph):
        res = run_job(TriangleCountComper, er_graph, cfg(num_workers=7))
        assert res.aggregate == count_triangles(er_graph)

    def test_listing_mode(self):
        g = erdos_renyi(30, 0.25, seed=3)
        res = run_job(lambda: TriangleCountComper(list_triangles=True), g, cfg())
        assert len(res.outputs) == count_triangles(g)
        assert res.aggregate == count_triangles(g)
        assert all(u < v < w for (u, v, w) in res.outputs)

    def test_from_sharded_store(self, tmp_path, er_graph):
        store = ShardedGraphStore.create(tmp_path / "g", er_graph, num_shards=3)
        res = run_job(TriangleCountComper, store, cfg(num_workers=3))
        assert res.aggregate == count_triangles(er_graph)

    def test_from_sharded_store_mismatched_shards(self, tmp_path, er_graph):
        store = ShardedGraphStore.create(tmp_path / "g", er_graph, num_shards=5)
        res = run_job(TriangleCountComper, store, cfg(num_workers=2))
        assert res.aggregate == count_triangles(er_graph)

    def test_tiny_cache_still_correct(self, er_graph):
        """Correctness must not depend on cache capacity."""
        res = run_job(TriangleCountComper, er_graph, cfg(cache_capacity=4))
        assert res.aggregate == count_triangles(er_graph)

    def test_tiny_batches_force_spills(self, er_graph):
        res = run_job(TriangleCountComper, er_graph, cfg(task_batch_size=1))
        assert res.aggregate == count_triangles(er_graph)


class TestMaxClique:
    def test_er_graph(self, er_graph):
        res = run_job(MaxCliqueComper, er_graph, cfg())
        assert len(res.aggregate) == len(max_clique_reference(er_graph))

    def test_result_is_a_clique(self, er_graph):
        res = run_job(MaxCliqueComper, er_graph, cfg())
        clique = res.aggregate
        for i, u in enumerate(clique):
            for v in clique[i + 1:]:
                assert er_graph.has_edge(u, v)

    def test_planted(self):
        g, members = plant_clique(erdos_renyi(70, 0.06, seed=4), 10, seed=5)
        res = run_job(MaxCliqueComper, g, cfg())
        assert len(res.aggregate) == 10

    def test_decomposition_path(self):
        """τ = 2 forces deep task decomposition; answer must not change."""
        g = ring_of_cliques(4, 6)
        res = run_job(MaxCliqueComper, g, cfg(decompose_threshold=2))
        assert len(res.aggregate) == 6

    def test_no_decomposition(self):
        g = ring_of_cliques(4, 6)
        res = run_job(MaxCliqueComper, g, cfg(decompose_threshold=10_000))
        assert len(res.aggregate) == 6

    def test_edgeless_graph(self):
        g = Graph.from_edges([], extra_vertices=range(10))
        res = run_job(MaxCliqueComper, g, cfg())
        # No tasks are even spawned (Γ_> empty everywhere); the paper's
        # MCF never reports singleton cliques.
        assert res.aggregate is None or len(res.aggregate) <= 1

    def test_single_edge(self):
        g = Graph.from_edges([(3, 7)])
        res = run_job(MaxCliqueComper, g, cfg())
        assert res.aggregate == (3, 7)

    def test_explicit_tau_overrides_config(self, er_graph):
        res = run_job(lambda: MaxCliqueComper(tau=3), er_graph, cfg())
        assert len(res.aggregate) == len(max_clique_reference(er_graph))


class TestSubgraphMatch:
    def test_labeled_triangle(self):
        g = with_random_labels(erdos_renyi(50, 0.15, seed=9), 3, seed=1)
        q = QueryGraph([(0, 1), (1, 2), (0, 2)], labels={0: 0, 1: 1, 2: 2})
        res = run_job(lambda: SubgraphMatchComper(q, data_labels=g.labels()), g, cfg())
        assert res.aggregate == count_matches(g, q)

    def test_unlabeled_triangle_counts_triangles(self, er_graph):
        res = run_job(lambda: SubgraphMatchComper(triangle_query()), er_graph, cfg())
        assert res.aggregate == count_triangles(er_graph)

    def test_path_query_radius_two(self):
        g = erdos_renyi(40, 0.12, seed=12)
        q = path_query(2)
        res = run_job(lambda: SubgraphMatchComper(q), g, cfg())
        assert res.aggregate == count_matches(g, q)

    def test_longer_path_query(self):
        g = erdos_renyi(25, 0.18, seed=13)
        q = path_query(3)
        res = run_job(lambda: SubgraphMatchComper(q), g, cfg())
        assert res.aggregate == count_matches(g, q)

    def test_collect_embeddings(self):
        g = erdos_renyi(20, 0.3, seed=14)
        q = triangle_query()
        res = run_job(
            lambda: SubgraphMatchComper(q, collect_embeddings=True), g, cfg()
        )
        assert len(res.outputs) == res.aggregate
        for emb in res.outputs:
            for (a, b) in q.graph.edges():
                assert g.has_edge(emb[a], emb[b])

    def test_no_matching_labels(self):
        g = with_random_labels(erdos_renyi(20, 0.3, seed=2), 2, seed=3)
        q = QueryGraph([(0, 1)], labels={0: 7, 1: 7})
        res = run_job(lambda: SubgraphMatchComper(q, data_labels=g.labels()), g, cfg())
        assert res.aggregate == 0


class TestQuasiClique:
    @pytest.mark.parametrize("gamma", [0.5, 0.7, 1.0])
    def test_matches_serial_enumeration(self, gamma):
        g = erdos_renyi(22, 0.3, seed=21)
        res = run_job(lambda: QuasiCliqueComper(gamma=gamma, min_size=4), g, cfg())
        expected = set(enumerate_quasi_cliques(g, gamma, min_size=4))
        assert set(res.outputs) == expected
        assert res.aggregate == len(expected)

    def test_rejects_low_gamma(self):
        with pytest.raises(ValueError):
            QuasiCliqueComper(gamma=0.3)
        with pytest.raises(ValueError):
            QuasiCliqueComper(gamma=1.2)


class TestJobResult:
    def test_metrics_present(self, er_graph):
        res = run_job(TriangleCountComper, er_graph, cfg())
        assert res.metrics["tasks:finished"] > 0
        assert res.metrics["tasks:iterations"] >= res.metrics["tasks:finished"]
        assert res.network_bytes > 0  # multi-worker jobs must communicate
        assert res.peak_memory_bytes > 0
        assert res.elapsed_s > 0
        assert res.num_workers == 3

    def test_unknown_runtime_rejected(self, er_graph):
        with pytest.raises(ValueError):
            run_job(TriangleCountComper, er_graph, cfg(), runtime="mpi")

    def test_unsupported_graph_source(self):
        with pytest.raises(TypeError):
            run_job(TriangleCountComper, [(0, 1)], cfg())

    def test_duplicate_requests_suppressed(self, er_graph):
        """Desirability 3: tasks share cached vertices."""
        res = run_job(TriangleCountComper, er_graph, cfg())
        hits = res.metrics.get("cache:hits", 0) + res.metrics.get(
            "cache:miss_duplicate", 0
        )
        assert hits > 0
