"""Regression tests: task identity across yield, spill, refill and steal.

A task id encodes the comper that minted it at park time
(``make_task_id(comper, seq)``) and the response receiver routes
arrivals by that id.  A task that *yields* (hits the inline-iteration
limit) goes back through ``Q_task`` and may then be spilled and refilled
by a different comper — or stolen by a different worker — so its id must
be invalidated on the way out.  Before the fix, the stale id survived
the handoff and the next arrival was routed to the original engine,
which no longer had a pending entry for it.

The choreographed tests below drive that exact interleaving step by
step; the e2e tests hammer the same paths with a multi-iteration app
under an aggressive configuration (inline limit 1, batch size 1-2).
"""

import pytest

from repro.algorithms import count_triangles
from repro.apps import TriangleCountComper
from repro.core.api import Comper, SumAggregator, Task
from repro.core.config import GThinkerConfig
from repro.core.containers import (
    comper_of_task_id,
    deserialize_tasks,
    make_task_id,
    serialize_tasks,
)
from repro.core.errors import TaskError
from repro.core.job import build_cluster, run_job
from repro.graph import Graph, erdos_renyi, hash_partition


class ScriptedComper(Comper):
    """``compute`` follows the pull script carried in the task context.

    The context is a list of pull stages; each compute() call issues the
    next stage's pulls and the task finishes when the script runs out.
    """

    def task_spawn(self, v):
        pass  # tasks are injected by the tests, never spawned

    def compute(self, task, frontier):
        if not task.context:
            return False
        for v in task.context.pop(0):
            task.pull(v)
        return True


def make_cluster(**overrides):
    g = Graph.from_edges([(i, i + 1) for i in range(40)])
    kwargs = dict(
        num_workers=2,
        compers_per_worker=2,
        task_batch_size=1,
        cache_capacity=64,
        cache_buckets=8,
        inline_iteration_limit=1,
    )
    kwargs.update(overrides)
    return build_cluster(ScriptedComper, g, GThinkerConfig(**kwargs)), g


def owned_by(g, worker_id, num_workers=2):
    return [v for v in g.vertices() if hash_partition(v, num_workers) == worker_id]


def pump_comm(cluster, rounds=4):
    for _ in range(rounds):
        for w in cluster.workers:
            w.comm.step()


def park_and_yield(cluster, engine, first_pull, next_pulls):
    """Park a scripted task, deliver its response, resume it to a yield.

    On return the task sits at the tail of ``engine.q_task`` behind two
    filler tasks, so the next ``add_task`` spills exactly this task
    (spill takes the last ``C`` = 1 tasks from the tail).
    """
    task = Task(context=[list(next_pulls)])
    task.pull(first_pull)
    engine.add_task(task)
    assert engine.step()  # pop -> park, mint id, request first_pull
    assert len(engine.t_task) == 1
    pump_comm(cluster)  # request -> serve -> response wakes the task
    assert len(engine.b_task) == 1
    engine.add_task(Task(context=[]))
    engine.add_task(Task(context=[]))
    assert engine._push()  # resume -> one compute iteration -> inline yield
    assert len(engine.q_task) == 3
    return task


def test_yield_invalidates_task_id():
    cluster, g = make_cluster()
    engine = cluster.workers[0].engines[0]
    v1, v2 = owned_by(g, 1)[:2]
    task = park_and_yield(cluster, engine, v1, [v2])
    assert task.task_id == -1  # the parked-phase id must not survive the yield


def test_serialize_tasks_strips_ids():
    tasks = [Task(context=i) for i in range(3)]
    for i, t in enumerate(tasks):
        t.task_id = make_task_id(2, i)
    out = deserialize_tasks(serialize_tasks(tasks))
    assert all(t.task_id == -1 for t in out)
    # The in-memory originals are invalidated too: they are leaving
    # this owner, so holding on to the id would be just as stale.
    assert all(t.task_id == -1 for t in tasks)


def test_spill_refill_across_compers_routes_arrival_to_new_owner():
    """yield -> spill -> refill by a *different comper* -> park -> arrival.

    Before the fix the task re-parked on comper B under the id minted by
    comper A, and the response for its second pull was routed to A's
    empty pending table (KeyError, surfaced as TaskError).
    """
    cluster, g = make_cluster()
    w0 = cluster.workers[0]
    a, b = w0.engines
    v1, v2 = owned_by(g, 1)[:2]

    task = park_and_yield(cluster, a, v1, [v2])
    a.add_task(Task(context=[]))  # overflow: spills the yielded task
    assert len(w0.l_file) == 1

    assert b.step()  # refill from L_file, pop, park under b's own id
    assert len(b.t_task) == 1
    assert len(a.t_task) == 0
    # The refilled copy parked under an id minted by b, not a's old id.
    parked_id = next(iter(b.t_task._entries))
    assert comper_of_task_id(parked_id) == b.global_id
    assert task.task_id == -1  # the spilled original left with no id

    pump_comm(cluster)  # the v2 response must wake the task on b
    assert len(b.t_task) == 0
    assert len(b.b_task) == 1
    assert b._push()  # and b can finish it
    assert len(b.b_task) == 0


def test_steal_reparks_task_under_thief_worker_id():
    """yield -> spill -> steal -> refill on *another worker* -> arrival.

    Before the fix the stolen task kept an id naming a comper of the
    victim worker; the thief's receiver could not resolve it to any
    local engine.
    """
    cluster, g = make_cluster()
    w0, w1 = cluster.workers
    a = w0.engines[0]
    c = w1.engines[0]
    v1 = owned_by(g, 1)[0]
    u = owned_by(g, 0)[0]  # remote from the thief's point of view

    park_and_yield(cluster, a, v1, [u])
    a.add_task(Task(context=[]))  # spill the yielded task
    assert len(w0.l_file) == 1

    moved = cluster.master._steal_one_batch(w0, thief_id=1, now=0.0)
    assert moved == 1
    w1.comm.step()  # receive the TaskBatchTransfer into w1's L_file
    assert len(w1.l_file) == 1

    assert c.step()  # refill the stolen batch, pop, park under c's id
    assert len(c.t_task) == 1

    pump_comm(cluster)  # the response for u must come back to comper c
    assert len(c.t_task) == 0
    assert len(c.b_task) == 1


def test_misrouted_arrival_raises_contextual_task_error():
    """An arrival whose id resolves to no pending entry is a TaskError
    naming the message, vertex and task id — not a bare KeyError from a
    dict lookup deep in the receiver."""
    cluster, g = make_cluster()
    w0 = cluster.workers[0]
    a = w0.engines[0]
    v1 = owned_by(g, 1)[0]

    task = Task(context=[])
    task.pull(v1)
    a.add_task(task)
    assert a.step()  # park + request
    # Corrupt the identity the way the pre-fix yield path did: re-key
    # the pending entry under a different comper's id.
    entry = a.t_task._entries.pop(task.task_id)
    stale = make_task_id(a.global_id + 1, 999)
    a.t_task._entries[stale] = entry
    task.task_id = stale
    with pytest.raises(TaskError) as err:
        pump_comm(cluster)
    assert "ResponseBatch" in str(err.value)
    assert str(v1) in str(err.value)


class HopSumComper(Comper):
    """Greedy max-neighbor walks of ``HOPS`` steps, one per edge endpoint.

    Every compute() pulls exactly one more vertex, so with
    ``inline_iteration_limit=1`` each task yields (and re-queues) after
    every iteration — the heaviest possible traffic on the
    yield/spill/refill/steal identity handoffs.  Spawning one walk per
    neighbor overshoots the queue's refill room, forcing spills.  The
    endpoint sum has a trivial serial oracle.
    """

    HOPS = 3

    def make_aggregator(self):
        return SumAggregator()

    def task_spawn(self, v):
        for n in v.adj:
            task = Task(context=self.HOPS)
            task.pull(n)
            self.add_task(task)

    def compute(self, task, frontier):
        view = frontier[0]
        task.context -= 1
        if task.context == 0:
            self.aggregate(view.id)
            return False
        task.pull(max(view.adj))
        return True


def hop_sum_oracle(g, hops=HopSumComper.HOPS):
    total = 0
    for v in g.vertices():
        for cur in g.neighbors(v):
            for _ in range(hops - 1):
                cur = max(g.neighbors(cur))
            total += cur
    return total


@pytest.mark.parametrize("runtime", ["serial", "threaded"])
def test_yield_heavy_job_end_to_end(runtime):
    g = erdos_renyi(60, 0.1, seed=13)
    cfg = GThinkerConfig(
        num_workers=2,
        compers_per_worker=2,
        task_batch_size=1,
        cache_capacity=48,
        cache_buckets=8,
        inline_iteration_limit=1,
        seed=3,
    )
    result = run_job(HopSumComper, g, cfg, runtime=runtime)
    assert result.aggregate == hop_sum_oracle(g)
    # The run must actually have exercised the risky paths.
    assert result.metrics.get("comper:inline_yields", 0) > 0
    assert result.metrics.get("tasks:spilled", 0) > 0


@pytest.mark.parametrize("runtime", ["serial", "threaded"])
def test_triangle_count_under_aggressive_spill(runtime):
    g = erdos_renyi(70, 0.12, seed=11)
    cfg = GThinkerConfig(
        num_workers=2,
        compers_per_worker=2,
        task_batch_size=2,
        cache_capacity=32,
        cache_buckets=8,
        inline_iteration_limit=1,
        seed=5,
    )
    result = run_job(TriangleCountComper, g, cfg, runtime=runtime)
    assert result.aggregate == count_triangles(g)
