"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph import erdos_renyi, ring_of_cliques, write_adjacency, write_edge_list
from repro.algorithms import count_triangles, max_clique_reference


@pytest.fixture
def edge_file(tmp_path, er_graph):
    path = tmp_path / "g.txt"
    write_edge_list(er_graph, path)
    return str(path)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_datasets_command(capsys):
    assert main(["datasets", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    for name in ("youtube", "skitter", "orkut", "btc", "friendster"):
        assert name in out


def test_tc_on_edge_file(edge_file, er_graph, capsys):
    assert main(["tc", "--graph", edge_file, "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert f"aggregate    : {count_triangles(er_graph)}" in out


def test_tc_bundled(edge_file, er_graph, capsys):
    assert main(["tc", "--graph", edge_file, "--bundle", "16"]) == 0
    assert str(count_triangles(er_graph)) in capsys.readouterr().out


def test_mcf_on_dataset(capsys):
    assert main(["mcf", "--dataset", "youtube", "--scale", "0.1",
                 "--workers", "2", "--compers", "2"]) == 0
    assert "max clique" in capsys.readouterr().out


def test_mcf_simulate(capsys):
    assert main(["mcf", "--dataset", "youtube", "--scale", "0.1",
                 "--simulate", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "virtual time" in out
    assert "peak memory" in out


def test_mcf_adjacency_format(tmp_path, capsys):
    g = ring_of_cliques(3, 5)
    path = tmp_path / "g.adj"
    write_adjacency(g, path)
    assert main(["mcf", "--graph", str(path), "--format", "adjacency"]) == 0
    assert "size 5" in capsys.readouterr().out


def test_qc_with_output(tmp_path, capsys):
    g = ring_of_cliques(2, 5)
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    out_path = tmp_path / "qcs.txt"
    assert main(["qc", "--graph", str(path), "--gamma", "1.0",
                 "--min-size", "5", "--output", str(out_path)]) == 0
    lines = out_path.read_text().strip().splitlines()
    assert len(lines) == 2  # the two 5-cliques


def test_shard_roundtrip(tmp_path, edge_file, er_graph, capsys):
    shard_dir = tmp_path / "shards"
    assert main(["shard", "--graph", edge_file, "--out", str(shard_dir),
                 "--num-shards", "3"]) == 0
    assert main(["tc", "--shards", str(shard_dir), "--workers", "3"]) == 0
    assert str(count_triangles(er_graph)) in capsys.readouterr().out


def test_requires_exactly_one_source():
    with pytest.raises(SystemExit):
        main(["tc"])
    with pytest.raises(SystemExit):
        main(["tc", "--dataset", "youtube", "--graph", "x.txt"])


def test_threaded_runtime_flag(edge_file, er_graph, capsys):
    assert main(["tc", "--graph", edge_file, "--runtime", "threaded"]) == 0
    assert str(count_triangles(er_graph)) in capsys.readouterr().out


def test_tau_flag(capsys):
    assert main(["mcf", "--dataset", "youtube", "--scale", "0.1",
                 "--tau", "8"]) == 0
    assert "max clique" in capsys.readouterr().out


def test_cliques_command(tmp_path, capsys):
    from repro.graph import ring_of_cliques

    g = ring_of_cliques(3, 4)
    path = tmp_path / "rc.txt"
    write_edge_list(g, path)
    out_path = tmp_path / "cliques.txt"
    assert main(["cliques", "--graph", str(path), "--min-size", "4",
                 "--output", str(out_path)]) == 0
    assert len(out_path.read_text().strip().splitlines()) == 3


def test_checked_runtime_flag(edge_file, er_graph, capsys):
    assert main(["tc", "--graph", edge_file, "--runtime", "checked"]) == 0
    assert str(count_triangles(er_graph)) in capsys.readouterr().out


def test_check_command(capsys):
    assert main(["check", "--seeds", "2", "--vertices", "30", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "6 fuzz runs" in out  # 3 apps x 2 seeds
    assert "0 failed" in out


def test_check_command_verbose(capsys):
    assert main(["check", "--seeds", "1", "--vertices", "25"]) == 0
    out = capsys.readouterr().out
    assert "ok   tc seed=0" in out


# -- fault-tolerance flags -----------------------------------------------


def test_checkpoint_dir_writes_shard(edge_file, er_graph, tmp_path, capsys):
    ckdir = tmp_path / "ckpts"
    assert main(["tc", "--graph", edge_file,
                 "--checkpoint-dir", str(ckdir),
                 "--checkpoint-every", "1"]) == 0
    assert (ckdir / "tc.ckpt").exists()
    assert str(count_triangles(er_graph)) in capsys.readouterr().out


def test_resume_from_checkpoint_dir(edge_file, er_graph, tmp_path, capsys):
    ckdir = tmp_path / "ckpts"
    assert main(["tc", "--graph", edge_file,
                 "--checkpoint-dir", str(ckdir),
                 "--checkpoint-every", "1"]) == 0
    capsys.readouterr()
    assert main(["tc", "--graph", edge_file,
                 "--checkpoint-dir", str(ckdir), "--resume"]) == 0
    assert str(count_triangles(er_graph)) in capsys.readouterr().out


def test_resume_requires_checkpoint_dir(edge_file):
    with pytest.raises(SystemExit, match="checkpoint-dir"):
        main(["tc", "--graph", edge_file, "--resume"])


def test_resume_rejects_simulate(edge_file, tmp_path):
    with pytest.raises(SystemExit, match="simulate"):
        main(["tc", "--graph", edge_file, "--resume", "--simulate",
              "--checkpoint-dir", str(tmp_path)])
